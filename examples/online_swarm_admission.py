#!/usr/bin/env python
"""Online admission of dissemination swarms with a bounded number of trees.

A content provider admits dissemination sessions one at a time (peers
joining a swarm over the day) and must pick a single overlay tree per
arrival without rerouting earlier traffic — exactly the setting of the
paper's Online-MinCongestion algorithm (Table VI).  The example uses
both layers of the Scenario API:

1. the *declarative* layer — the fractional MaxConcurrentFlow yardstick
   is a :class:`~repro.api.ScenarioSpec` solved with
   :func:`repro.api.solve`;
2. the *instance* layer — the online arrival sequences are built by
   replicating the spec's sessions in random order, then dispatched to
   the registered ``"online"`` solver via
   :func:`repro.api.solve_instance` (no hand-wired solver classes);

and finally rounds the fractional solution randomly to the same tree
budget, reporting how close each practical strategy gets to the optimum
— the paper's Fig. 5/6 story.

Run with:  python examples/online_swarm_admission.py
"""

from __future__ import annotations

import numpy as np

from repro import RandomMinCongestion
from repro.api import (
    ScenarioSpec,
    SessionSpec,
    TopologySpec,
    WorkloadSpec,
    build_instance,
    solve,
    solve_instance,
)
from repro.util.tables import format_table


def main() -> None:
    # Yardstick scenario: the fractional max-min fair optimum over two
    # hand-placed swarms on a 60-node Waxman substrate.
    spec = ScenarioSpec(
        topology=TopologySpec(
            generator="paper_flat", params={"num_nodes": 60, "capacity": 100.0}, seed=11
        ),
        workload=WorkloadSpec(
            sessions=(
                SessionSpec((1, 9, 17, 25, 33), demand=100.0, name="swarm-a"),
                SessionSpec((4, 12, 28, 41), demand=100.0, name="swarm-b"),
            )
        ),
        routing="ip",
        solver="max_concurrent_flow",
        solver_params={"approximation_ratio": 0.9},
    )
    report = solve(spec)
    fractional = report.solution
    print(
        f"fractional optimum: throughput {fractional.overall_throughput:.1f}, "
        f"min rate {fractional.min_rate:.1f} "
        f"({report.oracle_calls} MST ops in {report.wall_seconds:.2f}s)\n"
    )

    # The spec's live instance backs the online arrival experiments.
    _, swarms, routing = build_instance(spec)
    tree_limit = 10
    rng = np.random.default_rng(3)

    # Online admission: each swarm is split into `tree_limit` unit-demand
    # copies that arrive in random order; every copy gets one tree.
    rows = []
    for sigma in (10.0, 50.0, 200.0):
        arrivals = [copy for s in swarms for copy in s.replicate(tree_limit, demand=1.0)]
        order = rng.permutation(len(arrivals))
        online = solve_instance(
            "online", [arrivals[i] for i in order], routing, {"sigma": sigma}
        )
        rows.append(
            [
                f"online (sigma={sigma:g})",
                online.overall_throughput,
                online.min_rate,
                online.overall_throughput / fractional.overall_throughput,
            ]
        )

    # Randomized rounding of the fractional solution to the same tree budget.
    rounding = RandomMinCongestion(fractional, seed=5)
    stats = rounding.average_over_trials(tree_limit, trials=50, seed=9)
    rows.append(
        [
            "randomized rounding",
            stats["mean_throughput"],
            stats["mean_min_rate"],
            stats["mean_throughput"] / fractional.overall_throughput,
        ]
    )

    print(
        format_table(
            ["strategy", "throughput", "min rate", "fraction of optimum"],
            rows,
            title=f"practical strategies with at most {tree_limit} trees per swarm",
        )
    )


if __name__ == "__main__":
    main()
