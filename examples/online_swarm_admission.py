#!/usr/bin/env python
"""Online admission of dissemination swarms with a bounded number of trees.

A content provider admits dissemination sessions one at a time (peers joining
a swarm over the day) and must pick a single overlay tree per arrival without
rerouting earlier traffic — exactly the setting of the paper's
Online-MinCongestion algorithm (Table VI).  The example:

1. solves the fractional optimum (MaxConcurrentFlow) as the yardstick,
2. admits replicated session copies online for several step sizes ``sigma``,
3. rounds the fractional solution randomly to a bounded number of trees,

and reports how close each practical strategy gets to the optimum — the
paper's Fig. 5/6 story.

Run with:  python examples/online_swarm_admission.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FixedIPRouting,
    RandomMinCongestion,
    Session,
    paper_flat_topology,
    solve_max_concurrent_flow,
    solve_online,
)
from repro.util.tables import format_table


def main() -> None:
    network = paper_flat_topology(num_nodes=60, capacity=100.0, seed=11)
    routing = FixedIPRouting(network)
    swarms = [
        Session((1, 9, 17, 25, 33), demand=100.0, name="swarm-a"),
        Session((4, 12, 28, 41), demand=100.0, name="swarm-b"),
    ]

    # Yardstick: the fractional max-min fair optimum.
    fractional = solve_max_concurrent_flow(swarms, routing, approximation_ratio=0.9)
    print(
        f"fractional optimum: throughput {fractional.overall_throughput:.1f}, "
        f"min rate {fractional.min_rate:.1f}\n"
    )

    tree_limit = 10
    rng = np.random.default_rng(3)

    # Online admission: each swarm is split into `tree_limit` unit-demand
    # copies that arrive in random order; every copy gets one tree.
    rows = []
    for sigma in (10.0, 50.0, 200.0):
        arrivals = [copy for s in swarms for copy in s.replicate(tree_limit, demand=1.0)]
        order = rng.permutation(len(arrivals))
        online = solve_online([arrivals[i] for i in order], routing, sigma=sigma)
        rows.append(
            [
                f"online (sigma={sigma:g})",
                online.overall_throughput,
                online.min_rate,
                online.overall_throughput / fractional.overall_throughput,
            ]
        )

    # Randomized rounding of the fractional solution to the same tree budget.
    rounding = RandomMinCongestion(fractional, seed=5)
    stats = rounding.average_over_trials(tree_limit, trials=50, seed=9)
    rows.append(
        [
            "randomized rounding",
            stats["mean_throughput"],
            stats["mean_min_rate"],
            stats["mean_throughput"] / fractional.overall_throughput,
        ]
    )

    print(
        format_table(
            ["strategy", "throughput", "min rate", "fraction of optimum"],
            rows,
            title=f"practical strategies with at most {tree_limit} trees per swarm",
        )
    )


if __name__ == "__main__":
    main()
