"""Terminal dashboard for the ``repro.serve`` HTTP service.

Spawns a server (or targets a running one with ``--url``), submits a
small batch of scenarios — one offline max-flow and one online arrival
run — then streams each run's engine telemetry over SSE and polls the
reports, printing a compact live view::

    python examples/serve_dashboard.py
    python examples/serve_dashboard.py --url http://127.0.0.1:8080

Everything here is a stdlib HTTP client (``urllib`` + a line loop over
the SSE response), demonstrating exactly what any external consumer of
the service would do.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.api.specs import (  # noqa: E402
    ArrivalSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.serve.sse import parse_sse_line  # noqa: E402


def example_specs():
    topology = TopologySpec(
        generator="paper_flat", params={"num_nodes": 24, "capacity": 100.0}, seed=7
    )
    offline = ScenarioSpec(
        topology=topology,
        workload=WorkloadSpec(sizes=(4, 3), demand=50.0, seed=21),
        routing="ip",
        solver="max_flow",
        solver_params={"approximation_ratio": 0.9},
    )
    online = ScenarioSpec(
        topology=topology,
        workload=WorkloadSpec(sizes=(3, 2), demand=10.0, seed=5),
        routing="ip",
        solver="online",
        solver_params={"sigma": 10.0},
        arrivals=ArrivalSpec(replication=3, seed=11, demand=1.0),
    )
    return [offline, online]


def post_json(url: str, payload: dict) -> tuple:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json", "X-Client": "dashboard"},
    )
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err)


def get_json(url: str) -> tuple:
    try:
        with urllib.request.urlopen(url) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err)


def stream_events(base: str, key: str, timeout: float = 120.0) -> dict:
    """Follow one run's SSE stream, printing a rolling telemetry line."""
    counts: dict = {}
    url = f"{base}/v1/runs/{key}/events?timeout={timeout}"
    state: dict = {}
    last: dict = {}
    with urllib.request.urlopen(url) as resp:
        for raw in resp:
            frame = parse_sse_line(raw, state)
            if frame is None:
                continue
            kind, data = frame
            counts[kind] = counts.get(kind, 0) + 1
            payload = json.loads(data)
            if kind == "congestion":
                last = payload
                sys.stdout.write(
                    f"\r  [{key[:12]}] congestion step {payload.get('step', '?')}: "
                    f"max={payload.get('max_congestion', 0.0):.4f}   "
                )
                sys.stdout.flush()
            if kind in ("end", "timeout"):
                sys.stdout.write("\n")
                tail = {k: v for k, v in payload.items() if k != "kind"}
                print(f"  [{key[:12]}] {kind}: {tail} | events seen: {counts}")
                break
    return {"counts": counts, "last_congestion": last}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", default=None, help="target a running server instead of spawning one"
    )
    parser.add_argument(
        "--keep", action="store_true", help="leave the spawned server running"
    )
    args = parser.parse_args()

    server = None
    if args.url:
        base = args.url.rstrip("/")
    else:
        workdir = tempfile.mkdtemp(prefix="repro-serve-demo-")
        print(f"spawning server (store under {workdir}) ...")
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--store",
                f"{workdir}/store",
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env={**__import__("os").environ, "PYTHONPATH": str(SRC)},
        )
        line = server.stdout.readline().strip()  # "listening on http://..."
        base = line.split()[-1]
    print(f"server: {base}\n")

    try:
        tickets = []
        for spec in example_specs():
            code, payload = post_json(
                f"{base}/v1/solve", {"spec": spec.to_jsonable(), "priority": 0}
            )
            print(f"POST /v1/solve -> {code} {payload.get('state')} "
                  f"key={payload.get('key', '?')[:12]}")
            tickets.append(payload["key"])

        print("\nstreaming telemetry:")
        for key in tickets:
            stream_events(base, key)

        print("\nreports:")
        for key in tickets:
            for _ in range(100):
                code, payload = get_json(f"{base}/v1/reports/{key}")
                if code == 200:
                    summary = payload.get("summary", {})
                    brief = {
                        k: round(v, 4) if isinstance(v, float) else v
                        for k, v in list(sorted(summary.items()))[:4]
                    }
                    print(f"  [{key[:12]}] {payload['algorithm']}: {brief}")
                    break
                time.sleep(0.1)
            else:
                print(f"  [{key[:12]}] still {payload.get('state')} — gave up")

        code, payload = get_json(f"{base}/v1/status")
        adm = payload["admission"]
        print(
            f"\nstatus: mode={payload['mode']} depth={adm['depth']} "
            f"admitted={adm['admitted']} shed={adm['shed']} "
            f"store_entries={payload['store'].get('entries')}"
        )
    finally:
        if server is not None and not args.keep:
            server.terminate()
            server.wait(timeout=5)
        elif server is not None:
            print(f"\nserver left running at {base} (pid {server.pid})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
