#!/usr/bin/env python
"""Quickstart: optimal multi-tree throughput for one overlay multicast session.

Builds a Waxman router topology (the paper's evaluation substrate), places a
single 6-member dissemination session on it, and compares

* the theoretical upper bound computed by the MaxFlow FPTAS (arbitrarily many
  trees), with
* what a single multicast tree — the classic overlay-multicast design — can
  achieve,

illustrating the paper's core motivation: multi-tree dissemination exploits
capacity that single-tree solutions leave on the table.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FixedIPRouting,
    MinimumOverlayTreeOracle,
    Session,
    paper_flat_topology,
    solve_max_flow,
)
from repro.metrics.distribution import top_fraction_share
from repro.util.tables import format_kv


def main() -> None:
    # 1. The physical substrate: a 60-node Waxman topology, capacity 100.
    network = paper_flat_topology(num_nodes=60, capacity=100.0, seed=42)
    routing = FixedIPRouting(network)
    print(f"topology: {network.num_nodes} routers, {network.num_edges} links\n")

    # 2. One dissemination session: a source and five receivers.
    session = Session((0, 7, 13, 21, 34, 48), demand=100.0, name="bulk-transfer")
    print(f"session: {session} (source {session.source})\n")

    # 3. Single-tree baseline: the minimum overlay spanning tree under the
    #    hop metric, which is what a conventional one-tree overlay builds.
    oracle = MinimumOverlayTreeOracle(session, routing)
    single_tree = oracle.minimum_tree(np.ones(network.num_edges)).tree
    single_tree_rate = single_tree.bottleneck_capacity(network.capacities)

    # 4. Multi-tree optimum (within 10%): the MaxFlow FPTAS.
    solution = solve_max_flow([session], routing, approximation_ratio=0.9)
    multi = solution.sessions[0]

    print(
        format_kv(
            {
                "single-tree rate": single_tree_rate,
                "multi-tree rate (MaxFlow, 90% approx)": multi.rate,
                "improvement factor": multi.rate / single_tree_rate,
                "trees used": multi.num_trees,
                "rate in top 10% of trees": f"{top_fraction_share(multi, 0.1):.1%}",
                "aggregate receiver throughput": multi.aggregate_receiver_rate,
                "feasible (capacities respected)": solution.is_feasible(),
                "MST operations": solution.oracle_calls,
            },
            precision=2,
            title="single tree vs. optimal multi-tree dissemination",
        )
    )


if __name__ == "__main__":
    main()
