#!/usr/bin/env python
"""Quickstart: the Scenario API in one file.

A problem is a *spec*, not a pile of hand-wired objects.  This example
declares a :class:`repro.api.ScenarioSpec` — topology generator, session
placement, routing model, solver, solver parameters — as plain data,
round-trips it through JSON (what you would store in a job queue, cache
or client request), and calls :func:`repro.api.solve` to get a uniform
:class:`repro.api.SolveReport` back.

The scenario itself is the paper's core motivation: one overlay
dissemination session on a Waxman router topology, comparing

* the theoretical upper bound computed by the MaxFlow FPTAS (arbitrarily
  many trees), with
* what a single multicast tree — the classic overlay-multicast design —
  can achieve,

showing that multi-tree dissemination exploits capacity a single tree
leaves on the table.

Run with:  python examples/quickstart.py

The same spec can be solved from the shell (``python -m repro.api run
spec.json``); ``python -m repro.api example`` prints a ready-made spec
file to start from.  For batches, persistent result caching and
multi-process scale-out, continue with ``examples/store_and_cluster.py``.
"""

from __future__ import annotations

import numpy as np

from repro import MinimumOverlayTreeOracle
from repro.api import ScenarioSpec, SessionSpec, TopologySpec, WorkloadSpec, build_instance, solve
from repro.metrics.distribution import top_fraction_share
from repro.util.tables import format_kv


def main() -> None:
    # 1. Declare the whole problem as data: a 60-node Waxman substrate,
    #    one 6-member session (a source and five receivers), fixed IP
    #    routing, and the MaxFlow FPTAS at a 90% approximation ratio.
    spec = ScenarioSpec(
        topology=TopologySpec(
            generator="paper_flat", params={"num_nodes": 60, "capacity": 100.0}, seed=42
        ),
        workload=WorkloadSpec(
            sessions=(
                SessionSpec((0, 7, 13, 21, 34, 48), demand=100.0, name="bulk-transfer"),
            )
        ),
        routing="ip",
        solver="max_flow",
        solver_params={"approximation_ratio": 0.9},
    )

    # 2. Specs are JSON all the way down: serialize, ship, rebuild.  The
    #    canonical key is a content digest — the cache/dedup identity the
    #    batch service (`solve_many`) keys on.
    spec = ScenarioSpec.from_json(spec.to_json())
    print(f"scenario {spec.canonical_key[:16]}…  (full spec: spec.to_json())\n")

    # 3. Single-tree baseline: the minimum overlay spanning tree under
    #    the hop metric, which is what a conventional one-tree overlay
    #    builds.  `build_instance` hands back the spec's live objects.
    network, sessions, routing = build_instance(spec)
    print(f"topology: {network.num_nodes} routers, {network.num_edges} links")
    print(f"session: {sessions[0]} (source {sessions[0].source})\n")
    oracle = MinimumOverlayTreeOracle(sessions[0], routing)
    single_tree = oracle.minimum_tree(np.ones(network.num_edges)).tree
    single_tree_rate = single_tree.bottleneck_capacity(network.capacities)

    # 4. Multi-tree optimum (within 10%): one `solve` call.  The report
    #    wraps the FlowSolution with timing and the echoed spec, and is
    #    itself JSON-serializable (report.to_jsonable()).
    report = solve(spec)
    multi = report.solution.sessions[0]

    print(
        format_kv(
            {
                "single-tree rate": single_tree_rate,
                "multi-tree rate (MaxFlow, 90% approx)": multi.rate,
                "improvement factor": multi.rate / single_tree_rate,
                "trees used": multi.num_trees,
                "rate in top 10% of trees": f"{top_fraction_share(multi, 0.1):.1%}",
                "aggregate receiver throughput": multi.aggregate_receiver_rate,
                "feasible (capacities respected)": report.solution.is_feasible(),
                "MST operations": report.oracle_calls,
                "solve wall time (s)": report.wall_seconds,
            },
            precision=2,
            title="single tree vs. optimal multi-tree dissemination",
        )
    )


if __name__ == "__main__":
    main()
