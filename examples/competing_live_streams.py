#!/usr/bin/env python
"""Competing live-stream sessions: throughput versus fairness.

The paper's central scenario: several independent overlay multicast sessions
(think: live video channels, each with its own source and audience) compete
for the same physical links.  This example places three channels of
different sizes on a two-level AS/router topology and contrasts

* **MaxFlow** — maximise total receiver throughput (larger channels win), and
* **MaxConcurrentFlow** — weighted max-min fairness across channels,

reproducing the paper's finding that fairness costs little total throughput.

Run with:  python examples/competing_live_streams.py
"""

from __future__ import annotations

from repro import (
    FixedIPRouting,
    paper_two_level_topology,
    random_sessions,
    solve_max_concurrent_flow,
    solve_max_flow,
)
from repro.metrics.fairness import jains_index
from repro.metrics.summary import compare_solutions
from repro.metrics.utilization import covered_edge_count, mean_utilization


def main() -> None:
    # A small two-level topology: 3 ASes x 15 routers, capacity 100 per link.
    network = paper_two_level_topology(num_ases=3, routers_per_as=15, seed=7)
    routing = FixedIPRouting(network)

    # Three live channels with audiences spread across the ASes.
    channels = random_sessions(network, count=3, size=6, demand=100.0, seed=21)
    for channel in channels:
        print(f"  {channel}")
    print()

    throughput_first = solve_max_flow(channels, routing, approximation_ratio=0.9)
    fairness_first = solve_max_concurrent_flow(channels, routing, approximation_ratio=0.9)

    print(
        compare_solutions(
            {"MaxFlow": throughput_first, "MaxConcurrentFlow": fairness_first},
            title="throughput-first vs fairness-first allocation",
        )
    )
    print()
    ratio = fairness_first.overall_throughput / throughput_first.overall_throughput
    print(f"throughput retained under fairness : {ratio:.1%}")
    print(f"Jain's index, MaxFlow              : {jains_index(throughput_first.session_rates):.3f}")
    print(f"Jain's index, MaxConcurrentFlow    : {jains_index(fairness_first.session_rates):.3f}")
    print(f"links covered by the channels      : {covered_edge_count(network, channels)}")
    print(f"mean link utilization (MaxFlow)    : {mean_utilization(throughput_first):.1%}")


if __name__ == "__main__":
    main()
