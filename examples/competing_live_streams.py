#!/usr/bin/env python
"""Competing live-stream sessions: throughput versus fairness, as a batch.

The paper's central scenario: several independent overlay multicast
sessions (think: live video channels, each with its own source and
audience) compete for the same physical links.  With the Scenario API
the comparison is two *specs over one instance* — same topology, same
workload, different solver — submitted together to the batch service:

* **max_flow** — maximise total receiver throughput (larger channels win),
* **max_concurrent_flow** — weighted max-min fairness across channels,

reproducing the paper's finding that fairness costs little total
throughput.  ``solve_many`` shares the built instance between the two
scenarios and would solve them on a process pool with ``jobs=2``.

Run with:  python examples/competing_live_streams.py
"""

from __future__ import annotations

from repro.api import ScenarioSpec, TopologySpec, WorkloadSpec, build_instance, solve_many
from repro.metrics.fairness import jains_index
from repro.metrics.summary import compare_solutions
from repro.metrics.utilization import covered_edge_count, mean_utilization


def main() -> None:
    # One instance: a 3 AS x 15 router two-level topology carrying three
    # live channels with audiences spread across the ASes.
    topology = TopologySpec(
        generator="paper_two_level",
        params={"num_ases": 3, "routers_per_as": 15},
        seed=7,
    )
    workload = WorkloadSpec(sizes=(6, 6, 6), demand=100.0, seed=21)
    base = ScenarioSpec(topology=topology, workload=workload, routing="ip")

    # Two scenarios over that instance, differing only in objective.
    throughput_spec = base.with_solver("max_flow", approximation_ratio=0.9)
    fairness_spec = base.with_solver("max_concurrent_flow", approximation_ratio=0.9)

    network, channels, _ = build_instance(base)
    for channel in channels:
        print(f"  {channel}")
    print()

    reports = solve_many([throughput_spec, fairness_spec])
    throughput_first, fairness_first = (r.solution for r in reports)

    print(
        compare_solutions(
            {"MaxFlow": throughput_first, "MaxConcurrentFlow": fairness_first},
            title="throughput-first vs fairness-first allocation",
        )
    )
    print()
    ratio = fairness_first.overall_throughput / throughput_first.overall_throughput
    print(f"throughput retained under fairness : {ratio:.1%}")
    print(f"Jain's index, MaxFlow              : {jains_index(throughput_first.session_rates):.3f}")
    print(f"Jain's index, MaxConcurrentFlow    : {jains_index(fairness_first.session_rates):.3f}")
    print(f"links covered by the channels      : {covered_edge_count(network, channels)}")
    print(f"mean link utilization (MaxFlow)    : {mean_utilization(throughput_first):.1%}")


if __name__ == "__main__":
    main()
