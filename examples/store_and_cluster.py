#!/usr/bin/env python
"""Persistent store + sharded work-queue execution in one file.

The scale-out story on top of the Scenario API: a *batch* of scenario
specs — here, a MaxFlow approximation-ratio sweep over two topologies —
is executed three ways, each building on the last:

1. **Serial** ``solve_many``: the baseline every other path must match
   bit-for-bit.
2. **Store-backed** ``solve_many``: the same batch with a persistent
   :class:`repro.store.ReportStore` attached.  The first pass solves and
   spills every report to disk; the second pass — caches cleared, as if
   in a fresh process — performs *zero* solver calls.
3. **Queue-based** drain: the batch is submitted to a file-backed
   :class:`repro.cluster.WorkQueue` sharded by canonical key, two
   independent worker subprocesses (the same ``python -m repro.cluster
   worker`` entry point you would run on other hosts) claim and solve
   cooperatively, and the asyncio front end streams reports back as
   they land in the shared store.

Run with:  python examples/store_and_cluster.py
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro.api import ScenarioSpec, TopologySpec, WorkloadSpec, solve_many
from repro.api import cache_info, clear_caches
from repro.cluster import WorkQueue, shard_of, solve_many_async, spawn_local_workers
from repro.store import ReportStore
from repro.util.tables import format_kv


def build_batch() -> list[ScenarioSpec]:
    """A ratio sweep over two seeded topologies: 6 deterministic specs."""
    batch = []
    for seed in (7, 11):
        topology = TopologySpec(
            generator="paper_flat", params={"num_nodes": 30, "capacity": 100.0}, seed=seed
        )
        workload = WorkloadSpec(sizes=(4, 3), demand=100.0, seed=seed + 1)
        for ratio in (0.80, 0.85, 0.90):
            batch.append(
                ScenarioSpec(
                    topology=topology,
                    workload=workload,
                    solver="max_flow",
                    solver_params={"approximation_ratio": ratio},
                )
            )
    return batch


def main() -> None:
    specs = build_batch()
    fingerprint = lambda reports: [
        round(r.solution.overall_throughput, 6) for r in reports
    ]

    # 1. The serial baseline.
    serial = solve_many(specs, jobs=1)
    print("serial throughputs:   ", fingerprint(serial))

    with tempfile.TemporaryDirectory() as scratch:
        store_dir = Path(scratch) / "store"
        queue_dir = Path(scratch) / "queue"

        # 2. Store-backed: second run is served entirely from disk.
        store = ReportStore(store_dir)
        solve_many(specs, jobs=1, store=store)
        clear_caches()          # simulate a fresh process...
        store.clear_memory()    # ...with a cold in-memory front
        warm = solve_many(specs, jobs=1, store=store)
        info = cache_info()
        print("warm-store throughputs:", fingerprint(warm))
        print(
            format_kv(
                {
                    "solver calls on warm run": info["misses"],
                    "reports served from store": info["store_hits"],
                    "store entries on disk": store.stats()["entries"],
                }
            )
        )
        assert fingerprint(warm) == fingerprint(serial)
        assert info["misses"] == 0

        # 3. Queue-based: 2 subprocess workers drain a 2-shard batch
        #    cooperatively; reports stream back through the store.
        queue = WorkQueue(queue_dir)
        shards = [shard_of(s.canonical_key, 2) for s in specs]
        print(f"shard assignment: {shards}")
        cluster_store = ReportStore(Path(scratch) / "cluster-store")
        # Submit before spawning: batch-mode workers exit when they see
        # a drained queue, so an empty one must never be their first look.
        queue.submit(specs, num_shards=2)
        with spawn_local_workers(2, queue_dir, cluster_store.root, pin_shards=True):
            gathered = asyncio.run(
                solve_many_async(
                    specs, queue, cluster_store, num_shards=2, timeout=600,
                    submit=False,
                )
            )
        print("cluster throughputs:  ", fingerprint(gathered))
        assert fingerprint(gathered) == fingerprint(serial)
        print("queue state:", WorkQueue(queue_dir).counts())
        print("\nAll three execution paths produced identical results.")


if __name__ == "__main__":
    main()
