"""Benchmarks regenerating Figures 2–11 (flat-topology experiments).

Figures 2–6 use fixed IP routing; Figures 7–11 repeat them under arbitrary
(dynamic) routing, quantifying the impact of IP routing (paper Section V).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_experiment


def _check_distribution_figure(result):
    for session in result.data["sessions"].values():
        for series in session.values():
            frac = series["cumulative_fraction"]
            assert abs(frac[-1] - 1.0) < 1e-9
            assert all(b >= a - 1e-12 for a, b in zip(frac, frac[1:]))


def test_fig2_tree_rate_distribution_maxflow(run_once, benchmark):
    """Paper Fig. 2: accumulative tree-rate distribution under MaxFlow."""
    benchmark.group = "figures-flat"
    _check_distribution_figure(run_once(run_experiment, "fig2", "quick"))


def test_fig3_tree_rate_distribution_maxconcurrent(run_once, benchmark):
    """Paper Fig. 3: accumulative tree-rate distribution under MaxConcurrentFlow."""
    benchmark.group = "figures-flat"
    _check_distribution_figure(run_once(run_experiment, "fig3", "quick"))


def test_fig4_link_utilization(run_once, benchmark):
    """Paper Fig. 4: link-utilization distribution for both algorithms."""
    benchmark.group = "figures-flat"
    result = run_once(run_experiment, "fig4", "quick")
    assert result.data["covered_links"] > 0
    for algorithm in result.data["algorithms"].values():
        for series in algorithm.values():
            assert max(series["utilization"], default=0.0) <= 1.0 + 1e-6


def test_fig5_limited_tree_throughput(run_once, benchmark):
    """Paper Fig. 5: Random/Online throughput versus the tree limit."""
    benchmark.group = "figures-flat"
    result = run_once(run_experiment, "fig5", "quick")
    random_tp = result.data["random"]["throughput"]
    # Diminishing-return growth: the last point is at least the first.
    assert random_tp[-1] >= random_tp[0]
    assert result.data["fractional_throughput"] >= max(random_tp) - 1e-6


def test_fig6_trees_actually_used(run_once, benchmark):
    """Paper Fig. 6: number of distinct trees the algorithms actually use."""
    benchmark.group = "figures-flat"
    result = run_once(run_experiment, "fig6", "quick")
    limits = result.data["tree_limits"]
    for session in result.data["sessions"].values():
        assert all(used <= limit + 1e-9 for used, limit in zip(session["random"], limits))


def test_fig7_tree_rate_distribution_arbitrary(run_once, benchmark):
    """Paper Fig. 7: Fig. 2 repeated under arbitrary routing."""
    benchmark.group = "figures-arbitrary"
    _check_distribution_figure(run_once(run_experiment, "fig7", "quick"))


def test_fig8_tree_rate_distribution_mcf_arbitrary(run_once, benchmark):
    """Paper Fig. 8: Fig. 3 repeated under arbitrary routing."""
    benchmark.group = "figures-arbitrary"
    _check_distribution_figure(run_once(run_experiment, "fig8", "quick"))


def test_fig9_link_utilization_arbitrary(run_once, benchmark):
    """Paper Fig. 9: Fig. 4 repeated under arbitrary routing."""
    benchmark.group = "figures-arbitrary"
    result = run_once(run_experiment, "fig9", "quick")
    assert result.data["covered_links"] > 0


def test_fig10_limited_tree_throughput_arbitrary(run_once, benchmark):
    """Paper Fig. 10: Fig. 5 repeated under arbitrary routing."""
    benchmark.group = "figures-arbitrary"
    result = run_once(run_experiment, "fig10", "quick")
    assert len(result.data["random"]["throughput"]) == len(result.data["tree_limits"])


def test_fig11_trees_used_arbitrary(run_once, benchmark):
    """Paper Fig. 11: Fig. 6 repeated under arbitrary routing."""
    benchmark.group = "figures-arbitrary"
    result = run_once(run_experiment, "fig11", "quick")
    assert result.data["sessions"]
