"""Micro/ablation benchmarks for the core algorithmic building blocks.

These complement the per-table/figure benchmarks with the design-choice
ablations called out in DESIGN.md: oracle cost under fixed versus dynamic
routing, FPTAS cost versus epsilon, the online step cost, and the oracle
tree-memoization ablation.  The final benchmark writes the repo-root
``BENCH_core.json`` perf record (quick scale) so the hot-path trajectory
is tracked across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.core.online import OnlineConfig, OnlineMinCongestion
from repro.overlay.oracle import MinimumOverlayTreeOracle
from repro.overlay.session import Session
from repro.perf import QUICK_PROFILE, build_perf_instance, write_core_perf_record
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.generators import paper_flat_topology

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def network():
    return paper_flat_topology(num_nodes=80, seed=3)


@pytest.fixture(scope="module")
def session(network):
    rng = np.random.default_rng(5)
    members = tuple(int(m) for m in rng.choice(network.num_nodes, 8, replace=False))
    return Session(members, demand=100.0, name="bench")


def test_oracle_fixed_routing(benchmark, network, session):
    """Ablation: minimum overlay spanning tree cost under fixed IP routing."""
    benchmark.group = "oracle"
    oracle = MinimumOverlayTreeOracle(session, FixedIPRouting(network))
    lengths = np.random.default_rng(0).uniform(0.1, 1.0, network.num_edges)
    result = benchmark(oracle.minimum_tree, lengths)
    assert result.tree.size == session.size


def test_oracle_dynamic_routing(benchmark, network, session):
    """Ablation: minimum overlay spanning tree cost under dynamic routing."""
    benchmark.group = "oracle"
    oracle = MinimumOverlayTreeOracle(session, DynamicRouting(network))
    lengths = np.random.default_rng(0).uniform(0.1, 1.0, network.num_edges)
    result = benchmark(oracle.minimum_tree, lengths)
    assert result.tree.size == session.size


@pytest.mark.parametrize("epsilon", [0.15, 0.075])
def test_maxflow_epsilon_ablation(run_once, benchmark, network, session, epsilon):
    """Ablation: MaxFlow oracle-call count scales roughly with 1/epsilon^2."""
    benchmark.group = "fptas-epsilon"
    solver = MaxFlow([session], FixedIPRouting(network), MaxFlowConfig(epsilon=epsilon))
    solution = run_once(solver.solve)
    assert solution.is_feasible()
    assert solution.oracle_calls > 0


def test_online_acceptance_throughput(benchmark, network, session):
    """Cost of accepting one session online (oracle + length update)."""
    benchmark.group = "online"
    routing = FixedIPRouting(network)

    def accept_batch():
        solver = OnlineMinCongestion(routing, OnlineConfig(sigma=50.0))
        for copy in session.replicate(5, demand=1.0):
            solver.accept(copy)
        return solver.state.max_congestion

    congestion = benchmark.pedantic(accept_batch, rounds=3, iterations=1)
    assert congestion > 0


@pytest.mark.parametrize("memoize", [True, False], ids=["memoized", "unmemoized"])
def test_maxflow_memoization_ablation(run_once, benchmark, memoize):
    """Ablation: fixed-routing MaxFlow with the oracle tree cache on/off."""
    benchmark.group = "oracle-cache"
    network, sessions = build_perf_instance(QUICK_PROFILE)
    solver = MaxFlow(
        sessions,
        FixedIPRouting(network),
        MaxFlowConfig(approximation_ratio=QUICK_PROFILE.fixed_ratio, memoize=memoize),
    )
    solution = run_once(solver.solve)
    assert solution.oracle_calls > 0
    if memoize:
        assert sum(o.cache_hits for o in solver.oracles) > 0


def test_length_multiply_batch_ablation(run_once, benchmark):
    """Ablation: one ``multiply_batch`` call vs the per-update multiply loop."""
    benchmark.group = "length-update"
    from repro.perf.record import _timed_multiply_batch

    result = run_once(_timed_multiply_batch, QUICK_PROFILE)
    assert result["batched_seconds"] > 0
    assert result["loop_seconds"] > 0
    # Coalescing hundreds of per-step calls into one vectorised
    # np.multiply.at must win, and by a wide margin at quick scale.
    assert result["batched_speedup"] > 1.0


def test_length_multiply_unique_fastpath(run_once, benchmark):
    """Ablation: the ``assume_unique`` multiply_batch fast path.

    On a duplicate-free batch (as the engine's per-step flush produces —
    one entry per distinct tree edge), skipping the duplicate-safe
    ``np.multiply.at`` accumulation for a direct fancy-indexed multiply
    must win.  Bit-identical either way (tests/test_tree_ledger.py).
    """
    benchmark.group = "length-update"
    from repro.perf.record import _timed_multiply_batch

    result = run_once(_timed_multiply_batch, QUICK_PROFILE)
    assert result["unique_safe_seconds"] > 0
    assert result["unique_fast_seconds"] > 0
    assert result["unique_fastpath_speedup"] > 1.0


def test_tree_length_crossover_and_ledger_round(run_once, benchmark):
    """Re-measure the dense/sparse length crossover and the ledger round.

    The sweep brackets ``SPARSE_LENGTH_MIN_EDGES``; the ledger arm times
    one :meth:`TreeLedger.lengths_for` round against the per-tree
    ``length`` loop it replaces in stacked engine rounds (bit-identical;
    the per-column dots keep it near parity on small footprints — the
    end-to-end stacked win is the engine_step section).
    """
    benchmark.group = "tree-length"
    from repro.perf.record import _timed_length_crossover, _timed_ledger_round

    crossover = run_once(_timed_length_crossover, QUICK_PROFILE)
    assert len(crossover["num_edges"]) == len(QUICK_PROFILE.crossover_nodes)
    assert all(t > 0 for t in crossover["dense_us_per_eval"])
    assert all(t > 0 for t in crossover["sparse_us_per_eval"])
    ledger = _timed_ledger_round(QUICK_PROFILE)
    assert ledger["trees"] == QUICK_PROFILE.ledger_trees
    # Structural only — the measured ratio lands in BENCH_core.json.
    assert ledger["ledger_round_speedup"] > 0


def test_ledger_kernel_backend_ablation(run_once, benchmark):
    """Ablation: the ledger hot ops under numpy vs the best ordered backend.

    Times the three kernel-registry ops — the fused round-lengths pass
    (:meth:`TreeLedger.lengths_for`), the flow scatter
    (:meth:`TreeLedger.edge_values`), and the one-pass all-columns
    kernel (:meth:`TreeLedger.lengths_for_all`) — under the default
    ``numpy`` backend and under the best available ordered backend
    (``numba`` when importable, else the pure-NumPy ``ordered``
    reference).  Results are bit-identical per backend to the per-tree
    loop (tests/test_kernel_backends.py); the measured speedups land in
    BENCH_core.json.
    """
    benchmark.group = "ledger-kernel"
    from repro.perf.record import _best_kernel_backend, _timed_ledger_kernel

    result = run_once(_timed_ledger_kernel, QUICK_PROFILE)
    assert result["backend"] == _best_kernel_backend()
    assert result["nnz"] > 0
    for op in ("round_lengths", "scatter", "lengths_for_all"):
        assert result[op]["numpy_seconds"] > 0
        assert result[op]["compiled_seconds"] > 0
        # Structural only — the measured ratios land in BENCH_core.json.
        assert result[op]["compiled_speedup"] > 0


def test_engine_step_stacked_ablation(run_once, benchmark):
    """Ablation: full engine steps, stacked representation vs the loop.

    Times complete :meth:`PhaseEngine.step` calls (oracle round, routing
    decision, length update) with the stacked-tree defaults versus
    ``stacked_trees=False, batch_oracle=False`` under both routings on
    the larger engine-bench instance.  Both arms execute the identical
    step sequence; the headline speedup lands in BENCH_core.json.
    """
    benchmark.group = "engine-step"
    from repro.perf.record import _timed_engine_step

    result = run_once(_timed_engine_step, QUICK_PROFILE)
    assert result["fixed"]["outputs_identical"]
    assert result["dynamic"]["outputs_identical"]
    assert result["stacked_speedup"] > 0


def test_oracle_batch_ablation(run_once, benchmark):
    """Ablation: batched all-session oracle rounds vs the per-oracle loop.

    One :class:`~repro.core.engine.BatchedOracleFront` round answers
    every session's tree query with a single stacked incidence mat-vec
    — the scan MaxFlow performs each iteration.  Both arms are
    bit-identical (engine equivalence suite); this records the
    throughput gap for the BENCH trajectory.
    """
    benchmark.group = "oracle-batch"
    from repro.perf.record import _timed_oracle_batch

    result = run_once(_timed_oracle_batch, QUICK_PROFILE)
    assert result["batched_seconds"] > 0
    assert result["loop_seconds"] > 0
    assert result["sessions"] == len(QUICK_PROFILE.batch_sessions)
    # Structural assertion only (no wall-clock ratio: loaded CI machines
    # flake) — the measured speedup lands in BENCH_core.json either way.
    assert result["batched_speedup"] > 0


def test_dynamic_oracle_fastpath_ablation(run_once, benchmark):
    """Ablation: one-Dijkstra dynamic oracle + union front vs the legacy loop.

    The fast arm is dynamic-routing MaxFlow with the retained-query
    oracle and the union-Dijkstra front (the defaults); the legacy arm
    re-solves the same instance with ``configure_dynamic_fastpath``
    off — the pre-change multi-Dijkstra pipeline.  Outputs are
    bit-identical (tests/test_dynamic_fastpath.py); this records the
    throughput gap for the BENCH trajectory.
    """
    benchmark.group = "oracle-dynamic"
    from repro.perf.record import _timed_dynamic_oracle

    result = run_once(_timed_dynamic_oracle, QUICK_PROFILE)
    assert result["outputs_identical"]
    assert result["calls_per_sec"] > 0
    assert result["legacy_calls_per_sec"] > 0
    assert result["front"]["batched_speedup"] > 0


def test_prim_crossover_sweep(run_once, benchmark):
    """Measure the python-vs-numpy Prim crossover behind _PYTHON_PRIM_LIMIT."""
    benchmark.group = "mst"
    from repro.perf.record import _timed_prim_crossover

    result = run_once(_timed_prim_crossover, QUICK_PROFILE)
    assert len(result["sizes"]) == len(QUICK_PROFILE.prim_sizes)
    assert all(t > 0 for t in result["python_us_per_call"])
    assert all(t > 0 for t in result["numpy_us_per_call"])
    # Python must win at the smallest size (the reason the split exists);
    # the crossover itself lands in BENCH_core.json.
    assert result["python_us_per_call"][0] < result["numpy_us_per_call"][0]


def test_emit_bench_core_record(run_once):
    """Write the repo-root BENCH_core.json perf record (quick scale).

    The record is the PR-over-PR perf trajectory for the oracle fast
    path (the committed record shows the >=2x memoization speedup on
    fixed-routing MaxFlow).  Assert structural invariants rather than a
    wall-clock ratio so the suite does not flake on loaded machines —
    the measured speedup lands in the emitted record either way.
    """
    path = run_once(write_core_perf_record, REPO_ROOT / "BENCH_core.json", scale="quick")
    record = json.loads(Path(path).read_text())
    fixed = record["maxflow_fixed"]
    assert fixed["memoized"]["cache_hits"] > 0
    assert fixed["memoized"]["oracle_calls"] == fixed["unmemoized"]["oracle_calls"]
    assert (
        fixed["memoized"]["overall_throughput"]
        == fixed["unmemoized"]["overall_throughput"]
    )
    assert fixed["memoization_speedup"] > 0
    assert record["maxflow_dynamic"]["memoized"]["oracle_calls"] > 0
    assert record["length_multiply"]["batched_speedup"] > 0
    assert record["oracle_batch"]["batched_speedup"] > 0
    assert record["dynamic_oracle"]["outputs_identical"]
    assert record["dynamic_oracle"]["calls_per_sec"] > 0
    assert record["prim_crossover"]["configured_limit"] > 0
    assert record["length_multiply"]["unique_fastpath_speedup"] > 0
    assert record["tree_length"]["ledger"]["ledger_round_speedup"] > 0
    ledger_kernel = record["ledger_kernel"]
    assert ledger_kernel["backend"] in ("ordered", "numba")
    assert ledger_kernel["round_lengths"]["compiled_speedup"] > 0
    assert ledger_kernel["scatter"]["compiled_speedup"] > 0
    assert ledger_kernel["lengths_for_all"]["compiled_speedup"] > 0
    assert record["engine_step"]["fixed"]["outputs_identical"]
    assert record["engine_step"]["dynamic"]["outputs_identical"]
    assert record["engine_step"]["stacked_speedup"] > 0
