"""Benchmarks regenerating the paper's tables (II, IV, VII, VIII).

Each benchmark runs the corresponding experiment at quick scale and
sanity-checks the headline invariants the paper reports (throughput
ordering, fairness, tree counts).
"""

from __future__ import annotations

from repro.experiments import run_experiment


def _column_values(result, key):
    return [column[key] for column in result.data["columns"].values()]


def test_table2_maxflow(run_once, benchmark):
    """Paper Table II: MaxFlow versus approximation ratio (fixed IP routing)."""
    benchmark.group = "tables"
    result = run_once(run_experiment, "table2", "quick")
    assert all(v > 0 for v in _column_values(result, "overall_throughput"))
    assert all(v >= 1 for v in _column_values(result, "trees_session_1"))


def test_table4_maxconcurrent(run_once, benchmark):
    """Paper Table IV: MaxConcurrentFlow versus approximation ratio."""
    benchmark.group = "tables"
    result = run_once(run_experiment, "table4", "quick")
    table2 = run_experiment("table2", "quick")
    # Fairness costs throughput: MaxConcurrentFlow never beats MaxFlow.
    for ratio, column in result.data["columns"].items():
        assert (
            column["overall_throughput"]
            <= table2.data["columns"][ratio]["overall_throughput"] * 1.05
        )
    assert all("prescale_oracle_calls" in c for c in result.data["columns"].values())


def test_table7_maxflow_arbitrary_routing(run_once, benchmark):
    """Paper Table VII: MaxFlow with arbitrary (dynamic) routing."""
    benchmark.group = "tables"
    result = run_once(run_experiment, "table7", "quick")
    assert "throughput_improvement_vs_ip" in result.data
    assert all(v > -0.15 for v in result.data["throughput_improvement_vs_ip"].values())


def test_table8_maxconcurrent_arbitrary_routing(run_once, benchmark):
    """Paper Table VIII: MaxConcurrentFlow with arbitrary (dynamic) routing."""
    benchmark.group = "tables"
    result = run_once(run_experiment, "table8", "quick")
    assert "throughput_improvement_vs_ip" in result.data
    assert all(v > 0 for v in _column_values(result, "overall_throughput"))
