"""Benchmark-suite configuration.

Every benchmark regenerates one paper table/figure at quick scale.  The
underlying experiment runner caches shared runs within the process (e.g.
the Section VI sweep feeds Figs 12–19), so the first benchmark touching a
family pays the solve cost and the rest measure the (cheap) extraction —
the per-figure wall time is therefore not a solver benchmark but a
"regenerate this artifact" benchmark, which is what the harness documents.

Benchmarks run exactly once (pedantic, 1 round) to keep the suite's total
runtime in minutes.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the benchmarked callable exactly once and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
