"""Benchmarks regenerating Figures 12–19 (the Section VI sweep).

The sweep runs MaxFlow, MaxConcurrentFlow and the online algorithm over a
sessions x session-size grid on a two-level topology; each benchmark
extracts one of the paper's surfaces/curves and checks its headline shape
(competition lowers per-session throughput, fairness is cheap, the online
algorithm approximates the bounds).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_experiment


def test_fig12_throughput_surface(run_once, benchmark):
    """Paper Fig. 12: overall throughput surface under MaxFlow."""
    benchmark.group = "figures-sweep"
    result = run_once(run_experiment, "fig12", "quick")
    values = np.asarray(result.data["values"])
    assert np.all(values > 0)
    # Larger sessions disseminate to more receivers: throughput grows with
    # session size for the single-session row.
    assert values[0, -1] >= values[0, 0]


def test_fig13_edges_per_node(run_once, benchmark):
    """Paper Fig. 13: covered physical edges per overlay node."""
    benchmark.group = "figures-sweep"
    result = run_once(run_experiment, "fig13", "quick")
    values = np.asarray(result.data["values"])
    assert np.all(values > 0)


def test_fig14_utilization_staircase(run_once, benchmark):
    """Paper Fig. 14: link-utilization staircase at different concurrency levels."""
    benchmark.group = "figures-sweep"
    result = run_once(run_experiment, "fig14", "quick")
    assert result.data["panels"]
    for panel in result.data["panels"].values():
        for series in panel.values():
            assert 0.0 <= series["mean_utilization"] <= 1.0 + 1e-6


def test_fig15_minimum_rate_surface(run_once, benchmark):
    """Paper Fig. 15: minimum session rate surface under MaxConcurrentFlow."""
    benchmark.group = "figures-sweep"
    result = run_once(run_experiment, "fig15", "quick")
    values = np.asarray(result.data["values"])
    assert np.all(values > 0)
    # More competing sessions cannot raise the minimum rate.
    assert values[-1].mean() <= values[0].mean() * 1.05


def test_fig16_throughput_ratio_surface(run_once, benchmark):
    """Paper Fig. 16: MaxConcurrentFlow/MaxFlow throughput ratio."""
    benchmark.group = "figures-sweep"
    result = run_once(run_experiment, "fig16", "quick")
    values = np.asarray(result.data["values"])
    assert np.all(values <= 1.15)
    assert np.all(values > 0.3)


def test_fig17_asymmetry_vs_session_size(run_once, benchmark):
    """Paper Fig. 17: asymmetric rate distribution versus session size."""
    benchmark.group = "figures-sweep"
    result = run_once(run_experiment, "fig17", "quick")
    for panel in result.data["panels"].values():
        shares = [series["top_10pct_share"] for series in panel.values()]
        assert all(0.0 < s <= 1.0 for s in shares)


def test_fig18_online_vs_maxflow(run_once, benchmark):
    """Paper Fig. 18: online/MaxFlow throughput ratio surfaces."""
    benchmark.group = "figures-sweep"
    result = run_once(run_experiment, "fig18", "quick")
    surfaces = result.data["surfaces"]
    limits = result.data["tree_limits"]
    small = np.asarray(surfaces[f"trees_{limits[0]}"]["values"]).mean()
    large = np.asarray(surfaces[f"trees_{limits[-1]}"]["values"]).mean()
    # More trees per session can only improve the online approximation.
    assert large >= small - 0.05


def test_fig19_online_vs_maxconcurrent(run_once, benchmark):
    """Paper Fig. 19: online/MaxConcurrentFlow minimum-rate ratio surfaces."""
    benchmark.group = "figures-sweep"
    result = run_once(run_experiment, "fig19", "quick")
    for surface in result.data["surfaces"].values():
        values = np.asarray(surface["values"])
        assert np.all(values >= 0.0)
