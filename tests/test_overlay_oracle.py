"""Tests for the minimum overlay spanning tree oracle."""

import numpy as np
import pytest

from repro.overlay.oracle import (
    MinimumOverlayTreeOracle,
    build_oracles,
    total_oracle_calls,
)
from repro.overlay.session import Session
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.util.errors import ConfigurationError, InvalidSessionError


class TestFixedRoutingOracle:
    def test_minimum_tree_spans_members(self, diamond_network):
        session = Session((0, 1, 3))
        oracle = MinimumOverlayTreeOracle(session, FixedIPRouting(diamond_network))
        result = oracle.minimum_tree(np.ones(diamond_network.num_edges))
        assert set(result.tree.members) == {0, 1, 3}
        assert len(result.tree.overlay_edges) == 2

    def test_minimum_tree_is_optimal_over_all_trees(self, diamond_network):
        session = Session((0, 1, 3))
        routing = FixedIPRouting(diamond_network)
        oracle = MinimumOverlayTreeOracle(session, routing)
        rng = np.random.default_rng(3)
        candidate_trees = [
            [(0, 1), (0, 3)],
            [(0, 1), (1, 3)],
            [(0, 3), (1, 3)],
        ]
        for _ in range(5):
            lengths = rng.uniform(0.1, 20.0, diamond_network.num_edges)
            result = oracle.minimum_tree(lengths)
            paths = routing.paths_for_pairs([(0, 1), (0, 3), (1, 3)])
            best = min(
                sum(paths[e].length(lengths) for e in tree) for tree in candidate_trees
            )
            assert result.length == pytest.approx(best)

    def test_length_matches_tree(self, diamond_network):
        session = Session((0, 1, 2, 3))
        oracle = MinimumOverlayTreeOracle(session, FixedIPRouting(diamond_network))
        lengths = np.linspace(1.0, 2.0, diamond_network.num_edges)
        result = oracle.minimum_tree(lengths)
        assert result.length == pytest.approx(result.tree.length(lengths))

    def test_call_count_increments(self, diamond_network):
        session = Session((0, 1, 3))
        oracle = MinimumOverlayTreeOracle(session, FixedIPRouting(diamond_network))
        lengths = np.ones(diamond_network.num_edges)
        oracle.minimum_tree(lengths)
        oracle.minimum_tree(lengths)
        assert oracle.call_count == 2
        oracle.reset_call_count()
        assert oracle.call_count == 0

    def test_normalized_length(self, diamond_network):
        session = Session((0, 1, 3))
        oracle = MinimumOverlayTreeOracle(session, FixedIPRouting(diamond_network))
        result = oracle.minimum_tree(np.ones(diamond_network.num_edges))
        # Session size 3 -> 2 receivers; with |Smax| = 5 the factor is (5-1)/(3-1) = 2.
        assert oracle.normalized_length(result, 5) == pytest.approx(2.0 * result.length)
        assert oracle.normalized_length(result, 3) == pytest.approx(result.length)

    def test_normalized_length_invalid_smax(self, diamond_network):
        session = Session((0, 1, 3))
        oracle = MinimumOverlayTreeOracle(session, FixedIPRouting(diamond_network))
        result = oracle.minimum_tree(np.ones(diamond_network.num_edges))
        with pytest.raises(ConfigurationError):
            oracle.normalized_length(result, 1)

    def test_max_route_length(self, path_network):
        session = Session((0, 4))
        oracle = MinimumOverlayTreeOracle(session, FixedIPRouting(path_network))
        assert oracle.max_route_length() == 4

    def test_covered_edges(self, diamond_network):
        session = Session((0, 3))
        oracle = MinimumOverlayTreeOracle(session, FixedIPRouting(diamond_network))
        assert oracle.covered_edges().size == 2  # one 2-hop route

    def test_member_outside_network_rejected(self, diamond_network):
        with pytest.raises(InvalidSessionError):
            MinimumOverlayTreeOracle(Session((0, 99)), FixedIPRouting(diamond_network))


class TestDynamicRoutingOracle:
    def test_tree_adapts_to_lengths(self, diamond_network):
        session = Session((0, 3))
        oracle = MinimumOverlayTreeOracle(session, DynamicRouting(diamond_network))
        lengths = np.ones(diamond_network.num_edges)
        base = oracle.minimum_tree(lengths)
        assert base.tree.total_physical_hops() == 2.0
        # Penalise the 0-1 and 1-3 route; the dynamic oracle must reroute
        # through 0-2-3 while a fixed-route oracle could not change paths.
        lengths[diamond_network.edge_id(0, 1)] = 50.0
        lengths[diamond_network.edge_id(1, 3)] = 50.0
        rerouted = oracle.minimum_tree(lengths)
        assert rerouted.tree.usage_of(diamond_network.edge_id(0, 2)) == 1.0
        assert rerouted.tree.usage_of(diamond_network.edge_id(2, 3)) == 1.0

    def test_matches_fixed_on_uniform_lengths(self, waxman_network):
        session = Session((1, 6, 14, 21))
        fixed = MinimumOverlayTreeOracle(session, FixedIPRouting(waxman_network))
        dynamic = MinimumOverlayTreeOracle(session, DynamicRouting(waxman_network))
        ones = np.ones(waxman_network.num_edges)
        assert fixed.minimum_tree(ones).length == pytest.approx(
            dynamic.minimum_tree(ones).length
        )

    def test_dynamic_never_longer_than_fixed(self, waxman_network):
        session = Session((2, 9, 18, 30))
        fixed = MinimumOverlayTreeOracle(session, FixedIPRouting(waxman_network))
        dynamic = MinimumOverlayTreeOracle(session, DynamicRouting(waxman_network))
        rng = np.random.default_rng(5)
        for _ in range(5):
            lengths = rng.uniform(0.1, 10.0, waxman_network.num_edges)
            assert (
                dynamic.minimum_tree(lengths).length
                <= fixed.minimum_tree(lengths).length + 1e-9
            )

    def test_covered_edges_dynamic(self, diamond_network):
        session = Session((0, 3))
        oracle = MinimumOverlayTreeOracle(session, DynamicRouting(diamond_network))
        assert oracle.covered_edges().size >= 2


class TestOracleHelpers:
    def test_build_oracles_and_total_calls(self, diamond_network):
        sessions = [Session((0, 1)), Session((2, 3))]
        oracles = build_oracles(sessions, FixedIPRouting(diamond_network))
        assert len(oracles) == 2
        lengths = np.ones(diamond_network.num_edges)
        oracles[0].minimum_tree(lengths)
        oracles[1].minimum_tree(lengths)
        oracles[1].minimum_tree(lengths)
        assert total_oracle_calls(oracles) == 3
