"""Tests for repro.overlay.tree and repro.overlay.mst."""

import numpy as np
import pytest

from repro.overlay.mst import minimum_spanning_tree_pairs
from repro.overlay.tree import OverlayTree
from repro.routing.ip_routing import FixedIPRouting
from repro.util.errors import InvalidSessionError


def _build_tree(network, members, overlay_edges):
    routing = FixedIPRouting(network)
    paths = routing.paths_for_pairs(overlay_edges)
    return OverlayTree.from_paths(members, overlay_edges, paths, network.num_edges)


class TestOverlayTree:
    def test_from_paths_usage_counts(self, diamond_network):
        tree = _build_tree(diamond_network, [0, 1, 3], [(0, 1), (1, 3)])
        assert tree.size == 3
        assert tree.num_receivers == 2
        assert tree.usage_of(diamond_network.edge_id(0, 1)) == 1.0
        assert tree.usage_of(diamond_network.edge_id(1, 3)) == 1.0
        assert tree.total_physical_hops() == 2.0

    def test_shared_physical_edge_counts_twice(self, path_network):
        # Members 0, 2, 4 on a path; overlay edges (0,4) and (2,4) both use
        # links 2-3 and 3-4, so their usage must be 2.
        tree = _build_tree(path_network, [0, 2, 4], [(0, 4), (2, 4)])
        assert tree.usage_of(path_network.edge_id(2, 3)) == 2.0
        assert tree.usage_of(path_network.edge_id(3, 4)) == 2.0
        assert tree.usage_of(path_network.edge_id(0, 1)) == 1.0

    def test_non_spanning_edge_set_rejected(self, diamond_network):
        routing = FixedIPRouting(diamond_network)
        paths = routing.paths_for_pairs([(0, 1), (0, 1)])
        with pytest.raises(InvalidSessionError):
            OverlayTree.from_paths([0, 1, 3], [(0, 1)], paths, diamond_network.num_edges)

    def test_cycle_rejected(self, diamond_network):
        routing = FixedIPRouting(diamond_network)
        pairs = [(0, 1), (1, 2), (0, 2)]
        paths = routing.paths_for_pairs(pairs)
        with pytest.raises(InvalidSessionError):
            OverlayTree.from_paths([0, 1, 2], pairs, paths, diamond_network.num_edges)

    def test_missing_path_rejected(self, diamond_network):
        with pytest.raises(InvalidSessionError):
            OverlayTree(
                members=(0, 1, 3),
                overlay_edges=((0, 1), (1, 3)),
                paths={},
                edge_usage=np.zeros(diamond_network.num_edges),
            )

    def test_length_under_weights(self, path_network):
        tree = _build_tree(path_network, [0, 2, 4], [(0, 2), (2, 4)])
        weights = np.arange(1.0, path_network.num_edges + 1)
        assert tree.length(weights) == pytest.approx(float(weights.sum()))

    def test_bottleneck_capacity(self, path_network):
        tree = _build_tree(path_network, [0, 2, 4], [(0, 4), (2, 4)])
        # Links 2-3 and 3-4 are used twice -> bottleneck is capacity/2.
        assert tree.bottleneck_capacity(path_network.capacities) == pytest.approx(4.0)

    def test_canonical_key_equality(self, diamond_network):
        t1 = _build_tree(diamond_network, [0, 1, 3], [(0, 1), (1, 3)])
        t2 = _build_tree(diamond_network, [0, 1, 3], [(1, 3), (0, 1)])
        t3 = _build_tree(diamond_network, [0, 1, 3], [(0, 1), (0, 3)])
        assert t1 == t2
        assert hash(t1) == hash(t2)
        assert t1 != t3

    def test_physical_edges_listing(self, diamond_network):
        tree = _build_tree(diamond_network, [0, 1, 2], [(0, 1), (0, 2)])
        assert set(tree.physical_edges.tolist()) == {
            diamond_network.edge_id(0, 1),
            diamond_network.edge_id(0, 2),
        }


class TestMinimumSpanningTreePairs:
    def test_simple_triangle(self):
        w = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 2.0], [5.0, 2.0, 0.0]])
        edges = minimum_spanning_tree_pairs(w)
        assert sorted(edges) == [(0, 1), (1, 2)]

    def test_single_node(self):
        assert minimum_spanning_tree_pairs(np.zeros((1, 1))) == []

    def test_two_nodes(self):
        assert minimum_spanning_tree_pairs(np.array([[0.0, 3.0], [3.0, 0.0]])) == [(0, 1)]

    def test_zero_weights_allowed(self):
        w = np.zeros((4, 4))
        edges = minimum_spanning_tree_pairs(w)
        assert len(edges) == 3

    def test_total_weight_is_minimal(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            n = 6
            sym = rng.uniform(1, 10, size=(n, n))
            w = (sym + sym.T) / 2
            np.fill_diagonal(w, 0.0)
            edges = minimum_spanning_tree_pairs(w)
            total = sum(w[i, j] for i, j in edges)
            # Compare against networkx's MST as an oracle.
            import networkx as nx

            g = nx.Graph()
            for i in range(n):
                for j in range(i + 1, n):
                    g.add_edge(i, j, weight=w[i, j])
            expected = sum(
                d["weight"] for _, _, d in nx.minimum_spanning_edges(g, data=True)
            )
            assert total == pytest.approx(expected)

    def test_disconnected_inf_weights_rejected(self):
        w = np.full((3, 3), np.inf)
        np.fill_diagonal(w, 0.0)
        w[0, 1] = w[1, 0] = 1.0
        with pytest.raises(InvalidSessionError):
            minimum_spanning_tree_pairs(w)

    def test_asymmetric_matrix_rejected(self):
        w = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(InvalidSessionError):
            minimum_spanning_tree_pairs(w)

    def test_negative_weights_rejected(self):
        w = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(InvalidSessionError):
            minimum_spanning_tree_pairs(w)

    def test_non_square_rejected(self):
        with pytest.raises(InvalidSessionError):
            minimum_spanning_tree_pairs(np.zeros((2, 3)))
