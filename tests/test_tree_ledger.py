"""Stacked tree ledger: equivalence suite and unit tests.

The stacked-trees engine path (``TreeLedger`` columns, one
``lengths @ M`` product per query round, deduplicated per-step length
flushes, grouped online rounds) is a pure performance representation —
its contract is **bit identity** with the per-tree loop it replaces.
This suite pins that contract across all four registered solvers, both
routing models, and memoization on/off, and unit-tests the ledger's
growth-doubling storage, content-addressed dedup, column identity with
the oracle memo, and both evaluation products.
"""

import numpy as np
import pytest

from repro.api.registry import (
    solve_max_concurrent_flow_instance,
    solve_max_flow_instance,
    solve_online_instance,
    solve_randomized_rounding_instance,
)
from repro.core.engine import (
    TreeLedger,
    configure_stacked_trees,
    stacked_trees_default,
    use_kernel_backend,
)
from repro.core.lengths import LengthFunction
from repro.core.online import OnlineConfig, OnlineMinCongestion
from repro.core.result import SessionResult, TreeFlow
from repro.overlay.oracle import MinimumOverlayTreeOracle
from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree
from repro.routing.base import pair_key
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.util.errors import ConfigurationError


def fingerprint(solution):
    """Everything the paper reports about a solution, exactly."""
    return {
        "algorithm": solution.algorithm,
        "epsilon": solution.epsilon,
        "oracle_calls": solution.oracle_calls,
        "rates": [s.rate for s in solution.sessions],
        "names": [s.session.name for s in solution.sessions],
        "num_trees": solution.num_trees_per_session,
        "flows": [
            sorted((tf.tree.canonical_key(), tf.flow) for tf in s.tree_flows)
            for s in solution.sessions
        ],
        "edge_flows": solution.edge_flows().tolist(),
        "extra": dict(solution.extra),
    }


@pytest.fixture(scope="module")
def ledger_sessions():
    return [
        Session((0, 4, 9, 13), demand=100.0, name="s1"),
        Session((2, 7, 20), demand=100.0, name="s2"),
    ]


# ----------------------------------------------------------------------
# equivalence: stacked on vs off, 4 solvers x 2 routings x memoize
# ----------------------------------------------------------------------
@pytest.mark.parametrize("memoize", [True, False], ids=["memo", "nomemo"])
@pytest.mark.parametrize("routing_cls", [FixedIPRouting, DynamicRouting])
class TestStackedEquivalence:
    def test_max_flow_bit_identical(
        self, waxman_network, ledger_sessions, routing_cls, memoize
    ):
        runs = [
            solve_max_flow_instance(
                ledger_sessions,
                routing_cls(waxman_network),
                epsilon=0.15,
                memoize=memoize,
                stacked_trees=stacked,
            )
            for stacked in (True, False)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])

    def test_max_concurrent_flow_bit_identical(
        self, waxman_network, ledger_sessions, routing_cls, memoize
    ):
        runs = [
            solve_max_concurrent_flow_instance(
                ledger_sessions,
                routing_cls(waxman_network),
                epsilon=0.25,
                prescale_epsilon=0.3,
                memoize=memoize,
                stacked_trees=stacked,
            )
            for stacked in (True, False)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])

    def test_online_bit_identical(
        self, waxman_network, ledger_sessions, routing_cls, memoize
    ):
        arrivals = ledger_sessions + ledger_sessions + ledger_sessions
        runs = [
            solve_online_instance(
                arrivals,
                routing_cls(waxman_network),
                sigma=10.0,
                memoize=memoize,
                stacked_trees=stacked,
            )
            for stacked in (True, False)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])

    def test_randomized_rounding_bit_identical(
        self, waxman_network, ledger_sessions, routing_cls, memoize
    ):
        runs = [
            solve_randomized_rounding_instance(
                ledger_sessions,
                routing_cls(waxman_network),
                max_trees=2,
                seed=5,
                epsilon=0.25,
                prescale_epsilon=0.3,
                memoize=memoize,
                stacked_trees=stacked,
            )
            for stacked in (True, False)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])


# ----------------------------------------------------------------------
# engine counters and the process-wide default
# ----------------------------------------------------------------------
def test_stacked_run_reports_ledger_counters(waxman_network, ledger_sessions):
    routing = FixedIPRouting(waxman_network)
    stacked = solve_max_flow_instance(
        ledger_sessions, routing, epsilon=0.15, stacked_trees=True
    )
    instr = stacked.instrumentation
    assert instr["ledger_columns"] > 0
    assert instr["spmm_rounds"] > 0
    assert instr["batched_rounds"] > 0
    # The gauge counts distinct trees, never more than length updates.
    assert instr["ledger_columns"] <= instr["length_updates"] + 1

    loop = solve_max_flow_instance(
        ledger_sessions, routing, epsilon=0.15, stacked_trees=False
    )
    assert loop.instrumentation["ledger_columns"] == 0
    assert loop.instrumentation["spmm_rounds"] == 0


def test_stacked_loop_round_still_counts_per_session(waxman_network, ledger_sessions):
    # batch_oracle off + stacked on: the grouped ledger round replaces
    # the per-oracle loop but still books as a per-session round.
    from repro.core.maxflow import MaxFlow, MaxFlowConfig

    solution = MaxFlow(
        ledger_sessions,
        FixedIPRouting(waxman_network),
        MaxFlowConfig(epsilon=0.15, batch_oracle=False, stacked_trees=True),
    ).solve()
    instr = solution.instrumentation
    assert instr["batched_rounds"] == 0
    assert instr["per_session_rounds"] > 0
    assert instr["spmm_rounds"] > 0


def test_configure_stacked_trees_round_trip():
    assert stacked_trees_default() is True
    previous = configure_stacked_trees(False)
    try:
        assert previous is True
        assert stacked_trees_default() is False
    finally:
        configure_stacked_trees(previous)
    assert stacked_trees_default() is True


# ----------------------------------------------------------------------
# online grouping: independent arrivals share one round, exactly
# ----------------------------------------------------------------------
def _ring_arrivals(demand=5.0):
    # Footprint-disjoint on the 6-ring: (0,1) uses edge 0-1, (3,4) uses
    # edge 3-4 — a groupable prefix under fixed routing.
    return [
        Session((0, 1), demand=demand, name="a"),
        Session((3, 4), demand=demand, name="b"),
        Session((0, 1), demand=demand, name="a2"),
        Session((3, 4), demand=demand, name="b2"),
    ]


def _online_run(network, stacked, arrivals):
    solver = OnlineMinCongestion(
        FixedIPRouting(network), OnlineConfig(sigma=10.0, stacked_trees=stacked)
    )
    trees = solver.accept_all(arrivals)
    return solver, trees


def test_online_grouped_rounds_are_bit_identical(ring6_network):
    arrivals = _ring_arrivals()
    stacked_solver, stacked_trees = _online_run(ring6_network, True, arrivals)
    loop_solver, loop_trees = _online_run(ring6_network, False, arrivals)
    assert [t.canonical_key() for t in stacked_trees] == [
        t.canonical_key() for t in loop_trees
    ]
    assert np.array_equal(
        stacked_solver.state.congestion, loop_solver.state.congestion
    )
    assert np.array_equal(
        stacked_solver.state.lengths.relative, loop_solver.state.lengths.relative
    )
    assert fingerprint(stacked_solver.solution()) == fingerprint(
        loop_solver.solution()
    )
    # The stacked run actually grouped: footprint-disjoint arrivals were
    # answered by shared SpMM rounds, with identical per-arrival calls.
    stacked_instr = stacked_solver.solution().instrumentation
    assert stacked_instr["spmm_rounds"] > 0
    assert stacked_instr["oracle_queries"] == len(arrivals)
    assert loop_solver.solution().instrumentation["spmm_rounds"] == 0


def test_online_prefetch_dropped_on_renormalization(ring6_network):
    # A demand this large renormalises the lengths while routing the
    # group's head, so the prefetched mate must be re-queried — exactly
    # reproducing the sequential decisions.
    arrivals = _ring_arrivals(demand=1e250)
    stacked_solver, stacked_trees = _online_run(ring6_network, True, arrivals)
    loop_solver, loop_trees = _online_run(ring6_network, False, arrivals)
    assert stacked_solver.state.lengths.log_offset > 0  # renorm fired
    assert [t.canonical_key() for t in stacked_trees] == [
        t.canonical_key() for t in loop_trees
    ]
    assert np.array_equal(
        stacked_solver.state.lengths.relative, loop_solver.state.lengths.relative
    )
    # Dropped prefetches re-query, so the stacked run performs extra MST
    # operations; the per-arrival accounting stays one per arrival.
    stacked_instr = stacked_solver.solution().instrumentation
    assert stacked_instr["oracle_queries"] > len(arrivals)
    assert stacked_solver.state.oracle_calls == len(arrivals)


def test_online_incremental_accept_matches_accept_all(ring6_network):
    arrivals = _ring_arrivals()
    batch_solver, batch_trees = _online_run(ring6_network, True, arrivals)
    one_by_one = OnlineMinCongestion(
        FixedIPRouting(ring6_network), OnlineConfig(sigma=10.0, stacked_trees=True)
    )
    single_trees = [one_by_one.accept(s) for s in arrivals]
    assert [t.canonical_key() for t in batch_trees] == [
        t.canonical_key() for t in single_trees
    ]
    assert np.array_equal(
        batch_solver.state.lengths.relative, one_by_one.state.lengths.relative
    )


# ----------------------------------------------------------------------
# ledger unit tests
# ----------------------------------------------------------------------
def _pair_tree(routing, network, u, v):
    pk = pair_key(u, v)
    paths = routing.paths_for_pairs([pk])
    return OverlayTree.from_paths((u, v), [pk], paths, network.num_edges)


def test_register_growth_doubling_and_layout(ring6_network):
    routing = FixedIPRouting(ring6_network)
    ledger = TreeLedger(ring6_network.num_edges, initial_columns=1, initial_entries=1)
    trees = [_pair_tree(routing, ring6_network, i, (i + 1) % 6) for i in range(6)]
    columns = [ledger.register(t) for t in trees]
    assert columns == list(range(6))
    assert ledger.num_columns == 6
    assert ledger.nnz == sum(t.physical_edges.size for t in trees)
    for column, tree in zip(columns, trees):
        start, end = ledger.column_slices(np.asarray([column]))
        sl = slice(int(start[0]), int(end[0]))
        assert np.array_equal(ledger._rows[sl], tree.physical_edges)
        assert np.array_equal(ledger._values[sl], tree.usage_values)
        assert ledger.tree_at(column) is tree


def test_register_is_content_addressed(ring6_network):
    routing = FixedIPRouting(ring6_network)
    ledger = TreeLedger(ring6_network.num_edges)
    tree = _pair_tree(routing, ring6_network, 0, 1)
    rebuilt = _pair_tree(routing, ring6_network, 0, 1)
    assert tree is not rebuilt
    first = ledger.register(tree)
    again = ledger.register(rebuilt)
    assert first == again
    assert ledger.num_columns == 1
    assert ledger.registrations == 2
    assert ledger.column_for(rebuilt) == first
    assert ledger.column_for(_pair_tree(routing, ring6_network, 2, 3)) is None


def test_register_rejects_mismatched_edge_count(ring6_network, diamond_network):
    routing = FixedIPRouting(diamond_network)
    ledger = TreeLedger(ring6_network.num_edges + 10)
    with pytest.raises(ConfigurationError):
        ledger.register(_pair_tree(routing, diamond_network, 0, 1))


def test_oracle_memo_and_ledger_share_identity(waxman_network, ledger_sessions):
    routing = FixedIPRouting(waxman_network)
    ledger = TreeLedger(waxman_network.num_edges)
    memo = MinimumOverlayTreeOracle(ledger_sessions[0], routing, memoize=True)
    memo.attach_ledger(ledger)
    fresh = MinimumOverlayTreeOracle(ledger_sessions[0], routing, memoize=False)
    fresh.attach_ledger(ledger)
    rng = np.random.default_rng(3)
    for _ in range(8):
        lengths = rng.uniform(0.5, 2.0, waxman_network.num_edges)
        a = memo.select_tree(lengths)
        b = fresh.select_tree(lengths)
        # Same tree, same column — whether it came from the memo or a
        # fresh construction.
        assert ledger.column_for(a) == ledger.column_for(b)
    assert ledger.num_columns == memo.cache_info()["size"]


def test_attach_ledger_registers_existing_memo(waxman_network, ledger_sessions):
    routing = FixedIPRouting(waxman_network)
    oracle = MinimumOverlayTreeOracle(ledger_sessions[0], routing, memoize=True)
    rng = np.random.default_rng(4)
    for _ in range(6):
        oracle.minimum_tree(rng.uniform(0.5, 2.0, waxman_network.num_edges))
    ledger = TreeLedger(waxman_network.num_edges)
    oracle.attach_ledger(ledger)
    assert ledger.num_columns == oracle.cache_info()["size"]


def test_lengths_for_matches_tree_length_dense(waxman_network, ledger_sessions):
    routing = FixedIPRouting(waxman_network)
    oracle = MinimumOverlayTreeOracle(ledger_sessions[0], routing)
    ledger = TreeLedger(waxman_network.num_edges)
    oracle.attach_ledger(ledger)
    rng = np.random.default_rng(5)
    trees = []
    for _ in range(6):
        trees.append(oracle.select_tree(rng.uniform(0.5, 2.0, waxman_network.num_edges)))
    lengths = rng.uniform(0.5, 2.0, waxman_network.num_edges)
    columns = [ledger.register(t) for t in trees]
    stacked = ledger.lengths_for(columns, lengths)
    assert stacked.tolist() == [t.length(lengths) for t in trees]


def test_lengths_for_matches_tree_length_sparse(monkeypatch, ring6_network):
    # Force the sparse per-tree branch (and the ledger's gathered-dot
    # path) on a small network: both read the module constant at
    # construction time.
    import repro.core.engine.ledger as ledger_mod
    import repro.overlay.tree as tree_mod

    monkeypatch.setattr(tree_mod, "SPARSE_LENGTH_MIN_EDGES", 4)
    monkeypatch.setattr(ledger_mod, "SPARSE_LENGTH_MIN_EDGES", 4)
    routing = FixedIPRouting(ring6_network)
    trees = [_pair_tree(routing, ring6_network, i, (i + 1) % 6) for i in range(6)]
    assert all(t._sparse_length for t in trees)
    ledger = TreeLedger(ring6_network.num_edges)
    columns = [ledger.register(t) for t in trees]
    rng = np.random.default_rng(6)
    lengths = rng.uniform(0.5, 2.0, ring6_network.num_edges)
    stacked = ledger.lengths_for(columns, lengths)
    assert stacked.tolist() == [t.length(lengths) for t in trees]
    # Subset/reordered requests evaluate the same columns identically.
    subset = [columns[4], columns[1]]
    assert ledger.lengths_for(subset, lengths).tolist() == [
        trees[4].length(lengths),
        trees[1].length(lengths),
    ]


def test_edge_values_matches_per_tree_scatter(waxman_network, ledger_sessions):
    routing = FixedIPRouting(waxman_network)
    oracle = MinimumOverlayTreeOracle(ledger_sessions[0], routing)
    ledger = TreeLedger(waxman_network.num_edges)
    oracle.attach_ledger(ledger)
    rng = np.random.default_rng(7)
    trees = [
        oracle.select_tree(rng.uniform(0.5, 2.0, waxman_network.num_edges))
        for _ in range(6)
    ]
    columns = [ledger.register(t) for t in trees]
    weights = rng.uniform(0.1, 3.0, len(columns))
    stacked = ledger.edge_values(columns, weights)
    reference = np.zeros(waxman_network.num_edges, dtype=float)
    for tree, w in zip(trees, weights):
        reference[tree.physical_edges] += tree.usage_values * w
    assert np.array_equal(stacked, reference)
    with pytest.raises(ConfigurationError):
        ledger.edge_values(columns, weights[:-1])


def test_bucket_partitions_cover_all_columns(waxman_network, ledger_sessions):
    routing = FixedIPRouting(waxman_network)
    ledger = TreeLedger(waxman_network.num_edges)
    small = MinimumOverlayTreeOracle(
        Session((0, 1), demand=1.0, name="tiny"), routing
    )
    big = MinimumOverlayTreeOracle(ledger_sessions[0], routing)
    for oracle in (small, big):
        oracle.attach_ledger(ledger)
        oracle.minimum_tree(np.ones(waxman_network.num_edges))
    partitions = ledger.bucket_partitions()
    covered = np.concatenate(list(partitions.values()))
    assert sorted(covered.tolist()) == list(range(ledger.num_columns))
    for bucket, columns in partitions.items():
        for column in columns:
            footprint = int(ledger.tree_at(int(column)).physical_edges.size)
            assert footprint.bit_length() == bucket


def test_lengths_for_all_matches_lengths_for(waxman_network, ledger_sessions):
    routing = FixedIPRouting(waxman_network)
    ledger = TreeLedger(waxman_network.num_edges)
    for session in [ledger_sessions[0], Session((1, 5), demand=1.0, name="p")]:
        oracle = MinimumOverlayTreeOracle(session, routing)
        oracle.attach_ledger(ledger)
        rng = np.random.default_rng(8)
        for _ in range(4):
            oracle.minimum_tree(rng.uniform(0.5, 2.0, waxman_network.num_edges))
    lengths = np.random.default_rng(9).uniform(0.5, 2.0, waxman_network.num_edges)
    exact = ledger.lengths_for(list(range(ledger.num_columns)), lengths)
    padded = ledger.lengths_for_all(lengths)
    np.testing.assert_allclose(padded, exact, rtol=1e-12)


# ----------------------------------------------------------------------
# satellite pieces: unique multiply_batch fast path, one-scatter flows
# ----------------------------------------------------------------------
def test_multiply_batch_assume_unique_bit_identical():
    rng = np.random.default_rng(10)
    ids = rng.permutation(50)[:20].astype(np.int64)
    factors = rng.uniform(1.0, 3.0, ids.size)
    runs = []
    for assume_unique in (False, True):
        lf = LengthFunction(50, 0.0)
        lf.multiply_batch(ids, factors, assume_unique=assume_unique)
        runs.append(lf.relative.copy())
    loop = LengthFunction(50, 0.0)
    loop.multiply(ids, factors)
    assert np.array_equal(runs[0], runs[1])
    assert np.array_equal(runs[1], loop.relative)


def test_multiply_batch_assume_unique_renormalizes():
    lf = LengthFunction(4, 0.0)
    lf.multiply_batch(
        np.array([0, 2]), np.array([1e201, 5.0]), assume_unique=True
    )
    reference = LengthFunction(4, 0.0)
    reference.multiply(np.array([0, 2]), np.array([1e201, 5.0]))
    assert lf.log_offset == reference.log_offset
    assert np.array_equal(lf.relative, reference.relative)


def test_multiply_batch_assume_unique_still_validates():
    lf = LengthFunction(4, 0.0)
    with pytest.raises(ConfigurationError):
        lf.multiply_batch(np.array([0]), np.array([-1.0]), assume_unique=True)
    with pytest.raises(ConfigurationError):
        lf.multiply_batch(np.array([0, 1]), np.array([2.0]), assume_unique=True)


def test_session_edge_flows_one_scatter_matches_loop(waxman_network, ledger_sessions):
    routing = FixedIPRouting(waxman_network)
    oracle = MinimumOverlayTreeOracle(ledger_sessions[0], routing)
    rng = np.random.default_rng(11)
    flows = []
    for _ in range(5):
        tree = oracle.minimum_tree(
            rng.uniform(0.5, 2.0, waxman_network.num_edges)
        ).tree
        flows.append(TreeFlow(tree=tree, flow=float(rng.uniform(0.1, 2.0))))
    result = SessionResult(session=ledger_sessions[0], tree_flows=tuple(flows))
    out = result.edge_flows(waxman_network.num_edges)
    reference = np.zeros(waxman_network.num_edges, dtype=float)
    for tf in flows:
        reference[tf.tree.physical_edges] += tf.tree.usage_values * tf.flow
    assert np.array_equal(out, reference)
    empty = SessionResult(session=ledger_sessions[0], tree_flows=())
    assert np.array_equal(
        empty.edge_flows(waxman_network.num_edges),
        np.zeros(waxman_network.num_edges),
    )


# ----------------------------------------------------------------------
# satellite pieces: empty-ledger guard, contiguous-gather fast path
# ----------------------------------------------------------------------
def _singleton_tree(member, num_edges):
    # A one-member session's tree: valid, zero physical footprint.
    return OverlayTree.from_paths((member,), [], {}, num_edges)


@pytest.mark.parametrize("backend", ["numpy", "ordered"])
def test_lengths_for_all_with_only_empty_columns(ring6_network, backend):
    # Regression: columns registered but nnz == 0 (every footprint
    # empty).  The numpy path's padded gather would otherwise index the
    # stores at nnz - 1 == -1; both backends must return exact zeros.
    ledger = TreeLedger(ring6_network.num_edges)
    for member in range(3):
        ledger.register(_singleton_tree(member, ring6_network.num_edges))
    # Zero-footprint trees share the canonical key ((), ()), so the
    # content-addressed store keeps exactly one empty column.
    assert ledger.num_columns == 1
    assert ledger.nnz == 0
    lengths = np.linspace(0.5, 2.0, ring6_network.num_edges)
    with use_kernel_backend(backend):
        assert ledger.lengths_for_all(lengths).tolist() == [0.0]
        assert ledger.lengths_for([0], lengths).tolist() == [0.0]
        assert np.array_equal(
            ledger.edge_values([0], np.ones(1)),
            np.zeros(ring6_network.num_edges),
        )


def _cross_ring_ledger(network):
    """Nine pair trees on the 6-ring: adjacent pairs plus chords."""
    routing = FixedIPRouting(network)
    trees = [_pair_tree(routing, network, i, (i + 1) % 6) for i in range(6)]
    trees += [_pair_tree(routing, network, i, (i + 2) % 6) for i in range(3)]
    ledger = TreeLedger(network.num_edges)
    columns = [ledger.register(t) for t in trees]
    assert columns == list(range(9))
    return ledger, trees


@pytest.mark.parametrize("backend", ["numpy", "ordered"])
def test_lengths_for_contiguous_and_scattered_requests_agree(
    monkeypatch, ring6_network, backend
):
    # The gathered-entries fast path serves contiguous column runs as
    # direct store views; scattered/reversed requests take the
    # concatenate path.  Both must produce the per-tree bits.  Force
    # sparse evaluation so the numpy branch exercises the gathered dot.
    import repro.core.engine.ledger as ledger_mod
    import repro.overlay.tree as tree_mod

    monkeypatch.setattr(tree_mod, "SPARSE_LENGTH_MIN_EDGES", 4)
    monkeypatch.setattr(ledger_mod, "SPARSE_LENGTH_MIN_EDGES", 4)
    ledger, trees = _cross_ring_ledger(ring6_network)
    lengths = np.random.default_rng(12).uniform(0.5, 2.0, ring6_network.num_edges)
    with use_kernel_backend(backend):
        expected = [t.length(lengths) for t in trees]
        # Contiguous run (zero-copy view path), below the graduation
        # threshold so the ordered backend uses the gathered kernel.
        assert ledger.lengths_for([2, 3, 4], lengths).tolist() == expected[2:5]
        # Scattered and reversed requests (concatenate path).
        assert ledger.lengths_for([1, 4, 7], lengths).tolist() == [
            expected[1],
            expected[4],
            expected[7],
        ]
        assert ledger.lengths_for([5, 3, 0], lengths).tolist() == [
            expected[5],
            expected[3],
            expected[0],
        ]
        # Full request: ordered backends graduate to lengths_for_all,
        # which must compute the identical bits per column.
        assert ledger.lengths_for(list(range(9)), lengths).tolist() == expected


@pytest.mark.parametrize("backend", ["numpy", "ordered"])
def test_edge_values_contiguous_and_scattered_requests_agree(
    ring6_network, backend
):
    ledger, trees = _cross_ring_ledger(ring6_network)
    rng = np.random.default_rng(13)
    weights = rng.uniform(0.1, 3.0, 9)

    def reference(cols):
        out = np.zeros(ring6_network.num_edges, dtype=float)
        for c in cols:
            out[trees[c].physical_edges] += trees[c].usage_values * weights[c]
        return out

    with use_kernel_backend(backend):
        # Contiguous run (view path), scattered subset (concatenate
        # path), and accumulation into an existing output.
        contiguous = [3, 4, 5]
        assert np.array_equal(
            ledger.edge_values(contiguous, weights[contiguous]),
            reference(contiguous),
        )
        scattered = [0, 4, 8]
        assert np.array_equal(
            ledger.edge_values(scattered, weights[scattered]),
            reference(scattered),
        )
        base = rng.uniform(0.1, 1.0, ring6_network.num_edges)
        accumulated = ledger.edge_values(
            scattered, weights[scattered], out=base.copy()
        )
        loop = base.copy()
        for c in scattered:
            loop[trees[c].physical_edges] += trees[c].usage_values * weights[c]
        assert np.array_equal(accumulated, loop)
