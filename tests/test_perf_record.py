"""Smoke tests for the BENCH_core.json perf-record writer.

Marked ``bench_smoke`` so the benchmark-record machinery is exercised in
the tier-1 run (at tiny scale, sub-seconds) and can also be selected
alone with ``pytest -m bench_smoke``.
"""

import json

import pytest

from repro.perf import BENCH_SCHEMA, measure_core_perf, write_core_perf_record
from repro.perf.record import profile_for_scale
from repro.util.errors import ConfigurationError

pytestmark = pytest.mark.bench_smoke


def test_write_core_perf_record_tiny(tmp_path):
    path = write_core_perf_record(tmp_path / "BENCH_core.json", scale="tiny")
    record = json.loads(path.read_text())
    assert record["schema"] == BENCH_SCHEMA
    assert record["scale"] == "tiny"

    fixed = record["maxflow_fixed"]
    assert fixed["memoized"]["oracle_calls"] > 0
    # Memoization must not change the algorithm: same number of MST
    # operations and the same objective either way.
    assert fixed["memoized"]["oracle_calls"] == fixed["unmemoized"]["oracle_calls"]
    assert (
        fixed["memoized"]["overall_throughput"]
        == fixed["unmemoized"]["overall_throughput"]
    )
    assert fixed["memoized"]["cache_hits"] > 0
    assert fixed["memoization_speedup"] > 0

    dynamic = record["maxflow_dynamic"]["memoized"]
    assert dynamic["oracle_calls"] > 0
    assert dynamic["seconds"] > 0
    # Fixed routing must be much cheaper per oracle call than dynamic
    # (incidence mat-vec versus per-call Dijkstra).
    assert fixed["memoized"]["calls_per_sec"] > dynamic["calls_per_sec"]

    # Sparse tree-length ablation: both arms measured on the same tree,
    # on a dedicated topology large enough for the sparse path to engage.
    from repro.overlay.tree import SPARSE_LENGTH_MIN_EDGES

    tree_length = record["tree_length"]
    assert tree_length["iterations"] > 0
    assert tree_length["num_edges"] >= SPARSE_LENGTH_MIN_EDGES
    assert 0 < tree_length["physical_edges"] < tree_length["num_edges"]
    assert tree_length["sparse_evals_per_sec"] > 0
    assert tree_length["dense_evals_per_sec"] > 0
    assert tree_length["sparse_speedup"] > 0

    # Dense/sparse crossover sweep backing SPARSE_LENGTH_MIN_EDGES, and
    # the ledger-round arm (one lengths_for gather per round).
    crossover = tree_length["crossover"]
    assert len(crossover["num_edges"]) == len(crossover["dense_us_per_eval"])
    assert len(crossover["num_edges"]) == len(crossover["sparse_us_per_eval"])
    assert crossover["configured_min_edges"] == float(SPARSE_LENGTH_MIN_EDGES)
    ledger = tree_length["ledger"]
    assert ledger["trees"] > 1
    assert ledger["rounds"] > 0
    assert ledger["ledger_seconds"] > 0
    assert ledger["numpy_ledger_seconds"] > 0
    assert ledger["loop_seconds"] > 0
    assert ledger["ledger_round_speedup"] > 0
    # The ledger arm runs under the best available kernel backend
    # ("numba" when importable, else the pure-NumPy "ordered" backend)
    # and records which one actually ran.
    from repro.perf.record import _best_kernel_backend

    assert ledger["backend"] == _best_kernel_backend()

    # Kernel-backend ablation: numpy arms versus the best available
    # backend over the three ledger hot ops, on the same ledger scale.
    ledger_kernel = record["ledger_kernel"]
    assert ledger_kernel["backend"] == _best_kernel_backend()
    assert ledger_kernel["nnz"] > 0
    for op in ("round_lengths", "scatter", "lengths_for_all"):
        assert ledger_kernel[op]["numpy_seconds"] > 0
        assert ledger_kernel[op]["compiled_seconds"] > 0
        assert ledger_kernel[op]["compiled_speedup"] > 0

    # Length-update batching ablation: one multiply_batch call versus a
    # loop of multiply calls over the same accumulated updates, plus the
    # assume_unique fast-path arm on a duplicate-free batch.
    length_multiply = record["length_multiply"]
    assert length_multiply["updates"] > 0
    assert length_multiply["loop_seconds"] > 0
    assert length_multiply["batched_seconds"] > 0
    assert length_multiply["batched_updates_per_sec"] > 0
    assert length_multiply["batched_speedup"] > 0
    assert length_multiply["unique_ids"] > 0
    assert length_multiply["unique_safe_seconds"] > 0
    assert length_multiply["unique_fast_seconds"] > 0
    assert length_multiply["unique_fastpath_speedup"] > 0

    # Oracle-batching ablation: one BatchedOracleFront round (stacked
    # incidence mat-vec, all sessions) versus the per-oracle query loop.
    oracle_batch = record["oracle_batch"]
    assert oracle_batch["rounds"] > 0
    assert oracle_batch["sessions"] > 1
    assert oracle_batch["batched_seconds"] > 0
    assert oracle_batch["loop_seconds"] > 0
    assert oracle_batch["batched_rounds_per_sec"] > 0
    assert oracle_batch["batched_speedup"] > 0

    # Dynamic-routing fast path: the one-Dijkstra oracle + union front
    # versus the pre-change multi-Dijkstra loop, plus the front ablation.
    dynamic_oracle = record["dynamic_oracle"]
    assert dynamic_oracle["outputs_identical"]
    assert dynamic_oracle["calls_per_sec"] > 0
    assert dynamic_oracle["legacy_calls_per_sec"] > 0
    assert dynamic_oracle["fastpath_speedup"] > 0
    front = dynamic_oracle["front"]
    assert front["rounds"] > 0
    assert front["sessions"] > 1
    assert front["batched_rounds_per_sec"] > 0
    assert front["batched_speedup"] > 0

    # Prim crossover sweep behind overlay.mst._PYTHON_PRIM_LIMIT.
    prim = record["prim_crossover"]
    assert len(prim["sizes"]) == len(prim["python_us_per_call"])
    assert len(prim["sizes"]) == len(prim["numpy_us_per_call"])
    assert prim["configured_limit"] > 0

    # Engine-step ablation: full PhaseEngine.step wall with the stacked
    # representation versus the per-tree per-oracle loop, both routings.
    engine_step = record["engine_step"]
    assert engine_step["num_edges"] > 0
    for arm in ("fixed", "dynamic"):
        assert engine_step[arm]["steps"] > 0
        assert engine_step[arm]["sessions"] > 1
        assert engine_step[arm]["stacked_seconds"] > 0
        assert engine_step[arm]["loop_seconds"] > 0
        assert engine_step[arm]["stacked_speedup"] > 0
        # Both arms executed the identical step sequence.
        assert engine_step[arm]["outputs_identical"]
    assert engine_step["stacked_speedup"] == max(
        engine_step["fixed"]["stacked_speedup"],
        engine_step["dynamic"]["stacked_speedup"],
    )

    # Observability overhead: three interleaved arms over identical step
    # sequences, plus the traced-solve bit-identity check.
    obs = record["obs_overhead"]
    assert obs["steps"] > 0
    assert obs["disabled_seconds"] > 0
    assert obs["metrics_seconds"] > 0
    assert obs["traced_seconds"] > 0
    # The traced arm records exactly one engine.step span per step.
    assert obs["traced_step_spans"] > 0
    assert obs["traced_span_events"] >= obs["traced_step_spans"]
    assert obs["outputs_identical_with_trace"]

    # Durability cost: the bare-put arm records the raw fsync price, the
    # solve-and-persist cycle carries the <10% design guard (solving
    # dominates the realistic path, as it does for cluster workers), and
    # the disabled fault-point arm pins the zero-overhead claim for the
    # injection seams left in hot I/O paths.
    durability = record["durability"]
    assert durability["puts"] > 0
    assert durability["durable_us_per_put"] > 0
    assert durability["volatile_us_per_put"] > 0
    cycle = durability["solve_persist"]
    assert cycle["durable_seconds"] > 0
    assert cycle["volatile_seconds"] > 0
    assert cycle["overhead_pct"] < 10.0, durability
    fault_point = durability["fault_point"]
    assert fault_point["calls"] > 0
    assert 0 < fault_point["disabled_ns_per_call"] < 1500.0, fault_point

    latest = record["history"][-1]
    assert latest["ledger_kernel_backend"] == ledger_kernel["backend"]
    assert latest["ledger_kernel_round_speedup"] == (
        ledger_kernel["round_lengths"]["compiled_speedup"]
    )
    assert latest["ledger_kernel_scatter_speedup"] == (
        ledger_kernel["scatter"]["compiled_speedup"]
    )
    assert latest["ledger_kernel_all_speedup"] == (
        ledger_kernel["lengths_for_all"]["compiled_speedup"]
    )
    assert latest["multiply_batched_speedup"] == length_multiply["batched_speedup"]
    assert latest["multiply_unique_speedup"] == (
        length_multiply["unique_fastpath_speedup"]
    )
    assert latest["oracle_batch_speedup"] == oracle_batch["batched_speedup"]
    assert latest["dynamic_oracle_calls_per_sec"] == dynamic_oracle["calls_per_sec"]
    assert latest["dynamic_oracle_speedup"] == dynamic_oracle["fastpath_speedup"]
    assert latest["prim_crossover"] == prim["measured_crossover"]
    assert latest["tree_length_measured_crossover"] == crossover["measured_crossover"]
    assert latest["ledger_round_speedup"] == ledger["ledger_round_speedup"]
    assert latest["engine_step_stacked_speedup"] == engine_step["stacked_speedup"]
    assert latest["obs_metrics_overhead_pct"] == obs["metrics_overhead_pct"]
    assert latest["obs_trace_overhead_pct"] == obs["trace_overhead_pct"]
    assert latest["durable_put_overhead_pct"] == durability["put_overhead_pct"]
    assert latest["durable_solve_persist_overhead_pct"] == cycle["overhead_pct"]
    assert latest["fault_point_disabled_ns"] == fault_point["disabled_ns_per_call"]


def test_record_appends_history(tmp_path):
    path = tmp_path / "BENCH_core.json"
    write_core_perf_record(path, scale="tiny")
    first = json.loads(path.read_text())
    assert len(first["history"]) == 1

    write_core_perf_record(path, scale="tiny")
    second = json.loads(path.read_text())
    # The trajectory accumulates: run 1's entry survives run 2's write.
    assert len(second["history"]) == 2
    assert second["history"][0] == first["history"][0]
    latest = second["history"][-1]
    assert latest["fixed_calls_per_sec"] == second["maxflow_fixed"]["memoized"]["calls_per_sec"]
    assert latest["scale"] == "tiny"


def test_record_migrates_v1_file(tmp_path):
    # A pre-history (v1) record contributes one synthesized entry.
    path = tmp_path / "BENCH_core.json"
    v1 = {
        "schema": "BENCH_core/v1",
        "scale": "quick",
        "maxflow_fixed": {
            "memoized": {"calls_per_sec": 123.0, "seconds": 1.0},
            "memoization_speedup": 2.0,
        },
        "maxflow_dynamic": {"memoized": {"calls_per_sec": 45.0}},
    }
    path.write_text(json.dumps(v1))
    write_core_perf_record(path, scale="tiny")
    record = json.loads(path.read_text())
    assert record["schema"] == BENCH_SCHEMA
    assert len(record["history"]) == 2
    assert record["history"][0]["fixed_calls_per_sec"] == 123.0
    assert record["history"][0]["schema"] == "BENCH_core/v1"


def test_record_migrates_v4_history(tmp_path):
    # A v4 record's accumulated trajectory survives later writes: the
    # prior history entries are carried over verbatim, with the new
    # entry appended last.
    path = tmp_path / "BENCH_core.json"
    v4_history = [
        {"schema": "BENCH_core/v3", "scale": "quick", "fixed_calls_per_sec": 9.0},
        {
            "schema": "BENCH_core/v4",
            "scale": "quick",
            "fixed_calls_per_sec": 10.0,
            "dynamic_calls_per_sec": 780.0,
            "oracle_batch_speedup": 1.5,
        },
    ]
    v4 = {
        "schema": "BENCH_core/v4",
        "scale": "quick",
        "maxflow_fixed": {"memoized": {"calls_per_sec": 10.0}},
        "maxflow_dynamic": {"memoized": {"calls_per_sec": 780.0}},
        "history": v4_history,
    }
    path.write_text(json.dumps(v4))
    write_core_perf_record(path, scale="tiny")
    record = json.loads(path.read_text())
    assert record["schema"] == BENCH_SCHEMA
    assert record["history"][:2] == v4_history
    assert len(record["history"]) == 3
    latest = record["history"][-1]
    assert latest["schema"] == BENCH_SCHEMA
    assert latest["dynamic_oracle_calls_per_sec"] == (
        record["dynamic_oracle"]["calls_per_sec"]
    )


def test_record_migrates_v5_history(tmp_path):
    # A v5 record's trajectory (pre-engine_step) survives the v6 write
    # verbatim, with the new (v6, engine_step-bearing) entry appended.
    path = tmp_path / "BENCH_core.json"
    v5_history = [
        {"schema": "BENCH_core/v4", "scale": "quick", "fixed_calls_per_sec": 10.0},
        {
            "schema": "BENCH_core/v5",
            "scale": "quick",
            "fixed_calls_per_sec": 11.0,
            "dynamic_oracle_calls_per_sec": 2800.0,
            "dynamic_oracle_speedup": 2.8,
            "prim_crossover": 128.0,
        },
    ]
    v5 = {
        "schema": "BENCH_core/v5",
        "scale": "quick",
        "maxflow_fixed": {"memoized": {"calls_per_sec": 11.0}},
        "maxflow_dynamic": {"memoized": {"calls_per_sec": 800.0}},
        "dynamic_oracle": {"calls_per_sec": 2800.0, "fastpath_speedup": 2.8},
        "history": v5_history,
    }
    path.write_text(json.dumps(v5))
    write_core_perf_record(path, scale="tiny")
    record = json.loads(path.read_text())
    assert record["schema"] == BENCH_SCHEMA
    assert record["history"][:2] == v5_history
    assert len(record["history"]) == 3
    latest = record["history"][-1]
    assert latest["schema"] == BENCH_SCHEMA
    assert latest["engine_step_stacked_speedup"] == (
        record["engine_step"]["stacked_speedup"]
    )
    assert latest["engine_step_dynamic_speedup"] == (
        record["engine_step"]["dynamic"]["stacked_speedup"]
    )


def test_record_migrates_v6_history(tmp_path):
    # A v6 record's trajectory (pre-obs_overhead) survives the v7 write
    # verbatim, with the new (obs_overhead-bearing) entry appended.
    path = tmp_path / "BENCH_core.json"
    v6_history = [
        {"schema": "BENCH_core/v5", "scale": "quick", "fixed_calls_per_sec": 11.0},
        {
            "schema": "BENCH_core/v6",
            "scale": "quick",
            "fixed_calls_per_sec": 12.0,
            "engine_step_stacked_speedup": 1.9,
        },
    ]
    v6 = {
        "schema": "BENCH_core/v6",
        "scale": "quick",
        "maxflow_fixed": {"memoized": {"calls_per_sec": 12.0}},
        "maxflow_dynamic": {"memoized": {"calls_per_sec": 850.0}},
        "engine_step": {"stacked_speedup": 1.9},
        "history": v6_history,
    }
    path.write_text(json.dumps(v6))
    write_core_perf_record(path, scale="tiny")
    record = json.loads(path.read_text())
    assert record["schema"] == BENCH_SCHEMA
    assert record["history"][:2] == v6_history
    assert len(record["history"]) == 3
    latest = record["history"][-1]
    assert latest["schema"] == BENCH_SCHEMA
    assert latest["obs_metrics_overhead_pct"] == (
        record["obs_overhead"]["metrics_overhead_pct"]
    )


def test_record_migrates_v7_history(tmp_path):
    # A v7 record's trajectory (pre-ledger_kernel) survives the v8 write
    # verbatim, with the new (kernel-backend-bearing) entry appended.
    path = tmp_path / "BENCH_core.json"
    v7_history = [
        {"schema": "BENCH_core/v6", "scale": "quick", "fixed_calls_per_sec": 12.0},
        {
            "schema": "BENCH_core/v7",
            "scale": "quick",
            "fixed_calls_per_sec": 13.0,
            "ledger_round_speedup": 0.45,
            "obs_metrics_overhead_pct": 1.2,
        },
    ]
    v7 = {
        "schema": "BENCH_core/v7",
        "scale": "quick",
        "maxflow_fixed": {"memoized": {"calls_per_sec": 13.0}},
        "maxflow_dynamic": {"memoized": {"calls_per_sec": 900.0}},
        "obs_overhead": {"metrics_overhead_pct": 1.2},
        "history": v7_history,
    }
    path.write_text(json.dumps(v7))
    write_core_perf_record(path, scale="tiny")
    record = json.loads(path.read_text())
    assert record["schema"] == BENCH_SCHEMA
    assert record["history"][:2] == v7_history
    assert len(record["history"]) == 3
    latest = record["history"][-1]
    assert latest["schema"] == BENCH_SCHEMA
    assert latest["ledger_kernel_backend"] == record["ledger_kernel"]["backend"]
    assert latest["ledger_kernel_round_speedup"] == (
        record["ledger_kernel"]["round_lengths"]["compiled_speedup"]
    )


def test_record_migrates_v8_history(tmp_path):
    # A v8 record's trajectory (pre-durability) survives the v9 write
    # verbatim, with the new (durability-bearing) entry appended.
    path = tmp_path / "BENCH_core.json"
    v8_history = [
        {"schema": "BENCH_core/v7", "scale": "quick", "fixed_calls_per_sec": 13.0},
        {
            "schema": "BENCH_core/v8",
            "scale": "quick",
            "fixed_calls_per_sec": 14.0,
            "ledger_kernel_backend": "ordered",
            "ledger_kernel_round_speedup": 1.4,
        },
    ]
    v8 = {
        "schema": "BENCH_core/v8",
        "scale": "quick",
        "maxflow_fixed": {"memoized": {"calls_per_sec": 14.0}},
        "maxflow_dynamic": {"memoized": {"calls_per_sec": 950.0}},
        "ledger_kernel": {"backend": "ordered"},
        "history": v8_history,
    }
    path.write_text(json.dumps(v8))
    write_core_perf_record(path, scale="tiny")
    record = json.loads(path.read_text())
    assert record["schema"] == BENCH_SCHEMA
    assert record["history"][:2] == v8_history
    assert len(record["history"]) == 3
    latest = record["history"][-1]
    assert latest["schema"] == BENCH_SCHEMA
    assert latest["durable_solve_persist_overhead_pct"] == (
        record["durability"]["solve_persist"]["overhead_pct"]
    )
    assert latest["fault_point_disabled_ns"] == (
        record["durability"]["fault_point"]["disabled_ns_per_call"]
    )


def test_corrupt_prior_record_is_ignored(tmp_path):
    path = tmp_path / "BENCH_core.json"
    path.write_text("{not json")
    write_core_perf_record(path, scale="tiny")
    record = json.loads(path.read_text())
    assert len(record["history"]) == 1


def test_measure_core_perf_rejects_unknown_scale():
    with pytest.raises(ConfigurationError):
        measure_core_perf("paper")
    with pytest.raises(ConfigurationError):
        profile_for_scale("huge")
