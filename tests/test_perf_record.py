"""Smoke tests for the BENCH_core.json perf-record writer.

Marked ``bench_smoke`` so the benchmark-record machinery is exercised in
the tier-1 run (at tiny scale, sub-seconds) and can also be selected
alone with ``pytest -m bench_smoke``.
"""

import json

import pytest

from repro.perf import BENCH_SCHEMA, measure_core_perf, write_core_perf_record
from repro.perf.record import profile_for_scale
from repro.util.errors import ConfigurationError

pytestmark = pytest.mark.bench_smoke


def test_write_core_perf_record_tiny(tmp_path):
    path = write_core_perf_record(tmp_path / "BENCH_core.json", scale="tiny")
    record = json.loads(path.read_text())
    assert record["schema"] == BENCH_SCHEMA
    assert record["scale"] == "tiny"

    fixed = record["maxflow_fixed"]
    assert fixed["memoized"]["oracle_calls"] > 0
    # Memoization must not change the algorithm: same number of MST
    # operations and the same objective either way.
    assert fixed["memoized"]["oracle_calls"] == fixed["unmemoized"]["oracle_calls"]
    assert (
        fixed["memoized"]["overall_throughput"]
        == fixed["unmemoized"]["overall_throughput"]
    )
    assert fixed["memoized"]["cache_hits"] > 0
    assert fixed["memoization_speedup"] > 0

    dynamic = record["maxflow_dynamic"]["memoized"]
    assert dynamic["oracle_calls"] > 0
    assert dynamic["seconds"] > 0
    # Fixed routing must be much cheaper per oracle call than dynamic
    # (incidence mat-vec versus per-call Dijkstra).
    assert fixed["memoized"]["calls_per_sec"] > dynamic["calls_per_sec"]


def test_measure_core_perf_rejects_unknown_scale():
    with pytest.raises(ConfigurationError):
        measure_core_perf("paper")
    with pytest.raises(ConfigurationError):
        profile_for_scale("huge")
