"""Tests for Online-MinCongestion and Random-MinCongestion."""

import numpy as np
import pytest

from repro.core.maxconcurrent import solve_max_concurrent_flow
from repro.core.online import OnlineConfig, OnlineMinCongestion, solve_online
from repro.core.rounding import RandomMinCongestion, solve_randomized_rounding
from repro.overlay.session import Session
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def fractional_solution(waxman_network):
    routing = FixedIPRouting(waxman_network)
    sessions = [
        Session((0, 4, 9, 13), demand=100.0, name="s1"),
        Session((2, 7, 20), demand=100.0, name="s2"),
    ]
    return solve_max_concurrent_flow(sessions, routing, epsilon=0.08)


class TestOnlineConfig:
    def test_sigma_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            OnlineConfig(sigma=0.0).validate()


class TestOnlineMinCongestion:
    def test_accept_assigns_single_tree(self, waxman_network):
        solver = OnlineMinCongestion(FixedIPRouting(waxman_network))
        tree = solver.accept(Session((0, 4, 9), demand=1.0))
        assert set(tree.members) == {0, 4, 9}
        assert solver.state.oracle_calls == 1
        assert solver.state.max_congestion > 0

    def test_congestion_accumulates(self, waxman_network):
        solver = OnlineMinCongestion(FixedIPRouting(waxman_network))
        session = Session((0, 4, 9), demand=1.0)
        solver.accept(session)
        first = solver.state.max_congestion
        solver.accept(session)
        assert solver.state.max_congestion >= 2 * first - 1e-12

    def test_lengths_steer_later_sessions(self, waxman_network):
        # With a large sigma, repeated copies of the same session must
        # eventually diversify onto more than one distinct tree.
        solver = OnlineMinCongestion(FixedIPRouting(waxman_network), OnlineConfig(sigma=500.0))
        session = Session((0, 4, 9, 13), demand=1.0)
        trees = {solver.accept(copy).canonical_key() for copy in session.replicate(10)}
        assert len(trees) >= 2

    def test_solution_feasible_after_saturation(self, waxman_network):
        sessions = [
            Session((0, 4, 9), demand=1.0, name="a"),
            Session((2, 7, 20), demand=1.0, name="b"),
        ]
        arrivals = [c for s in sessions for c in s.replicate(5)]
        solution = solve_online(arrivals, FixedIPRouting(waxman_network), sigma=20.0)
        assert solution.is_feasible(tolerance=1e-6)
        assert len(solution.sessions) == 2
        assert solution.extra["num_arrivals"] == 10

    def test_grouping_by_members(self, waxman_network):
        session = Session((0, 4, 9), demand=1.0, name="a")
        arrivals = session.replicate(4)
        solution = solve_online(arrivals, FixedIPRouting(waxman_network))
        assert len(solution.sessions) == 1
        ungrouped = solve_online(
            arrivals, FixedIPRouting(waxman_network), group_by_members=False
        )
        assert len(ungrouped.sessions) == 4

    def test_grouped_name_strips_replica_suffix(self, waxman_network):
        session = Session((0, 4, 9), demand=1.0, name="stream")
        solution = solve_online(session.replicate(3), FixedIPRouting(waxman_network))
        assert solution.sessions[0].session.name == "stream"

    def test_grouped_name_with_leading_hash(self, waxman_network):
        # Regression: a base name starting with "#" used to be reported
        # with its replica suffix still attached ("#live#0").
        session = Session((0, 4, 9), demand=1.0, name="#live")
        solution = solve_online(session.replicate(3), FixedIPRouting(waxman_network))
        assert solution.sessions[0].session.name == "#live"

    def test_no_bottleneck_scaling(self, waxman_network):
        config = OnlineConfig(sigma=10.0, apply_no_bottleneck_scaling=True)
        solver = OnlineMinCongestion(FixedIPRouting(waxman_network), config)
        sessions = [Session((0, 4, 9), demand=1.0), Session((2, 7, 20), demand=1.0)]
        scale = solver.prepare_demand_scaling(sessions)
        assert scale > 0
        solver.accept_all(sessions)
        solution = solver.solution()
        assert solution.is_feasible(tolerance=1e-6)

    def test_solution_before_accept_rejected(self, waxman_network):
        solver = OnlineMinCongestion(FixedIPRouting(waxman_network))
        with pytest.raises(ConfigurationError):
            solver.solution()

    def test_member_outside_network_rejected(self, waxman_network):
        solver = OnlineMinCongestion(FixedIPRouting(waxman_network))
        with pytest.raises(Exception):
            solver.accept(Session((0, 10_000)))


class TestRandomMinCongestion:
    def test_single_tree_rounding(self, fractional_solution):
        selection = RandomMinCongestion(fractional_solution, seed=1).round_single_tree()
        assert selection.trees_per_session == (1, 1)
        assert selection.max_congestion > 0
        # Scaling demands by l_max must make the selection feasible.
        assert np.all(selection.congestion <= selection.max_congestion + 1e-9)

    def test_select_trees_bounded_by_limit(self, fractional_solution):
        selection = RandomMinCongestion(fractional_solution, seed=2).select_trees(5)
        assert all(n <= 5 for n in selection.trees_per_session)
        assert all(n >= 1 for n in selection.trees_per_session)

    def test_rate_never_exceeds_fractional(self, fractional_solution):
        rounding = RandomMinCongestion(fractional_solution, seed=3)
        for limit in (1, 3, 8):
            selection = rounding.select_trees(limit)
            for rounded, fractional in zip(
                selection.solution.sessions, fractional_solution.sessions
            ):
                assert rounded.rate <= fractional.rate + 1e-9

    def test_more_trees_more_throughput_on_average(self, fractional_solution):
        rounding = RandomMinCongestion(fractional_solution, seed=4)
        few = rounding.average_over_trials(1, trials=10, seed=5)
        many = rounding.average_over_trials(10, trials=10, seed=5)
        assert many["mean_throughput"] >= few["mean_throughput"]

    def test_average_over_trials_keys(self, fractional_solution):
        stats = RandomMinCongestion(fractional_solution, seed=6).average_over_trials(
            2, trials=3
        )
        assert "mean_throughput" in stats
        assert "mean_rate_session_1" in stats
        assert "mean_trees_session_2" in stats

    def test_invalid_parameters(self, fractional_solution):
        rounding = RandomMinCongestion(fractional_solution, seed=7)
        with pytest.raises(ConfigurationError):
            rounding.select_trees(0)
        with pytest.raises(ConfigurationError):
            rounding.average_over_trials(1, trials=0)

    def test_wrapper(self, fractional_solution):
        selection = solve_randomized_rounding(fractional_solution, max_trees=2, seed=8)
        assert selection.solution.algorithm == "Random-MinCongestion"
