"""Parallel experiment-runner equivalence and ``--jobs`` resolution.

Every sweep cell is deterministically seeded from its setting, so a
process-pool run must produce exactly the results of a serial run.
"""

import pytest

from repro.experiments import runner
from repro.experiments.settings import (
    JOBS_ENV_VAR,
    configure_jobs,
    default_jobs,
    resolve_jobs,
)
from repro.util.errors import ConfigurationError

SCALE = "tiny"


@pytest.fixture(autouse=True)
def fresh_caches():
    runner.clear_caches()
    yield
    runner.clear_caches()


class TestJobsResolution:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert default_jobs() == 1
        assert resolve_jobs() == 1
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "4")
        assert resolve_jobs() == 4
        monkeypatch.setenv(JOBS_ENV_VAR, "bogus")
        with pytest.raises(ConfigurationError):
            resolve_jobs()

    def test_configure_jobs_roundtrip(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        previous = configure_jobs(2)
        try:
            assert resolve_jobs() == 2
        finally:
            configure_jobs(previous)
        assert resolve_jobs() == 1

    def test_configured_jobs_beat_env(self, monkeypatch):
        # Regression: an explicit --jobs (configure_jobs) must win over
        # an ambient REPRO_JOBS from the environment.
        monkeypatch.setenv(JOBS_ENV_VAR, "1")
        previous = configure_jobs(8)
        try:
            assert resolve_jobs() == 8
        finally:
            configure_jobs(previous)
        assert resolve_jobs() == 1


def _summaries(runs):
    return {key: solution.summary() for key, solution in runs.items()}


class TestParallelEquivalence:
    def test_sweep_runs_match_serial(self):
        serial = _summaries(runner.sweep_runs(SCALE, "maxflow"))
        runner.clear_caches()
        parallel = _summaries(runner.sweep_runs(SCALE, "maxflow", jobs=2))
        assert parallel == serial

    def test_online_sweep_runs_match_serial(self):
        serial = _summaries(runner.online_sweep_runs(SCALE, tree_limit=2))
        runner.clear_caches()
        parallel = _summaries(runner.online_sweep_runs(SCALE, tree_limit=2, jobs=2))
        assert parallel == serial

    def test_limited_tree_study_matches_serial(self):
        serial = runner.limited_tree_study(SCALE)
        runner.clear_caches()
        parallel = runner.limited_tree_study(SCALE, jobs=2)
        assert [p.__dict__ for p in parallel.points] == [
            p.__dict__ for p in serial.points
        ]
        assert (
            parallel.fractional.summary() == serial.fractional.summary()
        )

    def test_flat_ratio_sweep_accepts_jobs(self):
        serial = _summaries(runner.flat_ratio_sweep(SCALE, "ip", "maxflow"))
        runner.clear_caches()
        parallel = _summaries(runner.flat_ratio_sweep(SCALE, "ip", "maxflow", jobs=2))
        assert parallel == serial
