"""Engine-equivalence suite: the phase-engine refactor changes nothing.

``repro.core.engine`` replaced the hand-rolled multiplicative-weights
loops inside MaxFlow, MaxConcurrentFlow and Online-MinCongestion.  The
refactor's contract is *bit identity*: the ported solvers must produce
``FlowSolution``s exactly equal — rates, per-tree flows, oracle-call
counters, every ``extra`` entry — to the pre-refactor implementations.

The reference implementations below are verbatim ports of the
pre-engine solver loops (PR 3 state), written against the same public
building blocks (``LengthFunction``, ``build_oracles``,
``SessionFlowAccumulator``), so any behavioural drift in the engine
shows up as a fingerprint mismatch here.  Coverage: all four registered
solvers x both routing models, plus the batched-oracle-front ablation
(batched vs per-session query rounds) and the front's slice-level
bit-identity.
"""

import math

import numpy as np
import pytest

from repro.core.engine import BatchedOracleFront
from repro.core.lengths import LengthFunction
from repro.core.maxconcurrent import MaxConcurrentFlow, MaxConcurrentFlowConfig
from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.core.online import OnlineConfig, OnlineMinCongestion
from repro.core.result import (
    FlowSolution,
    SessionFlowAccumulator,
    SessionResult,
    TreeFlow,
)
from repro.core.rounding import RandomMinCongestion
from repro.overlay.oracle import build_oracles
from repro.overlay.session import Session
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting


# ----------------------------------------------------------------------
# reference implementations (the pre-engine loops, verbatim)
# ----------------------------------------------------------------------
def reference_max_flow(sessions, routing, epsilon):
    """Pre-refactor MaxFlow.solve (hand-rolled Table I loop)."""
    capacities = routing.network.capacities
    num_edges = routing.network.num_edges
    oracles = build_oracles(sessions, routing)
    max_size = max(s.size for s in sessions)
    longest_route = max(1, max(o.max_route_length() for o in oracles))
    lengths = LengthFunction.for_maxflow(num_edges, epsilon, max_size, longest_route)
    log_delta = lengths.log_offset
    scale_denominator = (math.log1p(epsilon) - log_delta) / math.log1p(epsilon)
    accumulators = [SessionFlowAccumulator(session=s) for s in sessions]
    iterations = 0
    while True:
        iterations += 1
        best_index = -1
        best_norm_length = math.inf
        best_result = None
        for index, oracle in enumerate(oracles):
            result = oracle.minimum_tree(lengths.relative)
            norm = oracle.normalized_length(result, max_size)
            if norm < best_norm_length:
                best_norm_length = norm
                best_index = index
                best_result = result
        if lengths.at_least_one(best_norm_length):
            break
        tree = best_result.tree
        bottleneck = tree.bottleneck_capacity(capacities)
        accumulators[best_index].add(tree, bottleneck)
        used = tree.physical_edges
        factors = 1.0 + epsilon * tree.usage_values * bottleneck / capacities[used]
        lengths.multiply(used, factors)
    scale = 1.0 / scale_denominator
    session_results = tuple(
        SessionResult(session=acc.session, tree_flows=tuple(acc.scaled(scale)))
        for acc in accumulators
    )
    probe = FlowSolution(
        algorithm="MaxFlow", sessions=session_results, network=routing.network
    )
    congestion = probe.max_congestion()
    if congestion > 1.0:
        session_results = tuple(
            SessionResult(
                session=s.session,
                tree_flows=tuple(
                    TreeFlow(tree=tf.tree, flow=tf.flow / congestion)
                    for tf in s.tree_flows
                ),
            )
            for s in session_results
        )
    return FlowSolution(
        algorithm="MaxFlow",
        sessions=session_results,
        network=routing.network,
        epsilon=epsilon,
        oracle_calls=sum(o.call_count for o in oracles),
        extra={
            "iterations": float(iterations),
            "scale_denominator": scale_denominator,
            "longest_route": float(longest_route),
            "routing": "dynamic" if routing.is_dynamic else "fixed",
        },
    )


def reference_max_concurrent_flow(sessions, routing, epsilon, prescale_epsilon):
    """Pre-refactor MaxConcurrentFlow.solve (hand-rolled Table III loop)."""
    network = routing.network
    capacities = network.capacities
    num_edges = network.num_edges
    k = len(sessions)

    prescale_calls = 0
    beta = []
    for session in sessions:
        standalone = reference_max_flow([session], routing, prescale_epsilon)
        beta.append(standalone.sessions[0].rate)
        prescale_calls += standalone.oracle_calls
    beta = np.asarray(beta, dtype=float)
    demands = np.asarray([s.demand for s in sessions], dtype=float)
    zeta = float(np.min(beta / demands))
    working_demands = demands * (zeta / k)

    oracles = build_oracles(sessions, routing)
    lengths = LengthFunction.for_concurrent(capacities, epsilon)
    log_delta = lengths.log_offset
    scale_denominator = -log_delta / math.log1p(epsilon)
    phase_budget = 1 + int(
        math.ceil(
            (2.0 / epsilon)
            * (math.log(num_edges / (1.0 - epsilon)) / math.log1p(epsilon))
        )
    )
    accumulators = [SessionFlowAccumulator(session=s) for s in sessions]
    steps = 0
    phases = 0
    doublings = 0
    phases_since_doubling = 0

    def dual_objective_reached():
        return lengths.weighted_sum_log(capacities) >= 0.0

    while not dual_objective_reached():
        phases += 1
        phases_since_doubling += 1
        for index, oracle in enumerate(oracles):
            remaining = float(working_demands[index])
            while remaining > 0 and not dual_objective_reached():
                steps += 1
                result = oracle.minimum_tree(lengths.relative)
                tree = result.tree
                bottleneck = tree.bottleneck_capacity(capacities)
                amount = min(remaining, bottleneck)
                remaining -= amount
                accumulators[index].add(tree, amount)
                used = tree.physical_edges
                factors = 1.0 + epsilon * tree.usage_values * amount / capacities[used]
                lengths.multiply(used, factors)
        if phases_since_doubling >= phase_budget and not dual_objective_reached():
            working_demands = working_demands * 2.0
            doublings += 1
            phases_since_doubling = 0

    scale = 1.0 / scale_denominator
    session_results = tuple(
        SessionResult(session=acc.session, tree_flows=tuple(acc.scaled(scale)))
        for acc in accumulators
    )
    main_calls = sum(o.call_count for o in oracles)
    solution = FlowSolution(
        algorithm="MaxConcurrentFlow",
        sessions=session_results,
        network=network,
        epsilon=epsilon,
        oracle_calls=main_calls + prescale_calls,
    )
    congestion = solution.max_congestion()
    if congestion > 1.0:
        session_results = tuple(
            SessionResult(
                session=s.session,
                tree_flows=tuple(
                    TreeFlow(tree=tf.tree, flow=tf.flow / congestion)
                    for tf in s.tree_flows
                ),
            )
            for s in session_results
        )
    return FlowSolution(
        algorithm="MaxConcurrentFlow",
        sessions=session_results,
        network=network,
        epsilon=epsilon,
        oracle_calls=main_calls + prescale_calls,
        extra={
            "phases": float(phases),
            "steps": float(steps),
            "doublings": float(doublings),
            "main_oracle_calls": float(main_calls),
            "prescale_oracle_calls": float(prescale_calls),
            "zeta_upper_bound": zeta,
            "routing": "dynamic" if routing.is_dynamic else "fixed",
        },
    )


def reference_online_assignments(arrivals, routing, sigma):
    """Pre-refactor online accept loop: per-arrival (tree key, lmax)."""
    network = routing.network
    capacities = network.capacities
    lengths = LengthFunction.for_online(capacities)
    congestion = np.zeros(network.num_edges, dtype=float)
    oracle_by_members = {}
    trail = []
    for session in arrivals:
        key = tuple(sorted(session.members))
        oracle = oracle_by_members.get(key)
        if oracle is None:
            oracle = build_oracles([session], routing)[0]
            oracle_by_members[key] = oracle
        result = oracle.minimum_tree(lengths.relative)
        tree = result.tree
        used = tree.physical_edges
        load = tree.usage_values * session.demand / capacities[used]
        lengths.multiply(used, 1.0 + sigma * load)
        congestion[used] += load
        trail.append((tree.canonical_key(), float(congestion.max())))
    return trail


def fingerprint(solution):
    """Everything the paper reports about a solution, exactly."""
    return {
        "algorithm": solution.algorithm,
        "epsilon": solution.epsilon,
        "oracle_calls": solution.oracle_calls,
        "rates": [s.rate for s in solution.sessions],
        "names": [s.session.name for s in solution.sessions],
        "num_trees": solution.num_trees_per_session,
        "flows": [
            sorted((tf.tree.canonical_key(), tf.flow) for tf in s.tree_flows)
            for s in solution.sessions
        ],
        "extra": dict(solution.extra),
    }


@pytest.fixture(scope="module")
def equivalence_sessions():
    return [
        Session((0, 4, 9, 13), demand=100.0, name="s1"),
        Session((2, 7, 20), demand=100.0, name="s2"),
    ]


@pytest.mark.parametrize("routing_cls", [FixedIPRouting, DynamicRouting])
class TestEngineEquivalence:
    def test_max_flow_bit_identical(
        self, waxman_network, equivalence_sessions, routing_cls
    ):
        reference = reference_max_flow(
            equivalence_sessions, routing_cls(waxman_network), epsilon=0.15
        )
        ported = MaxFlow(
            equivalence_sessions,
            routing_cls(waxman_network),
            MaxFlowConfig(epsilon=0.15),
        ).solve()
        assert fingerprint(ported) == fingerprint(reference)
        assert ported.instrumentation is not None
        assert ported.instrumentation["steps"] == int(reference.extra["iterations"])

    def test_max_concurrent_flow_bit_identical(
        self, waxman_network, equivalence_sessions, routing_cls
    ):
        reference = reference_max_concurrent_flow(
            equivalence_sessions,
            routing_cls(waxman_network),
            epsilon=0.25,
            prescale_epsilon=0.25,
        )
        ported = MaxConcurrentFlow(
            equivalence_sessions,
            routing_cls(waxman_network),
            MaxConcurrentFlowConfig(epsilon=0.25, prescale_epsilon=0.25),
        ).solve()
        assert fingerprint(ported) == fingerprint(reference)
        assert ported.instrumentation["phases"] == int(reference.extra["phases"])

    def test_online_bit_identical(
        self, waxman_network, equivalence_sessions, routing_cls
    ):
        arrivals = [
            copy
            for session in equivalence_sessions
            for copy in session.replicate(3, demand=1.0)
        ]
        reference_trail = reference_online_assignments(
            arrivals, routing_cls(waxman_network), sigma=50.0
        )
        solver = OnlineMinCongestion(
            routing_cls(waxman_network), OnlineConfig(sigma=50.0)
        )
        for session in arrivals:
            solver.accept(session)
        ported_trail = [
            (tree.canonical_key(), None) for _, tree, _ in solver.state.assignments
        ]
        assert [k for k, _ in ported_trail] == [k for k, _ in reference_trail]
        assert solver.state.max_congestion == reference_trail[-1][1]
        solution = solver.solution(group_by_members=True)
        assert solution.oracle_calls == len(arrivals)
        # Congestion snapshots (one per arrival) ride in instrumentation.
        snaps = [
            e for e in solution.instrumentation["events"] if e["kind"] == "congestion"
        ]
        assert [s["max_congestion"] for s in snaps] == [c for _, c in reference_trail]

    def test_randomized_rounding_bit_identical(
        self, waxman_network, equivalence_sessions, routing_cls
    ):
        from repro.api.registry import default_registry

        reference_fractional = reference_max_concurrent_flow(
            equivalence_sessions,
            routing_cls(waxman_network),
            epsilon=0.25,
            prescale_epsilon=0.25,
        )
        reference = RandomMinCongestion(
            reference_fractional, seed=17
        ).select_trees(2).solution
        ported = default_registry().solver("randomized_rounding")(
            equivalence_sessions,
            routing_cls(waxman_network),
            epsilon=0.25,
            prescale_epsilon=0.25,
            max_trees=2,
            seed=17,
        )
        ref_fp = fingerprint(reference)
        ported_fp = fingerprint(ported)
        # The rounding selection carries no solver extra; compare the
        # flow decomposition and counters.
        ref_fp.pop("extra")
        ported_fp.pop("extra")
        assert ported_fp == ref_fp


def test_feed_driven_engine_is_idle_not_stopped_when_drained(waxman_network):
    # The advertised stepwise pattern: a feed-driven policy that is
    # momentarily out of arrivals must leave the engine resumable —
    # step() returns None (idle) and later fed work is still served.
    from repro.core.engine import OnlineArrivalPolicy, PhaseEngine, RunToExhaustion
    from repro.core.lengths import LengthFunction as LF
    from repro.overlay.oracle import MinimumOverlayTreeOracle

    routing = FixedIPRouting(waxman_network)
    policy = OnlineArrivalPolicy(sigma=10.0)
    engine = PhaseEngine(
        oracles=[],
        lengths=LF.for_online(waxman_network.capacities),
        capacities=waxman_network.capacities,
        policy=policy,
        stopping=RunToExhaustion(),
        accumulate_flows=False,
        track_congestion=True,
        batch_oracle=False,
        oracle_factory=lambda s: MinimumOverlayTreeOracle(s, routing),
    )
    assert engine.step() is None  # drained: idle, not terminal
    policy.feed(Session((0, 4), demand=1.0, name="late"))
    action = engine.step()
    assert action is not None and action.tree.size == 2
    assert engine.steps == 1


class TestBatchedOracleFront:
    def test_batched_rounds_bit_identical_to_loop(
        self, waxman_network, equivalence_sessions
    ):
        solutions = []
        for batch_oracle in (True, False):
            solver = MaxFlow(
                equivalence_sessions,
                FixedIPRouting(waxman_network),
                MaxFlowConfig(epsilon=0.15, batch_oracle=batch_oracle),
            )
            solutions.append(solver.solve())
        batched, looped = solutions
        assert fingerprint(batched) == fingerprint(looped)
        assert batched.instrumentation["batched_rounds"] > 0
        assert batched.instrumentation["per_session_rounds"] == 0
        assert looped.instrumentation["batched_rounds"] == 0
        assert looped.instrumentation["per_session_rounds"] > 0

    def test_stacked_matvec_matches_per_oracle_products(
        self, waxman_network, equivalence_sessions
    ):
        routing = FixedIPRouting(waxman_network)
        oracles = build_oracles(equivalence_sessions, routing)
        front = BatchedOracleFront(oracles)
        assert front.batched
        lengths = np.random.default_rng(3).uniform(0.01, 5.0, waxman_network.num_edges)
        batched = front.query(range(len(oracles)), lengths)
        for (index, result), oracle in zip(batched, oracles):
            direct = oracle.minimum_tree(lengths)
            assert result.tree == direct.tree
            assert result.length == direct.length

    def test_dynamic_routing_is_batched_and_bit_identical(
        self, waxman_network, equivalence_sessions
    ):
        # One union-of-members Dijkstra serves the whole round; results
        # must equal each oracle's own minimum_tree exactly.
        routing = DynamicRouting(waxman_network)
        oracles = build_oracles(equivalence_sessions, routing)
        front = BatchedOracleFront(oracles)
        assert front.batched and front.mode == "dynamic"
        lengths = np.random.default_rng(3).uniform(0.01, 5.0, waxman_network.num_edges)
        results = front.query(range(len(oracles)), lengths)
        assert [index for index, _ in results] == [0, 1]
        direct_oracles = build_oracles(equivalence_sessions, routing)
        for (_, result), direct_oracle in zip(results, direct_oracles):
            direct = direct_oracle.minimum_tree(lengths)
            assert result.tree == direct.tree
            assert result.length == direct.length

    def test_front_falls_back_when_not_batchable(
        self, waxman_network, equivalence_sessions
    ):
        # A legacy-pipeline oracle (ablation baseline) must not be
        # silently accelerated by the union run...
        legacy_oracles = build_oracles(
            equivalence_sessions, DynamicRouting(waxman_network),
            dynamic_fastpath=False,
        )
        front = BatchedOracleFront(legacy_oracles)
        assert not front.batched and front.mode is None
        # ...and neither can a mixed fixed/dynamic oracle set.
        mixed = [
            build_oracles([equivalence_sessions[0]], FixedIPRouting(waxman_network))[0],
            build_oracles([equivalence_sessions[1]], DynamicRouting(waxman_network))[0],
        ]
        assert not BatchedOracleFront(mixed).batched
        # The fallback loop still answers the round, in request order.
        lengths = np.ones(waxman_network.num_edges)
        results = front.query(range(len(legacy_oracles)), lengths)
        assert [index for index, _ in results] == [0, 1]
        for (_, result), session in zip(results, equivalence_sessions):
            assert result.tree.size == session.size
