"""Solve-service tests: spec → JSON → spec → solve equals the direct facade.

The acceptance contract of the Scenario API: for every solver × routing
combination, solving a JSON-round-tripped spec reproduces the legacy
facade's ``FlowSolution`` bit-identically; the batch engine's parallel
runs equal its serial runs; the cache serves repeated canonical keys;
and the ``python -m repro.api`` CLI emits the same reports either way.
"""

import json

import pytest

from repro import api
from repro.api import ScenarioSpec, SessionSpec, SolveReport, TopologySpec, WorkloadSpec
from repro.api.__main__ import main as api_main
from repro.core.solver import (
    solve_max_concurrent_flow,
    solve_max_flow,
    solve_online,
    solve_randomized_rounding,
)
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting

TOPOLOGY = TopologySpec("paper_flat", {"num_nodes": 30, "capacity": 100.0}, seed=13)
WORKLOAD = WorkloadSpec(sizes=(4, 3), demand=100.0, seed=5)

SOLVER_PARAMS = {
    "max_flow": {"approximation_ratio": 0.8},
    "max_concurrent_flow": {"approximation_ratio": 0.8, "prescale_epsilon": 0.2},
    "online": {"sigma": 10.0},
    "randomized_rounding": {
        "approximation_ratio": 0.8,
        "prescale_epsilon": 0.2,
        "max_trees": 2,
        "seed": 42,
    },
}


@pytest.fixture(autouse=True)
def fresh_caches():
    api.clear_caches()
    yield
    api.clear_caches()


def _spec(solver: str, routing: str) -> ScenarioSpec:
    return ScenarioSpec(
        topology=TOPOLOGY,
        workload=WORKLOAD,
        routing=routing,
        solver=solver,
        solver_params=SOLVER_PARAMS[solver],
    )


def _facade_solution(solver: str, routing_kind: str):
    """The legacy hand-wired path the API must reproduce bit-for-bit."""
    network = TOPOLOGY.build()
    sessions = WORKLOAD.build(network)
    routing_cls = FixedIPRouting if routing_kind == "ip" else DynamicRouting
    routing = routing_cls(network)
    if solver == "max_flow":
        return solve_max_flow(sessions, routing, approximation_ratio=0.8)
    if solver == "max_concurrent_flow":
        return solve_max_concurrent_flow(
            sessions, routing, approximation_ratio=0.8, prescale_epsilon=0.2
        )
    if solver == "online":
        return solve_online(sessions, routing, sigma=10.0)
    fractional = solve_max_concurrent_flow(
        sessions, routing, approximation_ratio=0.8, prescale_epsilon=0.2
    )
    return solve_randomized_rounding(fractional, max_trees=2, seed=42).solution


def _flows(solution):
    """Exact per-tree decomposition (tree identity + float-exact flow)."""
    return [
        (
            s.session.name,
            sorted((tf.tree.canonical_key(), tf.flow) for tf in s.tree_flows),
        )
        for s in solution.sessions
    ]


@pytest.mark.parametrize("routing_kind", ["ip", "dynamic"])
@pytest.mark.parametrize(
    "solver", ["max_flow", "max_concurrent_flow", "online", "randomized_rounding"]
)
def test_round_tripped_spec_reproduces_facade(solver, routing_kind):
    spec = _spec(solver, routing_kind)
    report = api.solve(ScenarioSpec.from_json(spec.to_json()))
    facade = _facade_solution(solver, routing_kind)
    assert report.solution.summary() == facade.summary()
    assert _flows(report.solution) == _flows(facade)
    assert report.oracle_calls == facade.oracle_calls


class TestSolveMany:
    def test_parallel_equals_serial(self):
        specs = [
            _spec("max_flow", "ip"),
            _spec("online", "ip"),
            _spec("max_flow", "dynamic"),
        ]
        serial = api.solve_many(specs, jobs=1)
        api.clear_caches()
        parallel = api.solve_many(specs, jobs=2)
        assert [r.summary() for r in serial] == [r.summary() for r in parallel]
        assert [_flows(r.solution) for r in serial] == [
            _flows(r.solution) for r in parallel
        ]

    def test_duplicate_specs_solved_once(self):
        spec = _spec("max_flow", "ip")
        reports = api.solve_many([spec, spec, spec], jobs=1)
        assert [r.cached for r in reports] == [False, True, True]
        assert len({id(r.solution) for r in reports}) == 1
        assert api.cache_info()["misses"] == 1

    def test_cache_hits_across_calls(self):
        spec = _spec("max_flow", "ip")
        first = api.solve_many([spec], jobs=1)
        second = api.solve_many([spec], jobs=1)
        assert first[0].cached is False
        assert second[0].cached is True
        assert second[0].summary() == first[0].summary()
        assert api.cache_info()["hits"] >= 1

    def test_use_cache_false_resolves_fresh(self):
        spec = _spec("max_flow", "ip")
        api.solve_many([spec], jobs=1)
        fresh = api.solve_many([spec], jobs=1, use_cache=False)
        assert fresh[0].cached is False

    def test_use_cache_false_solves_duplicates_independently(self):
        # Regression: non-deterministic scenarios (the use_cache=False
        # use case) must get one independent solve per occurrence, not a
        # deduplicated replay of the first draw.
        spec = _spec("randomized_rounding", "ip")
        reports = api.solve_many([spec, spec], jobs=1, use_cache=False)
        assert [r.cached for r in reports] == [False, False]
        assert len({id(r.solution) for r in reports}) == 2

    def test_empty_batch(self):
        assert api.solve_many([], jobs=4) == []


class TestSolveReportSerialization:
    def test_report_round_trip_rebuilds_solution(self):
        report = api.solve(_spec("max_flow", "ip"))
        payload = json.loads(json.dumps(report.to_jsonable()))
        restored = SolveReport.from_jsonable(payload)
        assert restored.summary() == report.summary()
        assert _flows(restored.solution) == _flows(report.solution)
        assert restored.spec == report.spec
        assert restored.oracle_calls == report.oracle_calls

    def test_report_schema_checked(self):
        report = api.solve(_spec("max_flow", "ip"))
        payload = report.to_jsonable()
        payload["schema"] = "Banana/v9"
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SolveReport.from_jsonable(payload)

    def test_explicit_workload_solves(self):
        spec = ScenarioSpec(
            topology=TopologySpec("grid", {"rows": 3, "cols": 3, "capacity": 10.0}),
            workload=WorkloadSpec(
                sessions=(SessionSpec((0, 4, 8), demand=5.0, name="diag"),)
            ),
            solver="max_flow",
            solver_params={"approximation_ratio": 0.8},
        )
        report = api.solve(spec)
        assert report.solution.sessions[0].session.name == "diag"
        assert report.solution.overall_throughput > 0


class TestInstanceSharing:
    def test_instance_cache_shared_across_solvers(self):
        api.solve(_spec("max_flow", "ip"))
        before = api.cache_info()["instances"]
        api.solve(_spec("online", "ip"))
        assert api.cache_info()["instances"] == before  # same instance reused

    def test_instance_cache_is_lru_not_fifo(self, monkeypatch):
        # Regression: a hit must refresh recency, so eviction follows
        # least-recent-*use* order, not insertion order.
        from repro.api import service

        def tiny_spec(rows):
            return ScenarioSpec(
                topology=TopologySpec("grid", {"rows": rows, "cols": 2, "capacity": 10.0}),
                workload=WorkloadSpec(sessions=(SessionSpec((0, 1), demand=1.0),)),
                solver="max_flow",
                solver_params={"approximation_ratio": 0.8},
            )

        monkeypatch.setattr(service, "_INSTANCE_CACHE_LIMIT", 2)
        spec_a, spec_b, spec_c = tiny_spec(2), tiny_spec(3), tiny_spec(4)
        instance_a = service.build_instance(spec_a)
        service.build_instance(spec_b)
        # Touch A: with correct LRU bookkeeping this makes B the
        # eviction candidate even though A was inserted first.
        hit_a = service.build_instance(spec_a)
        assert hit_a is instance_a  # a genuine cache hit, not a rebuild
        service.build_instance(spec_c)
        assert spec_a.instance_key in service._instance_cache
        assert spec_b.instance_key not in service._instance_cache  # evicted
        assert spec_c.instance_key in service._instance_cache
        # And the surviving hit still returns the original objects.
        assert service.build_instance(spec_a) is instance_a

    def test_instance_cache_eviction_keeps_limit(self, monkeypatch):
        from repro.api import service

        monkeypatch.setattr(service, "_INSTANCE_CACHE_LIMIT", 2)
        for rows in (2, 3, 4, 5):
            service.build_instance(
                ScenarioSpec(
                    topology=TopologySpec(
                        "grid", {"rows": rows, "cols": 2, "capacity": 10.0}
                    ),
                    workload=WorkloadSpec(sessions=(SessionSpec((0, 1), demand=1.0),)),
                    solver="max_flow",
                )
            )
        assert len(service._instance_cache) == 2


class TestCli:
    def _write_spec_file(self, tmp_path, payload, name="spec.json"):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_run_single_spec_file(self, tmp_path, capsys):
        spec_path = self._write_spec_file(
            tmp_path, _spec("max_flow", "ip").to_jsonable()
        )
        out_path = tmp_path / "reports.json"
        assert api_main(["run", str(spec_path), "--output", str(out_path)]) == 0
        reports = json.loads(out_path.read_text())
        assert len(reports) == 1
        assert reports[0]["schema"] == api.REPORT_SCHEMA
        assert reports[0]["summary"]["overall_throughput"] > 0

    def test_run_batch_parallel_matches_serial(self, tmp_path):
        batch = [
            _spec("max_flow", "ip").to_jsonable(),
            _spec("online", "ip").to_jsonable(),
        ]
        spec_path = self._write_spec_file(tmp_path, batch)

        serial_path = tmp_path / "serial.json"
        api_main(["run", str(spec_path), "--jobs", "1", "--output", str(serial_path)])
        api.clear_caches()
        parallel_path = tmp_path / "parallel.json"
        api_main(["run", str(spec_path), "--jobs", "2", "--output", str(parallel_path)])

        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())

        def strip_timing(reports):
            out = []
            for report in reports:
                cleaned = dict(report)
                cleaned.pop("wall_seconds")
                # Engine telemetry carries wall-clock oracle timings —
                # per-run, like wall_seconds.
                cleaned.pop("instrumentation", None)
                out.append(cleaned)
            return out

        assert strip_timing(serial) == strip_timing(parallel)

    def test_run_prints_to_stdout_without_output(self, tmp_path, capsys):
        spec_path = self._write_spec_file(
            tmp_path, _spec("max_flow", "ip").to_jsonable()
        )
        assert api_main(["run", str(spec_path)]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed[0]["summary"]["oracle_calls"] > 0

    def test_list_command(self, capsys):
        assert api_main(["list"]) == 0
        output = capsys.readouterr().out
        assert "max_concurrent_flow" in output
        assert "dynamic" in output

    def test_example_command_round_trips(self, capsys):
        assert api_main(["example"]) == 0
        printed = capsys.readouterr().out
        spec = ScenarioSpec.from_json(printed)
        assert spec.solver == "max_flow"
