"""Tests for repro.util.cdf."""

import numpy as np
import pytest

from repro.util.cdf import (
    cumulative_distribution,
    fraction_of_mass_in_top,
    normalized_rank_cdf,
)


class TestCumulativeDistribution:
    def test_single_value(self):
        ranks, frac = cumulative_distribution([5.0])
        assert ranks.tolist() == [1.0]
        assert frac.tolist() == [1.0]

    def test_sorted_descending_accumulation(self):
        ranks, frac = cumulative_distribution([1.0, 3.0, 6.0])
        # Sorted descending: 6, 3, 1 -> cumulative fractions 0.6, 0.9, 1.0
        assert np.allclose(frac, [0.6, 0.9, 1.0])
        assert np.allclose(ranks, [1 / 3, 2 / 3, 1.0])

    def test_final_fraction_is_one(self):
        values = np.linspace(0.5, 9.0, 17)
        _, frac = cumulative_distribution(values)
        assert frac[-1] == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        values = [4.0, 0.0, 2.5, 2.5, 7.0]
        _, frac = cumulative_distribution(values)
        assert np.all(np.diff(frac) >= -1e-12)

    def test_empty_input(self):
        ranks, frac = cumulative_distribution([])
        assert ranks.size == 0 and frac.size == 0

    def test_all_zero_values(self):
        _, frac = cumulative_distribution([0.0, 0.0, 0.0])
        assert np.allclose(frac, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            cumulative_distribution([1.0, -2.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            cumulative_distribution(np.ones((2, 2)))


class TestNormalizedRankCdf:
    def test_sorted_descending(self):
        ranks, vals = normalized_rank_cdf([0.2, 0.9, 0.5])
        assert vals.tolist() == [0.9, 0.5, 0.2]
        assert np.allclose(ranks, [1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        ranks, vals = normalized_rank_cdf([])
        assert ranks.size == 0 and vals.size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            normalized_rank_cdf(np.ones((3, 1)))


class TestFractionOfMassInTop:
    def test_uniform_values(self):
        assert fraction_of_mass_in_top([1.0] * 10, 0.1) == pytest.approx(0.1)

    def test_concentrated_values(self):
        values = [100.0] + [1.0] * 9
        assert fraction_of_mass_in_top(values, 0.1) == pytest.approx(100 / 109)

    def test_full_fraction_returns_one(self):
        assert fraction_of_mass_in_top([3.0, 2.0, 5.0], 1.0) == pytest.approx(1.0)

    def test_empty_values(self):
        assert fraction_of_mass_in_top([], 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            fraction_of_mass_in_top([1.0], 0.0)
        with pytest.raises(ValueError):
            fraction_of_mass_in_top([1.0], 1.5)
