"""ArrivalSpec: spec-representable online arrivals.

An online ``ScenarioSpec`` now fully determines its run — replication,
per-copy demand, and arrival order all live in the ``arrivals`` field —
so online scenarios cache, shard and re-run through the report store
exactly like offline ones.  These tests pin the contract: construction
validation, deterministic application, canonical-key sensitivity
(permuting the explicit order *changes* the key), cross-process
determinism of the solved report, and the acceptance criterion that a
warm-store re-run of the tree-limit online sweep performs zero solver
calls.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.api as api
import repro.api.service as service
from repro.api import ArrivalSpec, ScenarioSpec, TopologySpec, WorkloadSpec
from repro.experiments import runner
from repro.overlay.session import Session
from repro.store import ReportStore
from repro.util.errors import ConfigurationError

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")


def _online_spec(**arrival_kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        topology=TopologySpec(
            "paper_flat", {"num_nodes": 24, "capacity": 100.0}, seed=3
        ),
        workload=WorkloadSpec(sizes=(3, 3), demand=100.0, seed=4),
        routing="ip",
        solver="online",
        solver_params={"sigma": 10.0, "group_by_members": True},
        arrivals=ArrivalSpec(**arrival_kwargs),
    )


def _flows(solution):
    return [
        sorted((tf.tree.canonical_key(), tf.flow) for tf in s.tree_flows)
        for s in solution.sessions
    ]


class TestArrivalSpecValidation:
    def test_replication_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec(replication=0)

    def test_seed_and_order_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec(replication=2, seed=1, order=(1, 0, 2, 3))

    def test_order_rejects_duplicates_and_negatives(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec(order=(0, 0))
        with pytest.raises(ConfigurationError):
            ArrivalSpec(order=(-1, 0))

    def test_demand_override_must_be_positive_finite(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec(demand=0.0)
        with pytest.raises(ConfigurationError):
            ArrivalSpec(demand=float("inf"))

    def test_order_length_checked_at_apply_time(self):
        spec = ArrivalSpec(replication=2, order=(0, 1, 2))
        sessions = [Session((0, 1), name="a"), Session((2, 3), name="b")]
        with pytest.raises(ConfigurationError):
            spec.apply(sessions)


class TestArrivalSpecApplication:
    def test_replication_and_demand_override(self):
        sessions = [
            Session((0, 1), demand=100.0, name="a"),
            Session((2, 3), demand=100.0, name="b"),
        ]
        arrivals = ArrivalSpec(replication=3, demand=1.0).apply(sessions)
        assert len(arrivals) == 6
        assert all(s.demand == 1.0 for s in arrivals)
        # Session-major replica order when no seed/order is given.
        assert [s.name for s in arrivals] == [
            "a#0", "a#1", "a#2", "b#0", "b#1", "b#2",
        ]

    def test_seeded_permutation_is_deterministic(self):
        sessions = [Session((0, 1), name="a"), Session((2, 3), name="b")]
        first = ArrivalSpec(replication=4, seed=9).apply(sessions)
        second = ArrivalSpec(replication=4, seed=9).apply(sessions)
        assert [s.name for s in first] == [s.name for s in second]
        other = ArrivalSpec(replication=4, seed=10).apply(sessions)
        assert [s.name for s in other] != [s.name for s in first]

    def test_explicit_order_applied_verbatim(self):
        sessions = [Session((0, 1), name="a"), Session((2, 3), name="b")]
        arrivals = ArrivalSpec(replication=1, order=(1, 0)).apply(sessions)
        assert [s.name for s in arrivals] == ["b#0", "a#0"]

    def test_build_sessions_matches_the_service_path(self):
        # ScenarioSpec.build_sessions is the convenience composition of
        # workload.build + arrivals.apply; it must produce exactly the
        # arrival sequence the solve service feeds the solver (which
        # applies arrivals on top of the cached instance's sessions).
        spec = _online_spec(replication=2, seed=7, demand=1.0)
        network = spec.topology.build()
        composed = spec.build_sessions(network)
        service_path = spec.arrivals.apply(spec.workload.build(network))
        assert composed == service_path
        plain = ScenarioSpec(topology=spec.topology, workload=spec.workload)
        assert plain.build_sessions(network) == plain.workload.build(network)


class TestArrivalCanonicalKeys:
    def test_round_trip_preserves_key(self):
        spec = _online_spec(replication=3, seed=11, demand=1.0)
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.canonical_key == spec.canonical_key

    def test_permuted_explicit_order_changes_key(self):
        base = _online_spec(replication=1, order=(0, 1))
        permuted = _online_spec(replication=1, order=(1, 0))
        assert base.canonical_key != permuted.canonical_key

    def test_arrival_free_specs_keep_their_keys(self):
        spec = ScenarioSpec(
            topology=TopologySpec("paper_flat", {"num_nodes": 24}, seed=3),
            workload=WorkloadSpec(sizes=(3,), demand=100.0, seed=4),
        )
        # The arrivals field must not appear in the JSON form of an
        # arrival-free spec, or every pre-existing canonical key (and
        # with it every persisted store entry) would shift.
        assert "arrivals" not in spec.to_jsonable()
        assert ScenarioSpec.from_jsonable(spec.to_jsonable()) == spec

    def test_arrivals_excluded_from_instance_key(self):
        a = _online_spec(replication=2, seed=5)
        b = _online_spec(replication=4, seed=6)
        assert a.instance_key == b.instance_key
        assert a.canonical_key != b.canonical_key


class TestArrivalDeterminism:
    def test_same_spec_same_report_across_processes(self, tmp_path):
        spec = _online_spec(replication=3, seed=11, demand=1.0)
        api.clear_caches()
        local = service.solve(spec)

        out_path = tmp_path / "report.json"
        program = (
            "import json, sys\n"
            "from repro.api import ScenarioSpec, solve\n"
            f"spec = ScenarioSpec.from_json({spec.to_json()!r})\n"
            "report = solve(spec)\n"
            f"json.dump(report.to_jsonable(), open({str(out_path)!r}, 'w'))\n"
        )
        subprocess.run(
            [sys.executable, "-c", program],
            check=True,
            env={"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"},
        )
        remote = json.loads(out_path.read_text())
        local_json = local.to_jsonable()
        # Wall-clock fields differ between runs; everything else must
        # match bit for bit.
        for doc in (local_json, remote):
            doc.pop("wall_seconds")
            doc.pop("instrumentation", None)
        assert local_json == remote

    def test_explicit_order_equals_equivalent_seeded_run(self):
        api.clear_caches()
        seeded = _online_spec(replication=2, seed=21)
        network = seeded.topology.build()
        ordered_names = [
            s.name for s in seeded.arrivals.apply(seeded.workload.build(network))
        ]
        base_names = [
            s.name
            for s in ArrivalSpec(replication=2).apply(seeded.workload.build(network))
        ]
        explicit = _online_spec(
            replication=2,
            order=tuple(base_names.index(name) for name in ordered_names),
        )
        assert explicit.canonical_key != seeded.canonical_key
        a = service.solve(seeded)
        b = service.solve(explicit)
        assert _flows(a.solution) == _flows(b.solution)


class TestWarmStoreOnlineSweep:
    def test_online_sweep_rerun_is_zero_solver_calls(self, tmp_path, monkeypatch):
        # Acceptance criterion: the tree-limit online sweep re-runs out
        # of the store without any solver dispatch, exactly like the
        # offline sweeps.
        store = ReportStore(tmp_path / "store")
        runner.clear_caches()
        api.clear_caches()
        cold = runner.online_sweep_runs("tiny", tree_limit=2, store=store)

        runner.clear_caches()
        api.clear_caches()
        store.clear_memory()
        calls = []
        original = service._solve_uncached
        monkeypatch.setattr(
            service,
            "_solve_uncached",
            lambda *a, **k: calls.append(a) or original(*a, **k),
        )
        warm = runner.online_sweep_runs("tiny", tree_limit=2, store=store)
        assert calls == []  # zero solver calls
        assert set(warm) == set(cold)
        for grid_point in cold:
            assert _flows(warm[grid_point]) == _flows(cold[grid_point])

    def test_store_path_matches_procedural_path(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        runner.clear_caches()
        api.clear_caches()
        stored = runner.online_sweep_runs("tiny", tree_limit=2, store=store)
        runner.clear_caches()
        api.clear_caches()
        procedural = runner.online_sweep_runs("tiny", tree_limit=2)
        assert set(stored) == set(procedural)
        for grid_point in stored:
            assert _flows(stored[grid_point]) == _flows(procedural[grid_point])

    def test_limited_tree_online_cells_come_from_store_on_rerun(
        self, tmp_path, monkeypatch
    ):
        store = ReportStore(tmp_path / "store")
        runner.clear_caches()
        api.clear_caches()
        cold = runner.limited_tree_study("tiny", "ip", store=store)

        runner.clear_caches()
        api.clear_caches()
        store.clear_memory()
        solved = []
        original = service.solve_instance

        def counting_solve_instance(solver, *args, **kwargs):
            solved.append(solver)
            return original(solver, *args, **kwargs)

        monkeypatch.setattr(service, "solve_instance", counting_solve_instance)
        warm = runner.limited_tree_study("tiny", "ip", store=store)
        # The fractional reference and every online ordering come off
        # the store; nothing dispatches to the online solver again.
        assert "online" not in solved
        assert "max_concurrent_flow" not in solved
        for cold_point, warm_point in zip(cold.points, warm.points):
            assert warm_point.online_throughput == cold_point.online_throughput
            assert warm_point.random_throughput == cold_point.random_throughput
