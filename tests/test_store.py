"""Durability and wiring tests for the persistent report store.

The store's contract: a ``put`` report comes back bit-identical — in a
*different process*, with the full ``FlowSolution`` reconstructed — a
corrupted entry is detected and falls back to a re-solve, concurrent
writers of one key never produce a torn read, and a batch whose keys are
all warm performs **zero** solver calls (the acceptance criterion,
asserted by counting live solver dispatches).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import api
from repro.api import ScenarioSpec, SessionSpec, TopologySpec, WorkloadSpec
from repro.api import service
from repro.store import STORE_ENV_VAR, ReportStore
from repro.util.errors import ConfigurationError

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")


def _spec(rows: int = 3) -> ScenarioSpec:
    return ScenarioSpec(
        topology=TopologySpec("grid", {"rows": rows, "cols": 3, "capacity": 10.0}),
        workload=WorkloadSpec(
            sessions=(SessionSpec((0, 4, 8), demand=5.0, name="diag"),)
        ),
        solver="max_flow",
        solver_params={"approximation_ratio": 0.8},
    )


def _flows(solution):
    return [
        (
            s.session.name,
            sorted((tf.tree.canonical_key(), tf.flow) for tf in s.tree_flows),
        )
        for s in solution.sessions
    ]


@pytest.fixture(autouse=True)
def fresh_caches():
    api.clear_caches()
    yield
    api.clear_caches()


class TestRoundTrip:
    def test_put_get_round_trip_in_process(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        report = api.solve(_spec())
        store.put(report)
        store.clear_memory()  # force the disk path
        restored = store.get(report.canonical_key)
        assert restored is not None
        assert _flows(restored.solution) == _flows(report.solution)
        assert restored.summary() == report.summary()
        assert restored.oracle_calls == report.oracle_calls
        assert restored.spec == report.spec

    def test_get_survives_new_process_bit_identical(self, tmp_path):
        # The actual durability claim: a *fresh interpreter* rebuilds the
        # report — live FlowSolution included — purely from disk.
        store = ReportStore(tmp_path / "store")
        report = api.solve(_spec())
        store.put(report)
        script = (
            "import json, sys\n"
            "from repro.store import ReportStore\n"
            f"store = ReportStore({str(tmp_path / 'store')!r})\n"
            f"report = store.get({report.canonical_key!r})\n"
            "assert report is not None, 'store miss in child process'\n"
            "json.dump(report.to_jsonable(), sys.stdout, sort_keys=True)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"},
            check=True,
        ).stdout
        child_payload = json.loads(out)
        parent_payload = report.to_jsonable()
        parent_payload["cached"] = False  # the store normalises the flag
        assert child_payload == parent_payload

    def test_gzip_and_plain_entries_interoperate(self, tmp_path):
        plain = ReportStore(tmp_path / "store", compress=False)
        report = api.solve(_spec())
        plain.put(report)
        gz = ReportStore(tmp_path / "store", compress=True)
        restored = gz.get(report.canonical_key)
        assert restored is not None
        assert _flows(restored.solution) == _flows(report.solution)
        # And the reverse direction: gzip write, plain-configured read.
        other = api.solve(_spec(rows=4))
        gz.put(other)
        plain.clear_memory()
        assert plain.get(other.canonical_key) is not None


class TestCorruption:
    def test_corrupt_entry_detected_and_quarantined(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        report = api.solve(_spec())
        path = store.put(report)
        store.clear_memory()
        path.write_bytes(b"not json at all")
        assert store.get(report.canonical_key) is None
        assert store.corrupt == 1
        assert not path.exists()  # quarantined, ready to be re-put

    def test_bit_flip_fails_digest_check(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        report = api.solve(_spec())
        path = store.put(report)
        store.clear_memory()
        raw = bytearray(path.read_bytes())
        # Flip one digit in the report body (well past the envelope's
        # own sha256 field) so the JSON still parses but the content no
        # longer matches the recorded digest.
        digits = [
            i
            for i in range(len(raw) * 2 // 3, len(raw))
            if ord("0") <= raw[i] <= ord("9")
        ]
        assert digits, "report body contains no digits to corrupt"
        flip_at = digits[0]
        raw[flip_at] = ord("8") if raw[flip_at] != ord("8") else ord("9")
        json.loads(bytes(raw).decode("utf-8"))  # still valid JSON
        path.write_bytes(bytes(raw))
        assert store.get(report.canonical_key) is None
        assert store.corrupt == 1

    def test_foreign_report_schema_degrades_to_miss(self, tmp_path):
        # A valid envelope holding a future/foreign report schema must be
        # a miss (quarantined), not an exception: from_jsonable raises
        # the repo's own ConfigurationError, which get() must swallow.
        store = ReportStore(tmp_path / "store")
        report = api.solve(_spec())
        path = store.put(report)
        store.clear_memory()
        import hashlib

        payload = report.to_jsonable()
        payload["cached"] = False
        payload["schema"] = "SolveReport/v2"
        body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        envelope = {
            "schema": "ReportStoreEntry/v1",
            "key": report.canonical_key,
            "sha256": hashlib.sha256(body).hexdigest(),
            "report": payload,
        }
        path.write_bytes(
            json.dumps(envelope, sort_keys=True, separators=(",", ":")).encode()
        )
        assert store.get(report.canonical_key) is None
        assert store.corrupt == 1
        assert not path.exists()

    def test_service_re_solves_after_corruption(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        spec = _spec()
        first = api.solve(spec, store=store)
        path = store._find_object(spec.canonical_key)
        path.write_bytes(b"garbage")
        store.clear_memory()
        api.clear_caches()
        again = api.solve(spec, store=store)
        assert again.cached is False  # fell back to a live solve
        assert _flows(again.solution) == _flows(first.solution)
        # ... and the fresh solve healed the entry.
        store.clear_memory()
        assert store.get(spec.canonical_key) is not None


class TestConcurrentWriters:
    def test_same_key_writers_never_tear(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        report = api.solve(_spec())
        store.put(report)
        writer = (
            "from repro.store import ReportStore\n"
            "from repro.api.service import SolveReport\n"
            "import json\n"
            f"store = ReportStore({str(tmp_path / 'store')!r})\n"
            f"payload = json.loads({json.dumps(json.dumps(report.to_jsonable()))})\n"
            "report = SolveReport.from_jsonable(payload)\n"
            "for _ in range(40):\n"
            "    store.put(report)\n"
        )
        env = {"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"}
        writers = [
            subprocess.Popen([sys.executable, "-c", writer], env=env)
            for _ in range(2)
        ]
        # Read continuously while both writers hammer the same key: a
        # torn write would surface as a digest/JSON failure (corrupt).
        reader = ReportStore(tmp_path / "store", memory_entries=0)
        seen = 0
        while any(w.poll() is None for w in writers):
            got = reader.get(report.canonical_key)
            assert got is not None, "reader saw a torn or missing entry"
            seen += 1
        for w in writers:
            assert w.wait() == 0
        assert reader.corrupt == 0
        assert seen > 0
        final = reader.get(report.canonical_key)
        assert _flows(final.solution) == _flows(report.solution)


class TestServiceWiring:
    def test_warm_store_batch_performs_zero_solver_calls(self, tmp_path, monkeypatch):
        # Acceptance criterion: with every key warm in the store, the
        # batch engine dispatches no solver work at all — counted at the
        # single choke point every live solve goes through.
        store = ReportStore(tmp_path / "store")
        specs = [_spec(rows) for rows in (3, 4, 5)]
        warm = api.solve_many(specs, jobs=1, store=store)
        assert all(not r.cached for r in warm)

        api.clear_caches()
        store.clear_memory()
        calls = []
        original = service._solve_uncached
        monkeypatch.setattr(
            service,
            "_solve_uncached",
            lambda *a, **k: calls.append(a) or original(*a, **k),
        )
        reports = api.solve_many(specs + specs, jobs=1, store=store)
        assert calls == []  # zero solver calls
        assert api.cache_info()["misses"] == 0
        assert api.cache_info()["store_hits"] == len(specs)
        assert all(r.cached for r in reports)
        assert [_flows(r.solution) for r in reports[: len(specs)]] == [
            _flows(r.solution) for r in warm
        ]
        # Oracle-call accounting survives the store round trip exactly.
        assert [r.oracle_calls for r in reports[: len(specs)]] == [
            r.oracle_calls for r in warm
        ]

    def test_env_var_opt_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "envstore"))
        spec = _spec()
        first = api.solve(spec)
        assert first.cached is False
        api.clear_caches()
        second = api.solve(spec)
        assert second.cached is True
        assert _flows(second.solution) == _flows(first.solution)

    def test_env_resolved_store_is_memoized(self, tmp_path, monkeypatch):
        # The env store must be one long-lived instance, or its LRU
        # front and counters reset on every resolve.
        from repro.store import resolve_store

        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "envstore"))
        assert resolve_store(None) is resolve_store(None)

    def test_store_entries_are_world_readable(self, tmp_path):
        # Atomic writes must not leak mkstemp's 0600 mode: cooperating
        # workers may run as different users on a shared filesystem.
        import os

        store = ReportStore(tmp_path / "store")
        path = store.put(api.solve(_spec()))
        umask = os.umask(0)
        os.umask(umask)
        assert (path.stat().st_mode & 0o777) == (0o666 & ~umask)

    def test_use_cache_false_bypasses_store(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        spec = _spec()
        api.solve_many([spec], jobs=1, store=store)
        reports = api.solve_many([spec], jobs=1, store=store, use_cache=False)
        assert reports[0].cached is False

    def test_cache_served_reports_backfill_the_store(self, tmp_path):
        # Regression: a store attached after the in-process cache is
        # already warm must still be populated, or a later fresh process
        # would find it empty.
        spec = _spec()
        api.solve_many([spec], jobs=1)  # warm the cache, no store
        store = ReportStore(tmp_path / "store")
        reports = api.solve_many([spec], jobs=1, store=store)
        assert reports[0].cached is True  # served from memory...
        store.clear_memory()
        assert store.get(spec.canonical_key) is not None  # ...and spilled

    def test_backfill_survives_report_cache_eviction(self, tmp_path, monkeypatch):
        # Regression: the backfill must not read a key the LRU eviction
        # pass just dropped from the in-process cache (KeyError).
        monkeypatch.setattr(service, "_REPORT_CACHE_LIMIT", 2)
        warm_spec, fresh_a, fresh_b = _spec(3), _spec(4), _spec(5)
        api.solve_many([warm_spec], jobs=1)  # cache-warm, store-absent
        store = ReportStore(tmp_path / "store")
        reports = api.solve_many([warm_spec, fresh_a, fresh_b], jobs=1, store=store)
        assert [r.cached for r in reports] == [True, False, False]
        store.clear_memory()
        for spec in (warm_spec, fresh_a, fresh_b):
            assert store.get(spec.canonical_key) is not None

    def test_store_survives_parallel_batch(self, tmp_path):
        # Pool workers skip the store; the parent writes back once.
        store = ReportStore(tmp_path / "store")
        specs = [_spec(rows) for rows in (3, 4)]
        api.solve_many(specs, jobs=2, store=store)
        store.clear_memory()
        assert all(store.get(s.canonical_key) is not None for s in specs)


class TestMaintenance:
    def test_stats_and_prune(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        reports = [api.solve(_spec(rows)) for rows in (3, 4, 5)]
        for report in reports:
            store.put(report)
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["index_lines"] == 3
        removed = store.prune(max_entries=1)
        assert removed == 2
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["index_lines"] == 1

    def test_prune_by_age_keeps_fresh_entries(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        store.put(api.solve(_spec()))
        assert store.prune(max_age_seconds=3600.0) == 0
        assert store.stats()["entries"] == 1

    def test_memory_front_is_lru(self, tmp_path):
        store = ReportStore(tmp_path / "store", memory_entries=2)
        reports = [api.solve(_spec(rows)) for rows in (3, 4, 5)]
        for report in reports[:2]:
            store.put(report)
        store.get(reports[0].canonical_key)  # refresh oldest
        store.put(reports[2])  # evicts reports[1], not reports[0]
        assert reports[0].canonical_key in store._memory
        assert reports[1].canonical_key not in store._memory
        assert reports[2].canonical_key in store._memory
        # Disk is unaffected by memory eviction.
        assert store.get(reports[1].canonical_key) is not None

    def test_invalid_configuration_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ReportStore(tmp_path, memory_entries=-1)
        store = ReportStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.prune(max_entries=-2)
