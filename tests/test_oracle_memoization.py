"""Cache-equivalence tests for the memoized spanning-tree oracle.

The oracle's tree cache is purely a performance device: with memoization
on or off, every solver must return *bit-identical* solutions — the same
rates, the same tree sets with the same per-tree flows, and the same
``oracle_calls`` counter (the paper's "MST operations" metric counts
cache hits like any other oracle call).
"""

import numpy as np
import pytest

from repro.core.maxconcurrent import MaxConcurrentFlow, MaxConcurrentFlowConfig
from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.core.online import OnlineConfig, OnlineMinCongestion
from repro.overlay.oracle import (
    MinimumOverlayTreeOracle,
    configure_tree_memoization,
    tree_memoization_default,
)
from repro.overlay.session import Session
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting


class TestOracleCacheBehaviour:
    def test_repeat_call_hits_cache(self, diamond_network):
        oracle = MinimumOverlayTreeOracle(
            Session((0, 1, 3)), FixedIPRouting(diamond_network), memoize=True
        )
        lengths = np.ones(diamond_network.num_edges)
        first = oracle.minimum_tree(lengths)
        second = oracle.minimum_tree(lengths)
        assert second.tree is first.tree  # the cached object is reused
        assert oracle.call_count == 2  # hits still count as MST operations
        assert oracle.cache_info() == {"hits": 1, "misses": 1, "size": 1}

    def test_unmemoized_oracle_builds_fresh_trees(self, diamond_network):
        oracle = MinimumOverlayTreeOracle(
            Session((0, 1, 3)), FixedIPRouting(diamond_network), memoize=False
        )
        lengths = np.ones(diamond_network.num_edges)
        first = oracle.minimum_tree(lengths)
        second = oracle.minimum_tree(lengths)
        assert second.tree is not first.tree
        assert second.tree == first.tree
        assert oracle.cache_info() == {"hits": 0, "misses": 0, "size": 0}

    def test_clear_tree_cache(self, diamond_network):
        oracle = MinimumOverlayTreeOracle(
            Session((0, 1, 3)), FixedIPRouting(diamond_network), memoize=True
        )
        lengths = np.ones(diamond_network.num_edges)
        oracle.minimum_tree(lengths)
        oracle.clear_tree_cache()
        assert oracle.cache_info() == {"hits": 0, "misses": 0, "size": 0}
        oracle.minimum_tree(lengths)
        assert oracle.cache_info()["misses"] == 1

    def test_dynamic_cache_distinguishes_paths(self, diamond_network):
        # The overlay edge set (0, 3) is the same before and after the
        # reroute; only the physical path changes.  The dynamic cache key
        # must keep both realisations as separate entries and still hit
        # when an identical query repeats.
        oracle = MinimumOverlayTreeOracle(
            Session((0, 3)), DynamicRouting(diamond_network), memoize=True
        )
        base = np.ones(diamond_network.num_edges)
        # The hop-metric tie is broken in favour of 0-2-3, so penalise
        # that route to force the reroute through 0-1-3.
        penalised = base.copy()
        penalised[diamond_network.edge_id(0, 2)] = 50.0
        penalised[diamond_network.edge_id(2, 3)] = 50.0

        first = oracle.minimum_tree(base)
        rerouted = oracle.minimum_tree(penalised)
        assert rerouted.tree != first.tree
        assert oracle.cache_info() == {"hits": 0, "misses": 2, "size": 2}
        repeat = oracle.minimum_tree(base)
        assert repeat.tree is first.tree
        assert oracle.cache_hits == 1

    def test_configure_default(self, diamond_network):
        assert tree_memoization_default() is True
        previous = configure_tree_memoization(False)
        try:
            oracle = MinimumOverlayTreeOracle(
                Session((0, 1, 3)), FixedIPRouting(diamond_network)
            )
            assert oracle.memoize is False
        finally:
            configure_tree_memoization(previous)
        assert tree_memoization_default() is True


def _fingerprint(solution):
    """Everything the paper reports about a solution, exactly."""
    return {
        "oracle_calls": solution.oracle_calls,
        "rates": [s.rate for s in solution.sessions],
        "names": [s.session.name for s in solution.sessions],
        "num_trees": solution.num_trees_per_session,
        "flows": [
            sorted((tf.tree.canonical_key(), tf.flow) for tf in s.tree_flows)
            for s in solution.sessions
        ],
    }


@pytest.fixture(scope="module")
def equivalence_sessions():
    return [
        Session((0, 4, 9, 13), demand=100.0, name="s1"),
        Session((2, 7, 20), demand=100.0, name="s2"),
    ]


@pytest.mark.parametrize("routing_cls", [FixedIPRouting, DynamicRouting])
class TestSolverEquivalence:
    def test_maxflow_identical(self, waxman_network, equivalence_sessions, routing_cls):
        fingerprints = []
        for memoize in (True, False):
            solver = MaxFlow(
                equivalence_sessions,
                routing_cls(waxman_network),
                MaxFlowConfig(epsilon=0.2, memoize=memoize),
            )
            fingerprints.append(_fingerprint(solver.solve()))
        assert fingerprints[0] == fingerprints[1]

    def test_maxconcurrent_identical(
        self, waxman_network, equivalence_sessions, routing_cls
    ):
        fingerprints = []
        for memoize in (True, False):
            solver = MaxConcurrentFlow(
                equivalence_sessions,
                routing_cls(waxman_network),
                MaxConcurrentFlowConfig(
                    epsilon=0.25, prescale_epsilon=0.25, memoize=memoize
                ),
            )
            fingerprints.append(_fingerprint(solver.solve()))
        assert fingerprints[0] == fingerprints[1]

    def test_online_identical(self, waxman_network, equivalence_sessions, routing_cls):
        fingerprints = []
        for memoize in (True, False):
            solver = OnlineMinCongestion(
                routing_cls(waxman_network),
                OnlineConfig(sigma=50.0, memoize=memoize),
            )
            arrivals = [
                copy
                for session in equivalence_sessions
                for copy in session.replicate(3, demand=1.0)
            ]
            solver.accept_all(arrivals)
            solution = solver.solution(group_by_members=True)
            fingerprint = _fingerprint(solution)
            fingerprint["extra"] = dict(solution.extra)
            fingerprints.append(fingerprint)
        assert fingerprints[0] == fingerprints[1]
