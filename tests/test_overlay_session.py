"""Tests for repro.overlay.session."""

import numpy as np
import pytest

from repro.overlay.session import Session, random_session, random_sessions
from repro.topology.generators import paper_two_level_topology
from repro.util.errors import InvalidSessionError


class TestSession:
    def test_basic_properties(self):
        s = Session((3, 1, 7), demand=2.0, name="s")
        assert s.size == 3
        assert s.num_receivers == 2
        assert s.source == 3
        assert set(s.receivers) == {1, 7}

    def test_explicit_source(self):
        s = Session((3, 1, 7), source=7)
        assert s.source == 7
        assert set(s.receivers) == {3, 1}

    def test_source_must_be_member(self):
        with pytest.raises(InvalidSessionError):
            Session((1, 2), source=9)

    def test_too_few_members(self):
        with pytest.raises(InvalidSessionError):
            Session((1,))

    def test_duplicate_members(self):
        with pytest.raises(InvalidSessionError):
            Session((1, 2, 1))

    def test_nonpositive_demand(self):
        with pytest.raises(InvalidSessionError):
            Session((1, 2), demand=0.0)

    def test_validate_against_network(self, diamond_network):
        Session((0, 3)).validate_against(diamond_network)
        with pytest.raises(InvalidSessionError):
            Session((0, 9)).validate_against(diamond_network)

    def test_with_demand(self):
        s = Session((1, 2), demand=1.0)
        s2 = s.with_demand(5.0)
        assert s2.demand == 5.0
        assert s2.members == s.members

    def test_replicate(self):
        s = Session((1, 2, 3), demand=4.0, name="base")
        copies = s.replicate(3)
        assert len(copies) == 3
        assert all(c.members == s.members for c in copies)
        assert len({c.name for c in copies}) == 3

    def test_replicate_with_demand_override(self):
        copies = Session((1, 2)).replicate(2, demand=0.5)
        assert all(c.demand == 0.5 for c in copies)

    def test_replicate_invalid(self):
        with pytest.raises(InvalidSessionError):
            Session((1, 2)).replicate(0)

    def test_members_coerced_to_int(self):
        s = Session((np.int64(1), np.int64(2)))
        assert all(isinstance(m, int) for m in s.members)


class TestRandomSessions:
    def test_size_and_membership(self, waxman_network):
        s = random_session(waxman_network, 6, seed=1)
        assert s.size == 6
        assert len(set(s.members)) == 6
        s.validate_against(waxman_network)

    def test_deterministic_for_seed(self, waxman_network):
        a = random_session(waxman_network, 5, seed=3)
        b = random_session(waxman_network, 5, seed=3)
        assert a.members == b.members

    def test_size_validation(self, waxman_network):
        with pytest.raises(InvalidSessionError):
            random_session(waxman_network, 1)
        with pytest.raises(InvalidSessionError):
            random_session(waxman_network, waxman_network.num_nodes + 1)

    def test_spread_across_ases(self):
        net = paper_two_level_topology(num_ases=3, routers_per_as=10, seed=5)
        s = random_session(net, 6, seed=2, spread_across_levels=True)
        levels = net.node_levels
        member_levels = {int(levels[m]) for m in s.members}
        assert len(member_levels) == 3  # members drawn from every AS

    def test_no_spread_option(self):
        net = paper_two_level_topology(num_ases=3, routers_per_as=10, seed=5)
        s = random_session(net, 4, seed=2, spread_across_levels=False)
        assert s.size == 4

    def test_random_sessions_batch(self, waxman_network):
        sessions = random_sessions(waxman_network, 3, 4, seed=9)
        assert len(sessions) == 3
        assert all(s.size == 4 for s in sessions)
        assert len({s.name for s in sessions}) == 3
