"""Tests for repro.routing.paths and repro.routing.shortest_path."""

import numpy as np
import pytest

from repro.routing.paths import UnicastPath
from repro.routing.shortest_path import (
    pairwise_distances,
    reconstruct_path,
    shortest_path_tree,
    single_pair_shortest_path,
)
from repro.topology.network import PhysicalNetwork
from repro.util.errors import InfeasibleProblemError, InvalidNetworkError


class TestUnicastPath:
    def test_from_nodes(self, diamond_network):
        path = UnicastPath.from_nodes(diamond_network, [0, 1, 3])
        assert path.source == 0
        assert path.destination == 3
        assert path.hop_count == 2
        path.validate(diamond_network)

    def test_length_and_bottleneck(self, diamond_network):
        path = UnicastPath.from_nodes(diamond_network, [0, 1, 3])
        weights = np.arange(1.0, diamond_network.num_edges + 1)
        expected = weights[diamond_network.edge_id(0, 1)] + weights[diamond_network.edge_id(1, 3)]
        assert path.length(weights) == pytest.approx(expected)
        assert path.bottleneck_capacity(diamond_network.capacities) == 10.0

    def test_trivial_path(self, diamond_network):
        path = UnicastPath(nodes=(2,), edge_ids=np.empty(0, dtype=np.int64))
        assert path.hop_count == 0
        assert path.length(diamond_network.capacities) == 0.0
        assert path.bottleneck_capacity(diamond_network.capacities) == float("inf")

    def test_edge_count_mismatch_rejected(self):
        with pytest.raises(InvalidNetworkError):
            UnicastPath(nodes=(0, 1, 2), edge_ids=np.array([0], dtype=np.int64))

    def test_validate_detects_wrong_edge_index(self, diamond_network):
        path = UnicastPath(nodes=(0, 1), edge_ids=np.array([diamond_network.edge_id(2, 3)]))
        with pytest.raises(InvalidNetworkError):
            path.validate(diamond_network)

    def test_validate_detects_missing_edge(self, diamond_network):
        path = UnicastPath(nodes=(0, 3), edge_ids=np.array([0]))
        with pytest.raises(InvalidNetworkError):
            path.validate(diamond_network)

    def test_validate_detects_repeated_node(self, triangle_network):
        path = UnicastPath(
            nodes=(0, 1, 0),
            edge_ids=np.array(
                [triangle_network.edge_id(0, 1), triangle_network.edge_id(0, 1)]
            ),
        )
        with pytest.raises(InvalidNetworkError):
            path.validate(triangle_network)

    def test_len(self, diamond_network):
        path = UnicastPath.from_nodes(diamond_network, [0, 2, 3])
        assert len(path) == 3


class TestShortestPathTree:
    def test_hop_metric_distances(self, path_network):
        distances, _ = shortest_path_tree(path_network, [0])
        assert distances[0, 4] == pytest.approx(4.0)

    def test_weighted_distances(self, diamond_network):
        weights = np.ones(diamond_network.num_edges)
        weights[diamond_network.edge_id(0, 1)] = 10.0
        distances, _ = shortest_path_tree(diamond_network, [0], weights)
        # 0->1 now cheaper via 0-2-1 (cost 2) than direct (cost 10).
        assert distances[0, 1] == pytest.approx(2.0)

    def test_multiple_sources(self, path_network):
        distances, _ = shortest_path_tree(path_network, [0, 4])
        assert distances.shape == (2, 5)
        assert distances[1, 0] == pytest.approx(4.0)

    def test_empty_sources(self, path_network):
        distances, predecessors = shortest_path_tree(path_network, [])
        assert distances.shape == (0, 5)
        assert predecessors.shape == (0, 5)

    def test_zero_weights_clamped(self, diamond_network):
        weights = np.zeros(diamond_network.num_edges)
        distances, _ = shortest_path_tree(diamond_network, [0], weights)
        assert np.all(np.isfinite(distances))

    def test_bad_source_rejected(self, diamond_network):
        with pytest.raises(InvalidNetworkError):
            shortest_path_tree(diamond_network, [99])

    def test_negative_weights_rejected(self, diamond_network):
        with pytest.raises(InvalidNetworkError):
            shortest_path_tree(diamond_network, [0], -np.ones(diamond_network.num_edges))


class TestReconstruction:
    def test_roundtrip(self, grid_network):
        distances, predecessors = shortest_path_tree(grid_network, [0])
        path = reconstruct_path(grid_network, predecessors[0], 0, 15)
        assert path.source == 0 and path.destination == 15
        assert path.hop_count == distances[0, 15]
        path.validate(grid_network)

    def test_source_equals_destination(self, grid_network):
        _, predecessors = shortest_path_tree(grid_network, [3])
        path = reconstruct_path(grid_network, predecessors[0], 3, 3)
        assert path.hop_count == 0

    def test_unreachable_raises(self):
        net = PhysicalNetwork(4, [(0, 1), (2, 3)])
        _, predecessors = shortest_path_tree(net, [0])
        with pytest.raises(InfeasibleProblemError):
            reconstruct_path(net, predecessors[0], 0, 3)

    def test_single_pair_helper(self, diamond_network):
        path = single_pair_shortest_path(diamond_network, 0, 3)
        assert path.hop_count == 2

    def test_single_pair_unreachable(self):
        net = PhysicalNetwork(4, [(0, 1), (2, 3)])
        with pytest.raises(InfeasibleProblemError):
            single_pair_shortest_path(net, 0, 2)


class TestPairwiseDistances:
    def test_submatrix(self, path_network):
        d = pairwise_distances(path_network, [0, 2, 4])
        assert d.shape == (3, 3)
        assert d[0, 2] == pytest.approx(4.0)
        assert np.allclose(np.diag(d), 0.0)
