"""Spec and registry tests for the Scenario API (``repro.api``).

Covers the declarative layer: JSON round-trips, canonical keys, workload
construction equivalence with the experiment settings, and the
open-registration registry (duplicate and unknown names, plugin
decorators, the legacy ``make_routing`` shim).
"""

import json

import pytest

from repro.api import (
    Registry,
    ScenarioSpec,
    SessionSpec,
    TopologySpec,
    WorkloadSpec,
    default_registry,
)
from repro.api.specs import _canonical_json
from repro.core.result import FlowSolution
from repro.core.solver import make_routing
from repro.experiments.settings import flat_setting_for_scale, sweep_setting_for_scale
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.generators import grid_topology, paper_flat_topology
from repro.util.errors import ConfigurationError
from repro.util.serialization import from_jsonable


@pytest.fixture
def scenario() -> ScenarioSpec:
    return ScenarioSpec(
        topology=TopologySpec(
            "paper_flat", {"num_nodes": 30, "capacity": 100.0}, seed=13
        ),
        workload=WorkloadSpec(sizes=(4, 3), demand=100.0, seed=5),
        routing="ip",
        solver="max_flow",
        solver_params={"approximation_ratio": 0.8},
    )


class TestSpecRoundTrips:
    def test_scenario_json_round_trip(self, scenario):
        assert ScenarioSpec.from_json(scenario.to_json()) == scenario
        assert ScenarioSpec.from_jsonable(scenario.to_jsonable()) == scenario

    def test_round_trip_through_real_json_text(self, scenario):
        # Through an actual serialize/parse cycle, not just dict identity.
        text = json.dumps(scenario.to_jsonable())
        assert ScenarioSpec.from_jsonable(json.loads(text)) == scenario

    def test_explicit_workload_round_trip(self):
        workload = WorkloadSpec(
            sessions=(
                SessionSpec((0, 3, 9), demand=50.0, source=3, name="alpha"),
                SessionSpec((1, 2), demand=1.0),
            )
        )
        restored = WorkloadSpec.from_json(workload.to_json())
        assert restored == workload
        assert restored.sessions[0].source == 3

    def test_canonical_key_stable_and_discriminating(self, scenario):
        round_tripped = ScenarioSpec.from_json(scenario.to_json())
        assert round_tripped.canonical_key == scenario.canonical_key
        different = scenario.with_solver("max_flow", approximation_ratio=0.85)
        assert different.canonical_key != scenario.canonical_key

    def test_instance_key_ignores_solver(self, scenario):
        other = scenario.with_solver("max_concurrent_flow", approximation_ratio=0.8)
        assert other.instance_key == scenario.instance_key
        assert other.canonical_key != scenario.canonical_key

    def test_canonical_json_is_order_independent(self):
        a = _canonical_json({"b": 1, "a": 2})
        b = _canonical_json({"a": 2, "b": 1})
        assert a == b

    def test_unknown_field_rejected(self, scenario):
        data = scenario.to_jsonable()
        data["topolgy"] = data.pop("topology")
        with pytest.raises(TypeError):
            ScenarioSpec.from_jsonable(data)

    def test_from_jsonable_type_checks(self):
        with pytest.raises(TypeError):
            from_jsonable(TopologySpec, {"generator": 42})

    def test_specs_are_hashable_despite_dict_fields(self, scenario):
        # Frozen dataclasses with dict fields (params/solver_params/
        # demand_distribution) hash by content digest, so specs work in
        # sets and as dict keys; equal specs collapse to one entry.
        twin = ScenarioSpec.from_json(scenario.to_json())
        assert len({scenario, twin}) == 1
        distributed = WorkloadSpec(
            sizes=(3,),
            demand_distribution={"kind": "uniform", "low": 1.0, "high": 2.0},
        )
        assert len({distributed, distributed}) == 1
        assert hash(scenario.topology) == hash(twin.topology)


class TestSpecConstruction:
    def test_topology_build_matches_direct_generator(self):
        spec = TopologySpec("paper_flat", {"num_nodes": 30, "capacity": 100.0}, seed=13)
        assert spec.build() == paper_flat_topology(num_nodes=30, capacity=100.0, seed=13)

    def test_unseeded_generator(self):
        spec = TopologySpec("grid", {"rows": 3, "cols": 4, "capacity": 5.0})
        assert spec.build() == grid_topology(3, 4, capacity=5.0)

    def test_flat_setting_specs_reproduce_builders(self):
        setting = flat_setting_for_scale("tiny")
        network = setting.topology_spec().build()
        direct = setting.build_sessions(network)
        via_spec = setting.workload_spec().build(network)
        assert [(s.name, s.members, s.demand) for s in via_spec] == [
            (s.name, s.members, s.demand) for s in direct
        ]

    def test_sweep_setting_specs_reproduce_builders(self):
        setting = sweep_setting_for_scale("tiny")
        network = setting.topology_spec().build()
        direct = setting.build_sessions(network, 2, 3)
        via_spec = setting.workload_spec(2, 3).build(network)
        assert [(s.name, s.members) for s in via_spec] == [
            (s.name, s.members) for s in direct
        ]

    def test_workload_mode_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec()  # neither mode
        with pytest.raises(ConfigurationError):
            WorkloadSpec(sizes=(3,), sessions=(SessionSpec((0, 1)),))  # both


class TestDemandDistribution:
    def test_default_is_omitted_from_json_preserving_canonical_keys(self):
        # The field must not perturb the digest of pre-existing specs:
        # its default is absent from the JSON form entirely.
        workload = WorkloadSpec(sizes=(4, 3), demand=100.0, seed=5)
        data = workload.to_jsonable()
        assert "demand_distribution" not in data
        legacy_shape = {
            "sizes": [4, 3],
            "demand": 100.0,
            "seed": 5,
            "spread_across_levels": True,
            "sessions": [],
        }
        assert data == legacy_shape
        assert WorkloadSpec.from_jsonable(legacy_shape) == workload

    def test_default_omitted_when_nested_in_scenario_spec(self, scenario):
        # Regression: the omission must hold at every nesting depth —
        # the scenario-level digest is what the store, the report cache
        # and cluster sharding actually key on.
        data = scenario.to_jsonable()
        assert "demand_distribution" not in data["workload"]
        import hashlib

        legacy_digest = hashlib.sha256(
            _canonical_json(
                {
                    "topology": {
                        "generator": "paper_flat",
                        "params": {"num_nodes": 30, "capacity": 100.0},
                        "seed": 13,
                    },
                    "workload": {
                        "sizes": [4, 3],
                        "demand": 100.0,
                        "seed": 5,
                        "spread_across_levels": True,
                        "sessions": [],
                    },
                    "routing": "ip",
                    "solver": "max_flow",
                    "solver_params": {"approximation_ratio": 0.8},
                }
            ).encode("utf-8")
        ).hexdigest()
        assert scenario.canonical_key == legacy_digest
        # And the instance digest (shared-instance cache key) as well.
        assert "demand_distribution" not in json.dumps(scenario.to_jsonable())

    def test_round_trip_with_distribution(self):
        workload = WorkloadSpec(
            sizes=(4, 3),
            seed=5,
            demand_distribution={"kind": "uniform", "low": 50.0, "high": 150.0},
        )
        data = json.loads(json.dumps(workload.to_jsonable()))
        assert data["demand_distribution"] == {
            "kind": "uniform",
            "low": 50.0,
            "high": 150.0,
        }
        restored = WorkloadSpec.from_jsonable(data)
        assert restored == workload
        assert restored.canonical_key == workload.canonical_key
        assert (
            restored.canonical_key
            != WorkloadSpec(sizes=(4, 3), seed=5).canonical_key
        )

    def test_member_placement_unchanged_by_distribution(self, waxman_network):
        # Demands are drawn after all members are placed, so adding a
        # distribution must not move any session's members.
        base = WorkloadSpec(sizes=(4, 3), demand=100.0, seed=5)
        distributed = WorkloadSpec(
            sizes=(4, 3),
            seed=5,
            demand_distribution={"kind": "uniform", "low": 50.0, "high": 150.0},
        )
        plain = base.build(waxman_network)
        drawn = distributed.build(waxman_network)
        assert [s.members for s in plain] == [s.members for s in drawn]
        assert [s.name for s in plain] == [s.name for s in drawn]
        assert all(50.0 <= s.demand <= 150.0 for s in drawn)
        # Deterministic: the same spec draws the same demands.
        again = distributed.build(waxman_network)
        assert [s.demand for s in again] == [s.demand for s in drawn]

    def test_constant_and_exponential_kinds(self, waxman_network):
        constant = WorkloadSpec(
            sizes=(3,), seed=2, demand_distribution={"kind": "constant", "value": 42.0}
        ).build(waxman_network)
        assert [s.demand for s in constant] == [42.0]
        exponential = WorkloadSpec(
            sizes=(3, 3),
            seed=2,
            demand_distribution={"kind": "exponential", "mean": 10.0},
        ).build(waxman_network)
        assert all(s.demand > 0 for s in exponential)

    def test_distribution_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(sizes=(3,), demand_distribution={"kind": "zipf", "s": 2})
        with pytest.raises(ConfigurationError):  # missing parameter
            WorkloadSpec(sizes=(3,), demand_distribution={"kind": "uniform", "low": 1.0})
        with pytest.raises(ConfigurationError):  # stray parameter
            WorkloadSpec(
                sizes=(3,),
                demand_distribution={"kind": "constant", "value": 1.0, "extra": 2},
            )
        with pytest.raises(ConfigurationError):  # explicit mode excluded
            WorkloadSpec(
                sessions=(SessionSpec((0, 1)),),
                demand_distribution={"kind": "constant", "value": 1.0},
            )
        with pytest.raises(ConfigurationError):  # bad range, caught early
            WorkloadSpec(
                sizes=(3,),
                demand_distribution={"kind": "uniform", "low": 150.0, "high": 50.0},
            )
        with pytest.raises(ConfigurationError):  # non-numeric value
            WorkloadSpec(
                sizes=(3,), demand_distribution={"kind": "constant", "value": "a"}
            )
        with pytest.raises(ConfigurationError):  # non-positive mean
            WorkloadSpec(
                sizes=(3,), demand_distribution={"kind": "exponential", "mean": 0.0}
            )
        with pytest.raises(ConfigurationError):  # non-positive constant
            WorkloadSpec(
                sizes=(3,), demand_distribution={"kind": "constant", "value": -1.0}
            )
        with pytest.raises(ConfigurationError):  # non-positive uniform low
            WorkloadSpec(
                sizes=(3,),
                demand_distribution={"kind": "uniform", "low": -5.0, "high": 5.0},
            )
        with pytest.raises(ConfigurationError):  # flat demand is unused
            WorkloadSpec(
                sizes=(3,),
                demand=50.0,
                demand_distribution={"kind": "constant", "value": 1.0},
            )
        with pytest.raises(ConfigurationError):  # inf poisons canonical JSON
            WorkloadSpec(
                sizes=(3,),
                demand_distribution={"kind": "constant", "value": float("inf")},
            )
        with pytest.raises(ConfigurationError):  # NaN slips every <= check
            WorkloadSpec(
                sizes=(3,),
                demand_distribution={"kind": "exponential", "mean": float("nan")},
            )

    def test_distributed_demand_spec_solves(self):
        from repro import api

        spec = ScenarioSpec(
            topology=TopologySpec(
                "paper_flat", {"num_nodes": 24, "capacity": 100.0}, seed=3
            ),
            workload=WorkloadSpec(
                sizes=(3,),
                seed=4,
                demand_distribution={"kind": "uniform", "low": 50.0, "high": 150.0},
            ),
            solver="max_flow",
            solver_params={"approximation_ratio": 0.8},
        )
        report = api.solve(ScenarioSpec.from_json(spec.to_json()))
        assert report.solution.overall_throughput > 0

    def test_empty_names_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologySpec("")
        topology = TopologySpec("grid", {"rows": 2, "cols": 2})
        workload = WorkloadSpec(sizes=(2,))
        with pytest.raises(ConfigurationError):
            ScenarioSpec(topology=topology, workload=workload, routing="")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(topology=topology, workload=workload, solver="")


class TestRegistry:
    def test_builtins_present(self):
        registry = default_registry()
        for name in ("max_flow", "max_concurrent_flow", "online", "randomized_rounding"):
            assert name in registry.solver_names()
        for name in ("ip", "dynamic"):
            assert name in registry.routing_names()
        for name in ("paper_flat", "paper_two_level", "waxman", "grid"):
            assert name in registry.topology_names()

    def test_duplicate_name_rejected(self):
        registry = Registry()
        registry.register_solver("mine", lambda sessions, routing: None)
        with pytest.raises(ConfigurationError):
            registry.register_solver("mine", lambda sessions, routing: None)

    def test_unknown_name_rejected(self):
        registry = Registry()
        with pytest.raises(ConfigurationError):
            registry.solver("nope")
        with pytest.raises(ConfigurationError):
            registry.topology("nope")
        with pytest.raises(ConfigurationError):
            registry.routing("nope")

    def test_decorator_registration_and_removal(self):
        registry = Registry()

        @registry.register_solver("constant")
        def constant_solver(sessions, routing, value=1.0):
            return value

        assert registry.solver("constant") is constant_solver
        registry.remove("solver", "constant")
        with pytest.raises(ConfigurationError):
            registry.solver("constant")
        with pytest.raises(ConfigurationError):
            registry.remove("solver", "constant")
        with pytest.raises(ConfigurationError):
            registry.remove("gadget", "constant")

    def test_plugin_solver_addressable_from_spec(self, scenario):
        from repro.api import register_solver, solve
        from repro.core.maxflow import MaxFlow, MaxFlowConfig

        @register_solver("test_plugin_halved_max_flow")
        def halved(sessions, routing, approximation_ratio=0.9):
            config = MaxFlowConfig(approximation_ratio=approximation_ratio)
            return MaxFlow(sessions, routing, config).solve().scaled(0.5)

        try:
            spec = scenario.with_solver(
                "test_plugin_halved_max_flow", approximation_ratio=0.8
            )
            report = solve(spec)
            assert isinstance(report.solution, FlowSolution)
            baseline = solve(scenario)
            assert report.solution.overall_throughput == pytest.approx(
                0.5 * baseline.solution.overall_throughput
            )
        finally:
            default_registry().remove("solver", "test_plugin_halved_max_flow")


class TestMakeRoutingShim:
    def test_aliases(self, diamond_network):
        for kind in ("ip", "fixed", "fixed-ip", "static", "IP"):
            assert isinstance(make_routing(diamond_network, kind), FixedIPRouting)
        for kind in ("dynamic", "arbitrary", "Dynamic"):
            assert isinstance(make_routing(diamond_network, kind), DynamicRouting)

    def test_unknown_kind(self, diamond_network):
        with pytest.raises(ConfigurationError):
            make_routing(diamond_network, "pigeon")
