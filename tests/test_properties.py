"""Hypothesis property-based tests for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lengths import LengthFunction
from repro.overlay.mst import minimum_spanning_tree_pairs
from repro.overlay.tree_packing import (
    pack_spanning_trees_greedy,
    pack_spanning_trees_lp,
    partition_bound,
)
from repro.topology.network import PhysicalNetwork
from repro.util.cdf import cumulative_distribution, normalized_rank_cdf


# ----------------------------------------------------------------------
# CDF helpers
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_cumulative_distribution_is_monotone_and_normalised(values):
    ranks, frac = cumulative_distribution(values)
    assert ranks.shape == frac.shape
    assert np.all(np.diff(frac) >= -1e-9)
    assert np.all(frac <= 1.0 + 1e-9)
    if sum(values) > 0:
        assert frac[-1] == pytest.approx(1.0)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_normalized_rank_cdf_is_sorted_descending(values):
    _, series = normalized_rank_cdf(values)
    assert np.all(np.diff(series) <= 1e-9)
    assert series.size == len(values)


# ----------------------------------------------------------------------
# Minimum spanning tree
# ----------------------------------------------------------------------
@st.composite
def symmetric_weight_matrices(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    upper = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    matrix = np.zeros((n, n))
    iu, ju = np.triu_indices(n, k=1)
    matrix[iu, ju] = upper
    matrix[ju, iu] = upper
    return matrix


@given(symmetric_weight_matrices())
@settings(max_examples=60, deadline=None)
def test_mst_is_spanning_and_not_worse_than_star(matrix):
    n = matrix.shape[0]
    edges = minimum_spanning_tree_pairs(matrix)
    assert len(edges) == n - 1
    # The edge set must connect all nodes (union-find check).
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, j in edges:
        parent[find(i)] = find(j)
    assert len({find(i) for i in range(n)}) == 1
    # MST total weight is no worse than the star rooted at 0.
    mst_weight = sum(matrix[i, j] for i, j in edges)
    star_weight = sum(matrix[0, j] for j in range(1, n))
    assert mst_weight <= star_weight + 1e-9


# ----------------------------------------------------------------------
# Length function
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(min_value=1.001, max_value=100.0), min_size=1, max_size=30),
    st.floats(min_value=-500.0, max_value=10.0),
)
@settings(max_examples=60, deadline=None)
def test_length_function_log_values_track_products(factors, log_offset):
    lf = LengthFunction(1, log_offset)
    expected_log = log_offset
    for factor in factors:
        lf.multiply(np.array([0]), np.array([factor]))
        expected_log += np.log(factor)
    assert lf.log_value(lf.relative[0]) == pytest.approx(expected_log, rel=1e-9, abs=1e-6)
    # Relative lengths stay in a representable range no matter how many
    # multiplications happened.
    assert np.isfinite(lf.relative).all()


@given(st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=2, max_size=20))
@settings(max_examples=40, deadline=None)
def test_length_function_relative_ordering_is_scale_free(capacities):
    caps = np.asarray(capacities)
    lf = LengthFunction.for_concurrent(caps, epsilon=0.1)
    order = np.argsort(lf.relative)
    expected = np.argsort(1.0 / caps)
    assert np.array_equal(lf.relative[order], np.sort(1.0 / caps))
    assert np.allclose(np.sort(lf.relative), np.sort(1.0 / caps))
    assert expected.shape == order.shape


# ----------------------------------------------------------------------
# Tree packing: LP optimum equals the Tutte/Nash-Williams bound and greedy
# stays below it.
# ----------------------------------------------------------------------
@st.composite
def overlay_weights(draw):
    n = draw(st.integers(min_value=3, max_value=5))
    members = list(range(n))
    weights = {}
    for i in range(n):
        for j in range(i + 1, n):
            weights[(i, j)] = draw(st.floats(min_value=0.0, max_value=10.0))
    return members, weights


@given(overlay_weights())
@settings(max_examples=25, deadline=None)
def test_tree_packing_minmax_theorem(data):
    members, weights = data
    lp_value, rates = pack_spanning_trees_lp(members, weights)
    bound = partition_bound(members, weights)
    assert lp_value == pytest.approx(bound, abs=1e-6)
    greedy_value, _ = pack_spanning_trees_greedy(members, weights)
    assert greedy_value <= lp_value + 1e-6
    # Per-edge feasibility of the LP packing.
    usage = {}
    for tree, rate in rates.items():
        for edge in tree:
            usage[edge] = usage.get(edge, 0.0) + rate
    for edge, used in usage.items():
        assert used <= weights[edge] + 1e-6


# ----------------------------------------------------------------------
# PhysicalNetwork invariants
# ----------------------------------------------------------------------
@st.composite
def random_networks(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    # Spanning tree plus random extra edges guarantees connectivity.
    edges = set()
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((u, v))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    caps = [draw(st.floats(min_value=0.5, max_value=100.0)) for _ in edges]
    return n, [(u, v, c) for (u, v), c in zip(sorted(edges), caps)]


@given(random_networks())
@settings(max_examples=50, deadline=None)
def test_network_degree_sum_and_connectivity(data):
    n, edges = data
    net = PhysicalNetwork(n, edges)
    assert net.degrees().sum() == 2 * net.num_edges
    assert net.is_connected()
    assert len(net.connected_component(0)) == n
    # Every edge id is recoverable from its endpoints.
    for eid, (u, v) in enumerate(net.edges()):
        assert net.edge_id(u, v) == eid
