"""Tests for the exponential length function and FPTAS parameter helpers."""

import math

import numpy as np
import pytest

from repro.core.lengths import (
    LengthFunction,
    concurrent_delta_log,
    epsilon_for_ratio,
    maxflow_delta_log,
)
from repro.util.errors import ConfigurationError


class TestEpsilonForRatio:
    def test_maxflow_mapping(self):
        assert epsilon_for_ratio(0.9, 2.0) == pytest.approx(0.05)

    def test_concurrent_mapping(self):
        assert epsilon_for_ratio(0.91, 3.0) == pytest.approx(0.03)

    def test_invalid_ratio(self):
        with pytest.raises(ConfigurationError):
            epsilon_for_ratio(1.0)
        with pytest.raises(ConfigurationError):
            epsilon_for_ratio(0.0)

    def test_invalid_slack(self):
        with pytest.raises(ConfigurationError):
            epsilon_for_ratio(0.9, 0.0)


class TestDeltaLogs:
    def test_maxflow_delta_formula(self):
        eps, smax, route = 0.1, 5, 7.0
        expected = math.log(
            (1 + eps) ** (1 - 1 / eps) / ((smax - 1) * route) ** (1 / eps)
        )
        assert maxflow_delta_log(eps, smax, route) == pytest.approx(expected)

    def test_maxflow_delta_tiny_epsilon_no_overflow(self):
        # epsilon = 0.005 corresponds to the paper's 0.99 column and would
        # underflow a direct float computation of delta.
        value = maxflow_delta_log(0.005, 90, 20.0)
        assert np.isfinite(value)
        assert value < -1000

    def test_concurrent_delta_formula(self):
        eps, edges = 0.1, 200
        expected = (1 / eps) * math.log((1 - eps) / edges)
        assert concurrent_delta_log(eps, edges) == pytest.approx(expected)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            maxflow_delta_log(0.0, 5, 3)
        with pytest.raises(ConfigurationError):
            maxflow_delta_log(0.1, 1, 3)
        with pytest.raises(ConfigurationError):
            maxflow_delta_log(0.1, 5, 0)
        with pytest.raises(ConfigurationError):
            concurrent_delta_log(1.5, 10)
        with pytest.raises(ConfigurationError):
            concurrent_delta_log(0.1, 0)


class TestLengthFunction:
    def test_maxflow_initialisation(self):
        lf = LengthFunction.for_maxflow(10, 0.05, 7, 5.0)
        assert np.allclose(lf.relative, 1.0)
        assert lf.log_offset == pytest.approx(maxflow_delta_log(0.05, 7, 5.0))

    def test_concurrent_initialisation(self):
        caps = np.array([1.0, 2.0, 4.0])
        lf = LengthFunction.for_concurrent(caps, 0.1)
        assert np.allclose(lf.relative, 1.0 / caps)

    def test_online_initialisation(self):
        caps = np.array([10.0, 20.0])
        lf = LengthFunction.for_online(caps)
        assert lf.log_offset == 0.0
        assert np.allclose(lf.relative, 1.0 / caps)

    def test_multiply_updates_selected_edges(self):
        lf = LengthFunction(4, 0.0)
        lf.multiply(np.array([1, 3]), np.array([2.0, 3.0]))
        assert np.allclose(lf.relative, [1.0, 2.0, 1.0, 3.0])

    def test_multiply_dense(self):
        lf = LengthFunction(3, 0.0)
        lf.multiply_dense(np.array([1.0, 2.0, 4.0]))
        assert np.allclose(lf.relative, [1.0, 2.0, 4.0])

    def test_multiply_batch_accumulates_repeated_edges(self):
        # The whole point of the batched form: a repeated edge id takes
        # the *product* of its factors, where fancy-indexed multiply
        # would keep only the last one.
        lf = LengthFunction(4, 0.0)
        lf.multiply_batch(np.array([1, 1, 3, 1]), np.array([2.0, 3.0, 5.0, 4.0]))
        assert np.allclose(lf.relative, [1.0, 24.0, 1.0, 5.0])

    def test_multiply_batch_matches_sequential_multiply(self):
        # One batched call over concatenated per-step updates must agree
        # with the sequential loop it replaces (same absolute lengths).
        rng = np.random.default_rng(7)
        updates = [
            (
                rng.choice(16, 6, replace=False),
                rng.uniform(1.0, 1.5, 6),
            )
            for _ in range(25)
        ]
        sequential = LengthFunction(16, 0.5)
        for ids, factors in updates:
            sequential.multiply(ids, factors)
        batched = LengthFunction(16, 0.5)
        batched.multiply_batch(
            np.concatenate([ids for ids, _ in updates]),
            np.concatenate([factors for _, factors in updates]),
        )
        absolute = lambda lf: np.log(lf.relative) + lf.log_offset
        assert np.allclose(absolute(sequential), absolute(batched), rtol=1e-12)

    def test_multiply_batch_survives_coalesced_overflow(self):
        # Thousands of factors coalesced onto one edge overflow doubles
        # before the end-of-batch renormalisation; the batch must split
        # and renormalise instead of silently producing NaN/0 lengths.
        batched = LengthFunction(4, 0.0)
        batched.multiply_batch(
            np.zeros(8000, dtype=np.int64), np.full(8000, 1.1)
        )
        assert np.all(np.isfinite(batched.relative))
        sequential = LengthFunction(4, 0.0)
        for _ in range(8000):
            sequential.multiply(np.array([0]), np.array([1.1]))
        assert batched.log_value(batched.relative[0]) == pytest.approx(
            sequential.log_value(sequential.relative[0]), rel=1e-12
        )

    def test_multiply_batch_rejects_non_finite_factor(self):
        lf = LengthFunction(2, 0.0)
        with pytest.raises(ConfigurationError):
            lf.multiply_batch(np.array([0]), np.array([np.inf]))

    def test_multiply_batch_renormalizes(self):
        lf = LengthFunction(2, 0.0)
        lf.multiply_batch(np.array([0] * 10), np.array([1e30] * 10))
        assert lf.relative.max() <= 1e200
        assert lf.log_value(lf.relative[0]) == pytest.approx(
            10 * math.log(1e30), rel=1e-9
        )

    def test_multiply_rejects_nonpositive_factor(self):
        lf = LengthFunction(3, 0.0)
        with pytest.raises(ConfigurationError):
            lf.multiply(np.array([0]), np.array([0.0]))
        with pytest.raises(ConfigurationError):
            lf.multiply_dense(np.array([1.0, -1.0, 1.0]))
        with pytest.raises(ConfigurationError):
            lf.multiply_batch(np.array([0, 1]), np.array([1.0, 0.0]))

    def test_multiply_batch_shape_mismatch_rejected(self):
        lf = LengthFunction(3, 0.0)
        with pytest.raises(ConfigurationError):
            lf.multiply_batch(np.array([0, 1]), np.array([2.0]))

    def test_renormalisation_preserves_absolute_values(self):
        lf = LengthFunction(2, -5.0)
        # Grow one edge by a huge factor to force renormalisation.
        for _ in range(50):
            lf.multiply(np.array([0]), np.array([1e10]))
        # Absolute log of edge 0: -5 + 50 * ln(1e10).
        expected = -5.0 + 50 * math.log(1e10)
        assert lf.log_value(lf.relative[0]) == pytest.approx(expected, rel=1e-9)
        assert lf.relative.max() <= 1e200

    def test_at_least_one_threshold(self):
        lf = LengthFunction(2, math.log(0.5))
        assert not lf.at_least_one(1.0)  # absolute value 0.5
        assert lf.at_least_one(2.0)  # absolute value 1.0
        assert lf.at_least_one(4.0)

    def test_log_value_of_zero(self):
        lf = LengthFunction(2, 0.0)
        assert lf.log_value(0.0) == -math.inf

    def test_weighted_sum_log(self):
        lf = LengthFunction(3, math.log(2.0))
        weights = np.array([1.0, 2.0, 3.0])
        expected = math.log(2.0 * weights.sum())
        assert lf.weighted_sum_log(weights) == pytest.approx(expected)

    def test_copy_is_independent(self):
        lf = LengthFunction(2, 0.0)
        clone = lf.copy()
        lf.multiply(np.array([0]), np.array([5.0]))
        assert clone.relative[0] == 1.0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            LengthFunction(0, 0.0)
        with pytest.raises(ConfigurationError):
            LengthFunction(2, 0.0, relative=np.array([1.0, -1.0]))
        with pytest.raises(ConfigurationError):
            LengthFunction(2, 0.0, relative=np.array([1.0]))

    def test_relative_view_is_readonly(self):
        lf = LengthFunction(2, 0.0)
        with pytest.raises(ValueError):
            lf.relative[0] = 5.0
