"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import choice_weighted, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_from_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 5)
        b = ensure_rng(42).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_from_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(ss), np.random.Generator)


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(7, 3)
        assert len(rngs) == 3
        draws = [r.integers(0, 10**9) for r in rngs]
        assert len(set(draws)) == 3

    def test_deterministic_from_seed(self):
        a = [r.integers(0, 10**6) for r in spawn_rngs(3, 4)]
        b = [r.integers(0, 10**6) for r in spawn_rngs(3, 4)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(9), 2)
        assert len(rngs) == 2


class TestChoiceWeighted:
    def test_prefers_heavy_weight(self):
        rng = ensure_rng(0)
        draws = [choice_weighted(rng, [0.01, 0.99]) for _ in range(200)]
        assert sum(d == 1 for d in draws) > 150

    def test_zero_weights_fall_back_to_uniform(self):
        rng = ensure_rng(0)
        draws = {int(choice_weighted(rng, [0.0, 0.0, 0.0])) for _ in range(100)}
        assert draws == {0, 1, 2}

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            choice_weighted(ensure_rng(0), [1.0, -1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            choice_weighted(ensure_rng(0), [])

    def test_size_argument(self):
        out = choice_weighted(ensure_rng(0), [1.0, 1.0], size=5)
        assert len(out) == 5
