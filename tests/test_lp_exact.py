"""Tests for the exact LP baselines (repro.lp.exact)."""

import numpy as np
import pytest

from repro.lp.exact import (
    enumerate_session_trees,
    exact_max_concurrent_flow,
    exact_max_flow,
)
from repro.overlay.session import Session
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.generators import complete_topology, ring_topology
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError


class TestEnumeration:
    def test_tree_count_and_usage_shape(self, diamond_network):
        session = Session((0, 1, 3))
        trees, usage = enumerate_session_trees(session, FixedIPRouting(diamond_network))
        assert len(trees) == 3
        assert usage.shape == (3, diamond_network.num_edges)
        # Every tree of a 3-member session uses at least 2 physical links.
        assert np.all(usage.sum(axis=1) >= 2)

    def test_member_limit(self, waxman_network):
        session = Session(tuple(range(7)))
        with pytest.raises(ConfigurationError):
            enumerate_session_trees(session, FixedIPRouting(waxman_network), max_members=6)


class TestExactMaxFlow:
    def test_two_node_session_equals_edge_capacity(self):
        # Two members joined by a single link of capacity 10: the overlay
        # max flow is exactly 10.
        net = PhysicalNetwork(2, [(0, 1, 10.0)])
        solution = exact_max_flow([Session((0, 1))], FixedIPRouting(net))
        assert solution.objective == pytest.approx(10.0)
        assert solution.session_rates[0] == pytest.approx(10.0)

    def test_triangle_session_packing_value(self):
        # A 3-member session on a triangle with unit capacities: the overlay
        # graph is the triangle itself and the spanning-tree packing value
        # is 1.5 (Tutte/Nash-Williams).
        net = complete_topology(3, capacity=1.0)
        solution = exact_max_flow([Session((0, 1, 2))], FixedIPRouting(net))
        assert solution.objective == pytest.approx(1.5)

    def test_ring_session_limited_by_shared_links(self):
        net = ring_topology(4, capacity=4.0)
        solution = exact_max_flow([Session((0, 2))], FixedIPRouting(net))
        # The fixed route between opposite ring nodes uses 2 links of one
        # side only, so the rate is bounded by a single path's capacity.
        assert solution.session_rates[0] == pytest.approx(4.0)

    def test_objective_weights_by_receivers(self):
        # Two sessions with different sizes: the M1 objective weights each
        # session's rate by (|S_i|-1)/(|Smax|-1).
        net = complete_topology(5, capacity=10.0)
        s1 = Session((0, 1, 2))  # 2 receivers
        s2 = Session((3, 4))  # 1 receiver
        solution = exact_max_flow([s1, s2], FixedIPRouting(net))
        expected = solution.session_rates[0] + 0.5 * solution.session_rates[1]
        assert solution.objective == pytest.approx(expected)

    def test_empty_sessions_rejected(self, diamond_network):
        with pytest.raises(ConfigurationError):
            exact_max_flow([], FixedIPRouting(diamond_network))


class TestExactMaxConcurrent:
    def test_single_session_lambda(self):
        net = PhysicalNetwork(2, [(0, 1, 10.0)])
        solution = exact_max_concurrent_flow(
            [Session((0, 1), demand=5.0)], FixedIPRouting(net)
        )
        assert solution.objective == pytest.approx(2.0)  # 10 / 5

    def test_two_sessions_share_capacity(self):
        # Two 2-member sessions sharing one link of capacity 10 with equal
        # demands: each gets 5, lambda = 5 / demand.
        net = PhysicalNetwork(2, [(0, 1, 10.0)])
        sessions = [Session((0, 1), demand=2.0, name="a"), Session((0, 1), demand=2.0, name="b")]
        solution = exact_max_concurrent_flow(sessions, FixedIPRouting(net))
        assert solution.objective == pytest.approx(2.5)
        assert np.allclose(solution.session_rates, 5.0)

    def test_demand_weighting(self):
        # Unequal demands: rates at the optimum are proportional to demands.
        net = PhysicalNetwork(2, [(0, 1, 12.0)])
        sessions = [Session((0, 1), demand=1.0), Session((0, 1), demand=2.0)]
        solution = exact_max_concurrent_flow(sessions, FixedIPRouting(net))
        assert solution.objective == pytest.approx(4.0)
        assert solution.session_rates[0] + solution.session_rates[1] == pytest.approx(12.0)
        assert solution.session_rates[0] * 2 == pytest.approx(solution.session_rates[1], rel=1e-6)

    def test_lambda_never_exceeds_per_session_maxflow(self, waxman_network):
        routing = FixedIPRouting(waxman_network)
        sessions = [Session((0, 5, 9), demand=50.0), Session((2, 11, 20), demand=50.0)]
        concurrent = exact_max_concurrent_flow(sessions, routing)
        for index, session in enumerate(sessions):
            alone = exact_max_flow([session], routing)
            assert (
                concurrent.objective * session.demand
                <= alone.session_rates[0] + 1e-6
            )
