"""Tests for the cross-subsystem metrics registry (``repro.obs.metrics``).

Covers the registry's concurrency contract (a threaded hammer must land
exact totals), the Prometheus text exposition, the ``REPRO_METRICS``
kill switch, the engine's registry tap (counters published once at
``snapshot()`` time), and the metrics wired into the report store and
work queue.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.service import solve
from repro.api.specs import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.cluster.queue import WorkQueue
from repro.core.engine.instrumentation import DEFAULT_MAX_EVENTS, Instrumentation
from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS_ENV_VAR,
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    metrics_enabled,
    registry,
    reset_registry,
)
from repro.store.report_store import ReportStore


@pytest.fixture(autouse=True)
def fresh_registry():
    """Every test starts from an empty, enabled process-wide registry."""
    configure_metrics(True)
    yield
    configure_metrics(None)  # restore the env-driven default


def small_spec(seed: int = 5) -> ScenarioSpec:
    return ScenarioSpec(
        topology=TopologySpec(
            generator="paper_flat", params={"num_nodes": 12, "capacity": 100.0}, seed=3
        ),
        workload=WorkloadSpec(sizes=(3,), demand=10.0, seed=seed),
        routing="ip",
        solver="max_flow",
        solver_params={"approximation_ratio": 0.7},
    )


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
def test_counter_monotone_and_ignores_negative():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    counter.inc(-100.0)  # ignored: counters only go up
    assert counter.value == 3.5


def test_gauge_moves_both_ways():
    gauge = Gauge()
    gauge.set(10.0)
    gauge.inc(2.0)
    gauge.dec(5.0)
    assert gauge.value == 7.0


def test_histogram_cumulative_buckets_and_quantile():
    hist = Histogram(buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        hist.observe(value)
    snap = hist.snapshot()
    # Cumulative: every bucket includes everything below it; +Inf == count.
    assert snap["buckets"][repr(0.01)] == 1
    assert snap["buckets"][repr(0.1)] == 3
    assert snap["buckets"][repr(1.0)] == 4
    assert snap["buckets"]["+Inf"] == 5
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(5.605)
    assert hist.quantile(0.5) == 0.1
    # 5.0 sits past the last bound: the quantile clamps to it.
    assert hist.quantile(1.0) == 1.0


def test_histogram_requires_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=())


# ----------------------------------------------------------------------
# the registry: identity, typing, threading
# ----------------------------------------------------------------------
def test_registry_returns_same_instrument_per_name_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("x_total", "help", labels={"k": "a"})
    b = reg.counter("x_total", "help", labels={"k": "a"})
    c = reg.counter("x_total", "help", labels={"k": "b"})
    assert a is b
    assert a is not c


def test_registry_rejects_type_conflicts():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(ValueError):
        reg.gauge("x_total")


def test_threaded_hammer_lands_exact_totals():
    """N threads x M increments through registry lookups: exact counts."""
    reg = MetricsRegistry()
    threads, increments = 8, 2000
    barrier = threading.Barrier(threads)

    def hammer(worker: int) -> None:
        barrier.wait()
        for i in range(increments):
            # Resolve through the registry each time — the contended path.
            reg.counter("hammer_total").inc()
            reg.gauge("hammer_last").set(float(worker))
            reg.histogram("hammer_seconds", buckets=(0.5, 1.0)).observe(
                (i % 3) * 0.4
            )

    pool = [threading.Thread(target=hammer, args=(w,)) for w in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert reg.counter("hammer_total").value == threads * increments
    hist = reg.histogram("hammer_seconds", buckets=(0.5, 1.0))
    assert hist.count == threads * increments
    assert hist.snapshot()["buckets"]["+Inf"] == threads * increments


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def _parse_exposition(text: str):
    """Parse the text format into {metric_line_name: value} + meta lines."""
    samples, helps, types = {}, {}, {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
        elif line:
            name, _, value = line.rpartition(" ")
            samples[name] = float(value)
    return samples, helps, types


def test_render_prometheus_exposition_parses():
    reg = MetricsRegistry()
    reg.counter("repro_t_hits_total", "cache hits").inc(3)
    reg.counter("repro_t_lookups_total", "lookups", labels={"outcome": "miss"}).inc(2)
    reg.gauge("repro_t_depth", "queue depth").set(7)
    hist = reg.histogram("repro_t_seconds", "latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(50.0)

    text = reg.render_prometheus()
    samples, helps, types = _parse_exposition(text)

    assert helps["repro_t_hits_total"] == "cache hits"
    assert types["repro_t_hits_total"] == "counter"
    assert types["repro_t_depth"] == "gauge"
    assert types["repro_t_seconds"] == "histogram"
    assert samples["repro_t_hits_total"] == 3
    assert samples['repro_t_lookups_total{outcome="miss"}'] == 2
    assert samples["repro_t_depth"] == 7
    # Histogram: cumulative buckets, +Inf equals _count, _sum present.
    assert samples['repro_t_seconds_bucket{le="0.1"}'] == 1
    assert samples['repro_t_seconds_bucket{le="1.0"}'] == 2
    assert samples['repro_t_seconds_bucket{le="+Inf"}'] == 3
    assert samples["repro_t_seconds_count"] == 3
    assert samples["repro_t_seconds_sum"] == pytest.approx(50.55)


def test_label_values_are_escaped():
    reg = MetricsRegistry()
    reg.counter("esc_total", labels={"k": 'a"b\\c\nd'}).inc()
    text = reg.render_prometheus()
    assert 'esc_total{k="a\\"b\\\\c\\nd"} 1' in text


def test_to_jsonable_shape():
    reg = MetricsRegistry()
    reg.counter("j_total", "a counter", labels={"k": "v"}).inc(4)
    payload = reg.to_jsonable()
    assert payload["enabled"] is True
    family = payload["metrics"]["j_total"]
    assert family["type"] == "counter"
    assert family["samples"] == [{"labels": {"k": "v"}, "value": 4.0}]


# ----------------------------------------------------------------------
# the kill switch
# ----------------------------------------------------------------------
def test_disabled_registry_hands_out_null_instruments():
    reg = MetricsRegistry(enabled=False)
    counter = reg.counter("x_total")
    assert counter is NULL_INSTRUMENT
    counter.inc()
    counter.observe(1.0)  # every instrument method is a no-op
    assert reg.render_prometheus() == ""
    assert reg.to_jsonable()["metrics"] == {}


def test_env_kill_switch(monkeypatch):
    monkeypatch.setenv(METRICS_ENV_VAR, "0")
    configure_metrics(None)  # re-read the env
    assert not metrics_enabled()
    assert registry().counter("env_total") is NULL_INSTRUMENT
    monkeypatch.setenv(METRICS_ENV_VAR, "1")
    configure_metrics(None)
    assert metrics_enabled()


def test_reset_registry_keeps_setting_drops_samples():
    registry().counter("r_total").inc(9)
    fresh = reset_registry()
    assert fresh.enabled
    assert fresh.counter("r_total").value == 0


# ----------------------------------------------------------------------
# the engine registry tap (satellite: no hot-loop branches)
# ----------------------------------------------------------------------
def test_engine_counters_published_once_at_snapshot():
    spec = small_spec(seed=21)
    solve(spec)
    reg = registry()
    steps = reg.counter("repro_engine_steps_total").value
    assert steps > 0
    assert reg.counter("repro_engine_runs_total").value == 1
    assert (
        reg.counter("repro_engine_oracle_rounds_total", labels={"front": "batched"}).value
        > 0
    )
    # snapshot() ran once inside solve(); publishing is idempotent, so a
    # second snapshot of the same run must not double-count.
    solve(small_spec(seed=22))
    assert reg.counter("repro_engine_runs_total").value == 2


def test_publish_metrics_idempotent_per_run():
    instr = Instrumentation()
    instr.steps = 7
    instr.snapshot()
    instr.snapshot()  # e.g. report re-serialized
    instr.publish_metrics()
    reg = registry()
    assert reg.counter("repro_engine_runs_total").value == 1
    assert reg.counter("repro_engine_steps_total").value == 7


def test_solve_outcome_counter_tracks_cache_chain(tmp_path):
    spec = small_spec(seed=31)
    store = ReportStore(tmp_path / "store")
    solve(spec, store=store)
    solve(spec, store=store)  # second call: a store hit
    reg = registry()
    assert reg.counter("repro_solve_total", labels={"outcome": "cold"}).value == 1
    assert reg.counter("repro_solve_total", labels={"outcome": "store"}).value == 1


# ----------------------------------------------------------------------
# store + queue wiring
# ----------------------------------------------------------------------
def test_store_metrics_count_lookups_and_puts(tmp_path):
    spec = small_spec(seed=41)
    store = ReportStore(tmp_path / "store")
    report = solve(spec)
    store.put(report)
    assert store.get(spec.canonical_key) is not None
    assert store.get("absent-key") is None
    reg = registry()
    assert reg.counter("repro_store_puts_total").value == 1
    assert (
        reg.counter("repro_store_lookups_total", labels={"outcome": "hit"}).value == 1
    )
    assert (
        reg.counter("repro_store_lookups_total", labels={"outcome": "miss"}).value >= 1
    )
    assert reg.histogram("repro_store_put_seconds").count == 1


def test_queue_metrics_claim_complete_and_latency(tmp_path):
    queue = WorkQueue(tmp_path / "queue")
    queue.submit([small_spec(seed=51)])
    task = queue.claim("worker-1")
    assert task is not None
    assert task.claimed_at > 0
    queue.complete(task)
    reg = registry()
    assert reg.counter("repro_queue_claims_total").value == 1
    assert reg.counter("repro_queue_completes_total").value == 1
    assert reg.histogram("repro_queue_claim_to_complete_seconds").count == 1


# ----------------------------------------------------------------------
# satellites: the dropped-events split and configurable max_events
# ----------------------------------------------------------------------
def test_dropped_events_split_fanned_out_vs_lost():
    # No listener: overflowed events are lost entirely (not even built).
    lost_instr = Instrumentation(max_events=2)
    for step in range(5):
        lost_instr.emit("phase", step)
    snap = lost_instr.snapshot()
    assert snap["lost_events"] == 3
    assert snap["dropped_fanned_out"] == 0
    assert snap["dropped_events"] == 3  # back-compat: the sum

    # With a listener: overflowed events still fanned out live.
    seen = []
    fanned_instr = Instrumentation(max_events=2)
    fanned_instr.add_listener(seen.append)
    for step in range(5):
        fanned_instr.emit("phase", step)
    snap = fanned_instr.snapshot()
    assert len(seen) == 5
    assert snap["dropped_fanned_out"] == 3
    assert snap["lost_events"] == 0
    assert snap["dropped_events"] == 3


def test_max_events_flows_through_solver_config():
    spec_sessions_net = small_spec(seed=61)
    from repro.api.service import build_instance

    _, sessions, routing = build_instance(spec_sessions_net)
    solver = MaxFlow(
        sessions, routing, MaxFlowConfig(approximation_ratio=0.7, max_events=4)
    )
    solution = solver.solve()
    assert len(solution.instrumentation["events"]) <= 4
    assert solution.instrumentation["lost_events"] > 0
    # The default stays the canonical 256 so persisted report bytes and
    # canonical keys are unchanged.
    assert DEFAULT_MAX_EVENTS == 256
    assert Instrumentation()._max_events == DEFAULT_MAX_EVENTS


# ----------------------------------------------------------------------
# ReportStore under concurrent access (satellite: guarded counters)
# ----------------------------------------------------------------------
def test_report_store_concurrent_hits_and_misses_are_exact(tmp_path):
    store = ReportStore(tmp_path / "store")
    spec = small_spec(seed=71)
    store.put(solve(spec))
    key = spec.canonical_key

    threads, rounds = 8, 50
    barrier = threading.Barrier(threads)
    errors = []

    def worker(index: int) -> None:
        barrier.wait()
        try:
            for r in range(rounds):
                assert store.get(key) is not None
                assert store.get(f"missing-{index}-{r}") is None
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(w,)) for w in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert not errors
    # The unguarded ``self.hits += 1`` these counters replaced could tear
    # under this hammer; the lock makes the totals exact.
    assert store.hits == threads * rounds
    assert store.misses == threads * rounds


def test_default_latency_buckets_are_sorted():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


# ----------------------------------------------------------------------
# fault-tolerance metric families on the exposition (PR 10 satellite)
# ----------------------------------------------------------------------
def test_fault_tolerance_families_reach_the_exposition(tmp_path):
    """Retry, lease, attempts, breaker and fault-point metrics all render.

    One pass of real activity per surface, then the Prometheus text must
    carry every family the fault-injection harness added — the same
    names the CI observability smoke greps on /metrics.
    """
    from repro import faults
    from repro.serve.breaker import CircuitBreaker
    from repro.util.retry import RetryPolicy

    # repro_retry_total{surface,outcome}: one recovered retry.
    blips = iter([OSError("blip")])
    policy = RetryPolicy(
        max_attempts=2, floor=0.001, cap=0.002, surface="obs-smoke",
        sleep=lambda _s: None,
    )

    def flaky() -> str:
        try:
            raise next(blips)
        except StopIteration:
            return "ok"

    assert policy.call(flaky) == "ok"

    # repro_lease_renewals_total + repro_task_attempts: one claim whose
    # lease is renewed, then completed.
    queue = WorkQueue(tmp_path / "queue", lease_seconds=60.0, durable=False)
    queue.submit([small_spec(seed=81)])
    task = queue.claim("obs-smoke")
    assert task is not None
    assert queue.renew(task)
    queue.complete(task)

    # repro_serve_circuit_open: registered (closed = 0) at construction.
    CircuitBreaker(failure_threshold=3, reset_seconds=5.0)

    # repro_fault_point_hits_total / repro_fault_injections_total: one
    # armed crossing (delay of ~0s keeps the test instant).
    with faults.fault_scope("obs.smoke:delay=0"):
        faults.point("obs.smoke")

    text = registry().render_prometheus()
    for family in (
        "repro_retry_total",
        "repro_lease_renewals_total",
        "repro_task_attempts_bucket",
        "repro_serve_circuit_open",
        "repro_fault_point_hits_total",
        "repro_fault_injections_total",
    ):
        assert family in text, f"{family} missing from exposition:\n{text}"
    assert 'surface="obs-smoke"' in text
    assert 'outcome="recovered"' in text
