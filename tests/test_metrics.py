"""Tests for the metrics subpackage (distribution, utilization, fairness, summary)."""

import numpy as np
import pytest

from repro.core.result import FlowSolution, SessionResult, TreeFlow
from repro.core.solver import solve_max_flow
from repro.metrics.distribution import (
    asymmetry_index,
    session_rate_distributions,
    top_fraction_share,
    tree_rate_distribution,
)
from repro.metrics.fairness import (
    jains_index,
    max_min_violation,
    min_rate_ratio,
    throughput_ratio,
)
from repro.metrics.summary import compare_solutions, solution_table_row, solutions_to_table
from repro.metrics.utilization import (
    covered_edge_count,
    covered_edges_for_sessions,
    edges_per_node,
    link_utilization_series,
    mean_utilization,
    utilization_staircase,
)
from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree
from repro.routing.ip_routing import FixedIPRouting
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def maxflow_solution(waxman_network):
    routing = FixedIPRouting(waxman_network)
    sessions = [
        Session((0, 4, 9, 13), demand=100.0, name="s1"),
        Session((2, 7, 20), demand=100.0, name="s2"),
    ]
    return solve_max_flow(sessions, routing, epsilon=0.08)


class TestDistributionMetrics:
    def test_tree_rate_distribution_ends_at_one(self, maxflow_solution):
        for session_result in maxflow_solution.sessions:
            ranks, frac = tree_rate_distribution(session_result)
            assert frac[-1] == pytest.approx(1.0)
            assert ranks[-1] == pytest.approx(1.0)

    def test_session_rate_distributions_length(self, maxflow_solution):
        curves = session_rate_distributions(maxflow_solution)
        assert len(curves) == 2

    def test_top_fraction_share_bounds(self, maxflow_solution):
        share = top_fraction_share(maxflow_solution.sessions[0], 0.1)
        assert 0.0 < share <= 1.0
        assert top_fraction_share(maxflow_solution.sessions[0], 1.0) == pytest.approx(1.0)

    def test_asymmetry_index_range(self, maxflow_solution):
        for session_result in maxflow_solution.sessions:
            value = asymmetry_index(session_result)
            assert 0.0 <= value <= 1.0

    def test_asymmetry_index_uniform_is_low(self, maxflow_solution):
        # Build a synthetic session result with equal tree rates.
        base = maxflow_solution.sessions[0]
        equal = SessionResult(
            session=base.session,
            tree_flows=tuple(TreeFlow(tree=tf.tree, flow=1.0) for tf in base.tree_flows[:4]),
        )
        assert asymmetry_index(equal) < 0.3


class TestUtilizationMetrics:
    def test_covered_edges(self, waxman_network, maxflow_solution):
        sessions = [s.session for s in maxflow_solution.sessions]
        covered = covered_edges_for_sessions(waxman_network, sessions)
        assert covered.size == covered_edge_count(waxman_network, sessions)
        assert 0 < covered.size <= waxman_network.num_edges

    def test_link_utilization_series_bounds(self, waxman_network, maxflow_solution):
        sessions = [s.session for s in maxflow_solution.sessions]
        covered = covered_edges_for_sessions(waxman_network, sessions)
        ranks, utilization = link_utilization_series(maxflow_solution, covered)
        assert ranks.size == covered.size
        assert np.all(utilization <= 1.0 + 1e-9)
        assert np.all(np.diff(utilization) <= 1e-12)  # sorted descending

    def test_link_utilization_without_covered_argument(self, maxflow_solution):
        ranks, utilization = link_utilization_series(maxflow_solution)
        assert ranks.size > 0

    def test_mean_utilization(self, maxflow_solution):
        assert 0.0 < mean_utilization(maxflow_solution) <= 1.0

    def test_staircase_levels_sorted(self, maxflow_solution):
        staircase = utilization_staircase(maxflow_solution)
        levels = [level for level, _ in staircase]
        assert levels == sorted(levels, reverse=True)
        assert sum(count for _, count in staircase) > 0

    def test_edges_per_node_positive(self, waxman_network, maxflow_solution):
        sessions = [s.session for s in maxflow_solution.sessions]
        assert edges_per_node(waxman_network, sessions) > 0

    def test_edges_per_node_empty(self, waxman_network):
        assert edges_per_node(waxman_network, []) == 0.0


class TestFairnessMetrics:
    def test_jains_index_uniform(self):
        assert jains_index(np.array([2.0, 2.0, 2.0])) == pytest.approx(1.0)

    def test_jains_index_skewed(self):
        assert jains_index(np.array([1.0, 0.0, 0.0])) == pytest.approx(1 / 3)

    def test_jains_index_empty_and_zero(self):
        assert jains_index(np.array([])) == 1.0
        assert jains_index(np.zeros(3)) == 1.0

    def test_jains_index_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            jains_index(np.array([-1.0, 1.0]))

    def test_throughput_and_min_rate_ratio(self, maxflow_solution):
        assert throughput_ratio(maxflow_solution, maxflow_solution) == pytest.approx(1.0)
        assert min_rate_ratio(maxflow_solution, maxflow_solution) == pytest.approx(1.0)

    def test_max_min_violation_bounds(self, maxflow_solution):
        violation = max_min_violation(maxflow_solution)
        assert 0.0 <= violation <= 1.0


class TestSummary:
    def test_solution_table_row_keys(self, maxflow_solution):
        row = solution_table_row(maxflow_solution)
        assert "rate_session_1" in row
        assert "trees_session_2" in row
        assert "overall_throughput" in row

    def test_solutions_to_table_renders(self, maxflow_solution):
        text = solutions_to_table({0.9: maxflow_solution, 0.95: maxflow_solution})
        assert "0.9" in text and "0.95" in text
        assert "overall_throughput" in text

    def test_solutions_to_table_empty(self):
        assert solutions_to_table({}, title="empty") == "empty"

    def test_compare_solutions(self, maxflow_solution):
        text = compare_solutions({"MaxFlow": maxflow_solution, "Other": maxflow_solution})
        assert "MaxFlow" in text and "Other" in text
