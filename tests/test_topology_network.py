"""Tests for repro.topology.network.PhysicalNetwork."""

import numpy as np
import pytest

from repro.topology.network import PhysicalNetwork
from repro.util.errors import InvalidNetworkError


class TestConstruction:
    def test_basic_properties(self, diamond_network):
        assert diamond_network.num_nodes == 4
        assert diamond_network.num_edges == 5
        assert diamond_network.is_connected()

    def test_capacities_recorded(self, diamond_network):
        assert np.allclose(diamond_network.capacities, 10.0)

    def test_default_capacity_applied(self):
        net = PhysicalNetwork(2, [(0, 1)], default_capacity=7.0)
        assert net.capacity(0, 1) == 7.0

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidNetworkError):
            PhysicalNetwork(2, [(0, 0, 1.0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(InvalidNetworkError):
            PhysicalNetwork(3, [(0, 1, 1.0), (1, 0, 2.0)])

    def test_rejects_out_of_range_node(self):
        with pytest.raises(InvalidNetworkError):
            PhysicalNetwork(2, [(0, 5, 1.0)])

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(InvalidNetworkError):
            PhysicalNetwork(2, [(0, 1, 0.0)])

    def test_rejects_empty_edge_set(self):
        with pytest.raises(InvalidNetworkError):
            PhysicalNetwork(3, [])

    def test_rejects_zero_nodes(self):
        with pytest.raises(InvalidNetworkError):
            PhysicalNetwork(0, [(0, 1)])

    def test_rejects_bad_edge_tuple(self):
        with pytest.raises(InvalidNetworkError):
            PhysicalNetwork(2, [(0,)])

    def test_node_positions_shape_checked(self):
        with pytest.raises(InvalidNetworkError):
            PhysicalNetwork(2, [(0, 1)], node_positions=np.zeros((3, 2)))

    def test_node_levels_shape_checked(self):
        with pytest.raises(InvalidNetworkError):
            PhysicalNetwork(2, [(0, 1)], node_levels=[0, 1, 2])


class TestAccessors:
    def test_edge_id_symmetric(self, diamond_network):
        assert diamond_network.edge_id(0, 1) == diamond_network.edge_id(1, 0)

    def test_edge_id_missing_raises(self, diamond_network):
        with pytest.raises(InvalidNetworkError):
            diamond_network.edge_id(0, 3)

    def test_has_edge(self, diamond_network):
        assert diamond_network.has_edge(1, 2)
        assert not diamond_network.has_edge(0, 3)

    def test_neighbors_and_degree(self, diamond_network):
        neighbors = {v for v, _ in diamond_network.neighbors(1)}
        assert neighbors == {0, 2, 3}
        assert diamond_network.degree(1) == 3

    def test_neighbors_out_of_range(self, diamond_network):
        with pytest.raises(InvalidNetworkError):
            diamond_network.neighbors(9)

    def test_degrees_vector(self, diamond_network):
        degrees = diamond_network.degrees()
        assert degrees.sum() == 2 * diamond_network.num_edges

    def test_edges_iteration_sorted_endpoints(self, diamond_network):
        for u, v in diamond_network.edges():
            assert u < v

    def test_capacity_lookup(self, diamond_network):
        assert diamond_network.capacity(2, 3) == 10.0


class TestStructure:
    def test_disconnected_graph_detected(self):
        net = PhysicalNetwork(4, [(0, 1), (2, 3)])
        assert not net.is_connected()
        assert net.connected_component(0) == [0, 1]
        assert net.connected_component(2) == [2, 3]

    def test_connected_component_whole_graph(self, ring6_network):
        assert ring6_network.connected_component(3) == list(range(6))

    def test_validate_passes(self, diamond_network):
        diamond_network.validate()


class TestConversions:
    def test_adjacency_matrix_symmetric(self, diamond_network):
        m = diamond_network.adjacency_matrix().toarray()
        assert np.allclose(m, m.T)
        assert m[0, 1] == 1.0 and m[0, 3] == 0.0

    def test_adjacency_matrix_with_weights(self, diamond_network):
        w = np.arange(1, diamond_network.num_edges + 1, dtype=float)
        m = diamond_network.adjacency_matrix(w).toarray()
        eid = diamond_network.edge_id(0, 1)
        assert m[0, 1] == w[eid]

    def test_adjacency_matrix_bad_weights(self, diamond_network):
        with pytest.raises(InvalidNetworkError):
            diamond_network.adjacency_matrix(np.ones(3))

    def test_networkx_roundtrip(self, diamond_network):
        g = diamond_network.to_networkx()
        assert g.number_of_nodes() == 4
        back = PhysicalNetwork.from_networkx(g)
        assert back == diamond_network

    def test_with_capacities(self, diamond_network):
        caps = np.linspace(1, 5, diamond_network.num_edges)
        net2 = diamond_network.with_capacities(caps)
        assert np.allclose(net2.capacities, caps)
        assert net2.num_edges == diamond_network.num_edges

    def test_with_capacities_wrong_shape(self, diamond_network):
        with pytest.raises(InvalidNetworkError):
            diamond_network.with_capacities([1.0, 2.0])

    def test_with_uniform_capacity(self, diamond_network):
        net2 = diamond_network.with_uniform_capacity(3.0)
        assert np.allclose(net2.capacities, 3.0)

    def test_equality_and_hash(self, diamond_network):
        edges = [(0, 1, 10.0), (1, 3, 10.0), (0, 2, 10.0), (2, 3, 10.0), (1, 2, 10.0)]
        other = PhysicalNetwork(4, edges)
        assert other == diamond_network
        assert hash(other) == hash(diamond_network)
        assert diamond_network != PhysicalNetwork(4, edges[:-1])
