"""Tests for the topology generators (Waxman, BA, hierarchical, deterministic)."""

import numpy as np
import pytest

from repro.topology.barabasi import barabasi_albert_topology
from repro.topology.generators import (
    complete_topology,
    grid_topology,
    paper_flat_topology,
    paper_two_level_topology,
    random_regular_topology,
    ring_topology,
)
from repro.topology.hierarchical import TwoLevelParameters, two_level_topology
from repro.topology.waxman import WaxmanParameters, waxman_topology
from repro.util.errors import ConfigurationError


class TestWaxman:
    def test_connected_and_sized(self):
        net = waxman_topology(50, capacity=100.0, seed=1)
        assert net.num_nodes == 50
        assert net.is_connected()
        assert np.allclose(net.capacities, 100.0)

    def test_positions_recorded(self):
        net = waxman_topology(20, seed=2)
        assert net.node_positions is not None
        assert net.node_positions.shape == (20, 2)

    def test_deterministic_for_seed(self):
        a = waxman_topology(30, seed=5)
        b = waxman_topology(30, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = waxman_topology(30, seed=5)
        b = waxman_topology(30, seed=6)
        assert a != b

    def test_alpha_increases_density(self):
        sparse = waxman_topology(40, parameters=WaxmanParameters(alpha=0.05), seed=3)
        dense = waxman_topology(40, parameters=WaxmanParameters(alpha=0.9), seed=3)
        assert dense.num_edges > sparse.num_edges

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            waxman_topology(10, parameters=WaxmanParameters(alpha=0.0))
        with pytest.raises(ConfigurationError):
            waxman_topology(10, parameters=WaxmanParameters(beta=-1.0))
        with pytest.raises(ConfigurationError):
            waxman_topology(10, parameters=WaxmanParameters(min_attachment=0))
        with pytest.raises(ConfigurationError):
            waxman_topology(1)


class TestBarabasiAlbert:
    def test_connected_and_sized(self):
        net = barabasi_albert_topology(60, attachment=2, seed=4)
        assert net.num_nodes == 60
        assert net.is_connected()

    def test_minimum_degree(self):
        net = barabasi_albert_topology(40, attachment=3, seed=1)
        assert int(net.degrees().min()) >= 3

    def test_heavy_tail(self):
        net = barabasi_albert_topology(150, attachment=2, seed=0)
        degrees = net.degrees()
        assert degrees.max() >= 3 * np.median(degrees)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_topology(5, attachment=0)
        with pytest.raises(ConfigurationError):
            barabasi_albert_topology(2, attachment=3)


class TestTwoLevel:
    def test_structure(self):
        params = TwoLevelParameters(num_ases=3, routers_per_as=8)
        net = two_level_topology(params, seed=9)
        assert net.num_nodes == 24
        assert net.is_connected()
        levels = net.node_levels
        assert levels is not None
        assert set(np.unique(levels)) == {0, 1, 2}

    def test_single_as_degenerates_to_flat(self):
        params = TwoLevelParameters(num_ases=1, routers_per_as=12)
        net = two_level_topology(params, seed=9)
        assert net.num_nodes == 12
        assert set(np.unique(net.node_levels)) == {0}

    def test_capacities(self):
        params = TwoLevelParameters(
            num_ases=2, routers_per_as=6, intra_capacity=50.0, inter_capacity=50.0
        )
        net = two_level_topology(params, seed=1)
        assert np.allclose(net.capacities, 50.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            two_level_topology(TwoLevelParameters(num_ases=0))
        with pytest.raises(ConfigurationError):
            two_level_topology(TwoLevelParameters(routers_per_as=1))
        with pytest.raises(ConfigurationError):
            two_level_topology(TwoLevelParameters(intra_capacity=-1.0))


class TestDeterministicTopologies:
    def test_grid(self):
        net = grid_topology(3, 4, capacity=5.0)
        assert net.num_nodes == 12
        assert net.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert net.is_connected()

    def test_grid_invalid(self):
        with pytest.raises(ConfigurationError):
            grid_topology(1, 1)

    def test_ring(self):
        net = ring_topology(5)
        assert net.num_edges == 5
        assert all(net.degree(i) == 2 for i in net.nodes())

    def test_ring_invalid(self):
        with pytest.raises(ConfigurationError):
            ring_topology(2)

    def test_complete(self):
        net = complete_topology(6)
        assert net.num_edges == 15

    def test_complete_invalid(self):
        with pytest.raises(ConfigurationError):
            complete_topology(1)

    def test_random_regular(self):
        net = random_regular_topology(20, degree=4, seed=3)
        assert net.is_connected()
        assert all(net.degree(i) == 4 for i in net.nodes())

    def test_random_regular_invalid(self):
        with pytest.raises(ConfigurationError):
            random_regular_topology(5, degree=1)
        with pytest.raises(ConfigurationError):
            random_regular_topology(4, degree=5)
        with pytest.raises(ConfigurationError):
            random_regular_topology(5, degree=3)  # odd product


class TestPaperTopologies:
    def test_paper_flat_defaults(self):
        net = paper_flat_topology(num_nodes=60, seed=1)
        assert net.num_nodes == 60
        assert np.allclose(net.capacities, 100.0)
        assert net.is_connected()

    def test_paper_two_level(self):
        net = paper_two_level_topology(num_ases=2, routers_per_as=10, seed=1)
        assert net.num_nodes == 20
        assert net.node_levels is not None
        assert net.is_connected()
