"""Tests for packing spanning trees (paper Section II-C, Fig. 1)."""

import pytest

from repro.overlay.tree_packing import (
    best_partition,
    crossing_weight,
    enumerate_spanning_trees,
    iter_partitions,
    pack_spanning_trees_greedy,
    pack_spanning_trees_lp,
    partition_bound,
    prufer_to_tree,
)
from repro.util.errors import ConfigurationError, InvalidSessionError

# The 4-node overlay graph of the paper's Fig. 1: node 0 is the source and
# the edge weights are the pairwise traffic amounts.
FIG1_MEMBERS = [0, 1, 2, 3]
FIG1_WEIGHTS = {
    (0, 1): 3.0,
    (0, 2): 3.0,
    (0, 3): 3.0,
    (1, 2): 5.0,
    (1, 3): 1.0,
    (2, 3): 2.0,
}


class TestPartitions:
    def test_partition_count_is_bell_number(self):
        assert sum(1 for _ in iter_partitions([1, 2, 3])) == 5
        assert sum(1 for _ in iter_partitions([1, 2, 3, 4])) == 15

    def test_empty_partition(self):
        assert list(iter_partitions([])) == [[]]

    def test_crossing_weight(self):
        partition = [[0, 1], [2, 3]]
        value = crossing_weight(partition, FIG1_WEIGHTS)
        # Crossing edges: (0,2), (0,3), (1,2), (1,3) -> 3 + 3 + 5 + 1 = 12.
        assert value == pytest.approx(12.0)

    def test_best_partition_value(self):
        _, value = best_partition(FIG1_MEMBERS, FIG1_WEIGHTS)
        assert value == pytest.approx(17.0 / 3.0)

    def test_partition_bound_matches(self):
        assert partition_bound(FIG1_MEMBERS, FIG1_WEIGHTS) == pytest.approx(17.0 / 3.0)

    def test_partition_bound_two_members(self):
        assert partition_bound([0, 1], {(0, 1): 4.0}) == pytest.approx(4.0)

    def test_too_many_members_rejected(self):
        with pytest.raises(ConfigurationError):
            best_partition(list(range(13)), {})

    def test_single_member_rejected(self):
        with pytest.raises(InvalidSessionError):
            best_partition([0], {})

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidSessionError):
            partition_bound([0, 1], {(0, 1): -1.0})

    def test_non_member_weight_rejected(self):
        with pytest.raises(InvalidSessionError):
            partition_bound([0, 1], {(0, 5): 1.0})


class TestTreeEnumeration:
    def test_cayley_count(self):
        assert len(enumerate_spanning_trees([0, 1, 2])) == 3
        assert len(enumerate_spanning_trees([0, 1, 2, 3])) == 16
        assert len(enumerate_spanning_trees([4, 7, 9, 11, 20])) == 125

    def test_two_members(self):
        assert enumerate_spanning_trees([3, 8]) == [((3, 8),)]

    def test_trees_are_distinct(self):
        trees = enumerate_spanning_trees([0, 1, 2, 3])
        assert len(set(trees)) == 16

    def test_every_tree_spans(self):
        for tree in enumerate_spanning_trees([0, 1, 2, 3]):
            nodes = {u for e in tree for u in e}
            assert nodes == {0, 1, 2, 3}
            assert len(tree) == 3

    def test_limit_enforced(self):
        with pytest.raises(ConfigurationError):
            enumerate_spanning_trees(list(range(9)))

    def test_prufer_decoding(self):
        edges = prufer_to_tree([0, 0], [0, 1, 2, 3])
        assert len(edges) == 3
        # Prüfer sequence (0, 0) is the star centred at 0.
        assert sorted(edges) == [(0, 1), (0, 2), (0, 3)]

    def test_prufer_invalid_entry(self):
        with pytest.raises(InvalidSessionError):
            prufer_to_tree([9], [0, 1, 2])


class TestPacking:
    def test_lp_matches_tutte_nash_williams(self):
        value, rates = pack_spanning_trees_lp(FIG1_MEMBERS, FIG1_WEIGHTS)
        assert value == pytest.approx(partition_bound(FIG1_MEMBERS, FIG1_WEIGHTS), abs=1e-6)
        # Every returned tree must respect the per-edge weights.
        usage = {}
        for tree, rate in rates.items():
            for edge in tree:
                usage[edge] = usage.get(edge, 0.0) + rate
        for edge, total in usage.items():
            assert total <= FIG1_WEIGHTS[edge] + 1e-6

    def test_lp_on_uniform_triangle(self):
        weights = {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.0}
        value, _ = pack_spanning_trees_lp([0, 1, 2], weights)
        assert value == pytest.approx(1.5)

    def test_greedy_integer_example_reaches_paper_value(self):
        # The paper's Fig. 1 decomposes the session into 3 trees with
        # aggregate rate 5 (integral packing); the greedy packing must
        # reach at least that.
        total, chosen = pack_spanning_trees_greedy(FIG1_MEMBERS, FIG1_WEIGHTS)
        assert total >= 5.0 - 1e-9
        assert total <= partition_bound(FIG1_MEMBERS, FIG1_WEIGHTS) + 1e-9
        assert chosen

    def test_greedy_respects_weights(self):
        total, chosen = pack_spanning_trees_greedy(FIG1_MEMBERS, FIG1_WEIGHTS)
        usage = {}
        for tree, rate in chosen.items():
            for edge in tree:
                usage[edge] = usage.get(edge, 0.0) + rate
        for edge, used in usage.items():
            assert used <= FIG1_WEIGHTS[edge] + 1e-9

    def test_greedy_zero_weights(self):
        total, chosen = pack_spanning_trees_greedy([0, 1, 2], {(0, 1): 0.0, (1, 2): 0.0, (0, 2): 0.0})
        assert total == 0.0
        assert chosen == {}

    def test_greedy_never_exceeds_lp(self):
        weights = {(0, 1): 2.0, (0, 2): 1.0, (1, 2): 4.0, (0, 3): 3.0, (1, 3): 1.0, (2, 3): 2.0}
        lp_value, _ = pack_spanning_trees_lp([0, 1, 2, 3], weights)
        greedy_value, _ = pack_spanning_trees_greedy([0, 1, 2, 3], weights)
        assert greedy_value <= lp_value + 1e-9
