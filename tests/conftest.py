"""Shared fixtures for the test suite.

The fixtures centre on a handful of small, hand-analysable topologies so
that tests can assert exact optima (diamond / ring / grid) plus one
seeded Waxman instance for statistical behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.overlay.session import Session
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.generators import grid_topology, ring_topology
from repro.topology.network import PhysicalNetwork
from repro.topology.waxman import waxman_topology


@pytest.fixture
def triangle_network() -> PhysicalNetwork:
    """Three nodes in a triangle, uniform capacity 10."""
    return PhysicalNetwork(3, [(0, 1, 10.0), (1, 2, 10.0), (0, 2, 10.0)])


@pytest.fixture
def diamond_network() -> PhysicalNetwork:
    """Four nodes: 0-1, 1-3, 0-2, 2-3, plus the chord 1-2; capacity 10."""
    edges = [(0, 1, 10.0), (1, 3, 10.0), (0, 2, 10.0), (2, 3, 10.0), (1, 2, 10.0)]
    return PhysicalNetwork(4, edges)


@pytest.fixture
def path_network() -> PhysicalNetwork:
    """A 5-node path 0-1-2-3-4 with capacity 8 on every hop."""
    return PhysicalNetwork(5, [(i, i + 1, 8.0) for i in range(4)])


@pytest.fixture
def ring6_network() -> PhysicalNetwork:
    """A 6-node ring with capacity 6."""
    return ring_topology(6, capacity=6.0)


@pytest.fixture
def grid_network() -> PhysicalNetwork:
    """A 4x4 grid with capacity 10."""
    return grid_topology(4, 4, capacity=10.0)


@pytest.fixture(scope="session")
def waxman_network() -> PhysicalNetwork:
    """A fixed-seed 40-node Waxman topology shared across the session."""
    return waxman_topology(40, capacity=100.0, seed=7)


@pytest.fixture
def ip_routing(diamond_network) -> FixedIPRouting:
    """Fixed IP routing over the diamond."""
    return FixedIPRouting(diamond_network)


@pytest.fixture
def dynamic_routing(diamond_network) -> DynamicRouting:
    """Dynamic routing over the diamond."""
    return DynamicRouting(diamond_network)


@pytest.fixture
def diamond_session() -> Session:
    """A 3-member session on the diamond network."""
    return Session((0, 1, 3), demand=5.0, name="diamond")


@pytest.fixture(scope="session")
def waxman_routing(waxman_network) -> FixedIPRouting:
    """Fixed IP routing over the shared Waxman topology."""
    return FixedIPRouting(waxman_network)


@pytest.fixture(scope="session")
def waxman_sessions(waxman_network) -> list[Session]:
    """Two deterministic competing sessions on the Waxman topology."""
    rng = np.random.default_rng(11)
    members1 = tuple(int(m) for m in rng.choice(waxman_network.num_nodes, 5, replace=False))
    members2 = tuple(int(m) for m in rng.choice(waxman_network.num_nodes, 4, replace=False))
    return [
        Session(members1, demand=100.0, name="s1"),
        Session(members2, demand=100.0, name="s2"),
    ]
