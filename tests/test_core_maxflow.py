"""Tests for the MaxFlow FPTAS (paper Table I)."""

import numpy as np
import pytest

from repro.core.maxflow import MaxFlow, MaxFlowConfig, solve_max_flow
from repro.lp.exact import exact_max_flow
from repro.overlay.session import Session
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.generators import complete_topology
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError


class TestConfig:
    def test_requires_exactly_one_parameter(self):
        with pytest.raises(ConfigurationError):
            MaxFlowConfig().resolved_epsilon()
        with pytest.raises(ConfigurationError):
            MaxFlowConfig(epsilon=0.1, approximation_ratio=0.9).resolved_epsilon()

    def test_ratio_to_epsilon(self):
        assert MaxFlowConfig(approximation_ratio=0.9).resolved_epsilon() == pytest.approx(0.05)

    def test_epsilon_bounds(self):
        with pytest.raises(ConfigurationError):
            MaxFlowConfig(epsilon=0.6).resolved_epsilon()
        with pytest.raises(ConfigurationError):
            MaxFlowConfig(epsilon=0.0).resolved_epsilon()


class TestSingleLink:
    def test_two_member_session(self):
        net = PhysicalNetwork(2, [(0, 1, 10.0)])
        solution = solve_max_flow([Session((0, 1))], FixedIPRouting(net), epsilon=0.05)
        assert solution.is_feasible()
        assert solution.sessions[0].rate >= 0.9 * 10.0
        assert solution.sessions[0].rate <= 10.0 + 1e-9

    def test_solution_metadata(self):
        net = PhysicalNetwork(2, [(0, 1, 10.0)])
        solution = solve_max_flow([Session((0, 1))], FixedIPRouting(net), epsilon=0.05)
        assert solution.algorithm == "MaxFlow"
        assert solution.epsilon == pytest.approx(0.05)
        assert solution.oracle_calls > 0
        assert solution.extra["iterations"] > 0


class TestAgainstExactLP:
    @pytest.mark.parametrize("epsilon", [0.1, 0.05])
    def test_triangle_session(self, epsilon):
        net = complete_topology(3, capacity=6.0)
        sessions = [Session((0, 1, 2))]
        routing = FixedIPRouting(net)
        exact = exact_max_flow(sessions, routing)
        approx = solve_max_flow(sessions, routing, epsilon=epsilon)
        assert approx.is_feasible()
        rate = approx.sessions[0].rate
        assert rate <= exact.session_rates[0] + 1e-6
        assert rate >= (1 - 2 * epsilon) * exact.session_rates[0] - 1e-6

    def test_two_competing_sessions(self, waxman_network):
        routing = FixedIPRouting(waxman_network)
        sessions = [
            Session((0, 4, 9, 13), demand=100.0, name="s1"),
            Session((2, 7, 20), demand=100.0, name="s2"),
        ]
        exact = exact_max_flow(sessions, routing)
        approx = MaxFlow(sessions, routing, MaxFlowConfig(epsilon=0.05)).solve()
        assert approx.is_feasible()
        max_size = max(s.size for s in sessions)
        objective = sum(
            (s.session.size - 1) / (max_size - 1) * s.rate for s in approx.sessions
        )
        assert objective <= exact.objective + 1e-6
        assert objective >= (1 - 2 * 0.05) * exact.objective - 1e-6

    def test_prefers_larger_session(self, waxman_network):
        # The M1 objective favours sessions with more receivers (the paper's
        # observation in Section III-B).
        routing = FixedIPRouting(waxman_network)
        big = Session((0, 4, 9, 13, 17, 22), demand=100.0, name="big")
        small = Session((2, 7, 20), demand=100.0, name="small")
        solution = MaxFlow([big, small], routing, MaxFlowConfig(epsilon=0.1)).solve()
        assert solution.sessions[0].rate >= solution.sessions[1].rate * 0.5


class TestBehaviour:
    def test_capacity_scaling_scales_rate(self):
        net1 = complete_topology(4, capacity=10.0)
        net2 = complete_topology(4, capacity=20.0)
        sessions = [Session((0, 1, 2, 3))]
        r1 = solve_max_flow(sessions, FixedIPRouting(net1), epsilon=0.1).sessions[0].rate
        r2 = solve_max_flow(sessions, FixedIPRouting(net2), epsilon=0.1).sessions[0].rate
        assert r2 == pytest.approx(2 * r1, rel=0.05)

    def test_tighter_epsilon_needs_more_oracle_calls(self, waxman_network):
        routing = FixedIPRouting(waxman_network)
        sessions = [Session((0, 4, 9, 13), demand=100.0)]
        loose = MaxFlow(sessions, routing, MaxFlowConfig(epsilon=0.15)).solve()
        tight = MaxFlow(sessions, routing, MaxFlowConfig(epsilon=0.05)).solve()
        assert tight.oracle_calls > loose.oracle_calls

    def test_dynamic_routing_at_least_as_good(self, waxman_network):
        sessions = [Session((0, 4, 9, 13), demand=100.0)]
        fixed = solve_max_flow(sessions, FixedIPRouting(waxman_network), epsilon=0.1)
        dynamic = solve_max_flow(sessions, DynamicRouting(waxman_network), epsilon=0.1)
        assert dynamic.is_feasible()
        # Arbitrary routing can only help (up to FPTAS noise).
        assert dynamic.sessions[0].rate >= fixed.sessions[0].rate * 0.85

    def test_multiple_trees_found(self, waxman_network):
        routing = FixedIPRouting(waxman_network)
        sessions = [Session((0, 4, 9, 13), demand=100.0)]
        solution = solve_max_flow(sessions, routing, epsilon=0.05)
        assert solution.sessions[0].num_trees > 1

    def test_no_sessions_rejected(self, waxman_network):
        with pytest.raises(ConfigurationError):
            MaxFlow([], FixedIPRouting(waxman_network))

    def test_iteration_cap_enforced(self, waxman_network):
        from repro.util.errors import ConvergenceError

        routing = FixedIPRouting(waxman_network)
        sessions = [Session((0, 4, 9, 13), demand=100.0)]
        with pytest.raises(ConvergenceError):
            MaxFlow(
                sessions, routing, MaxFlowConfig(epsilon=0.05, max_iterations=3)
            ).solve()
