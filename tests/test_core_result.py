"""Tests for the flow solution containers."""

import numpy as np
import pytest

from repro.core.result import (
    FlowSolution,
    SessionFlowAccumulator,
    SessionResult,
    TreeFlow,
)
from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree
from repro.routing.ip_routing import FixedIPRouting
from repro.util.errors import ConfigurationError


@pytest.fixture
def diamond_trees(diamond_network):
    # Members 0, 1, 2 are pairwise adjacent, so every overlay edge maps to
    # a single unambiguous physical link.
    routing = FixedIPRouting(diamond_network)
    pairs_a = [(0, 1), (1, 2)]
    pairs_b = [(0, 1), (0, 2)]
    paths = routing.paths_for_pairs(pairs_a + pairs_b)
    tree_a = OverlayTree.from_paths([0, 1, 2], pairs_a, paths, diamond_network.num_edges)
    tree_b = OverlayTree.from_paths([0, 1, 2], pairs_b, paths, diamond_network.num_edges)
    return tree_a, tree_b


class TestTreeFlow:
    def test_negative_flow_rejected(self, diamond_trees):
        with pytest.raises(ConfigurationError):
            TreeFlow(tree=diamond_trees[0], flow=-1.0)


class TestAccumulator:
    def test_accumulates_same_tree(self, diamond_trees):
        acc = SessionFlowAccumulator(session=Session((0, 1, 2)))
        acc.add(diamond_trees[0], 2.0)
        acc.add(diamond_trees[0], 3.0)
        assert acc.num_trees == 1
        assert acc.total_flow == pytest.approx(5.0)

    def test_distinct_trees_counted(self, diamond_trees):
        acc = SessionFlowAccumulator(session=Session((0, 1, 2)))
        acc.add(diamond_trees[0], 1.0)
        acc.add(diamond_trees[1], 1.0)
        assert acc.num_trees == 2

    def test_zero_flow_ignored(self, diamond_trees):
        acc = SessionFlowAccumulator(session=Session((0, 1, 2)))
        acc.add(diamond_trees[0], 0.0)
        assert acc.num_trees == 0

    def test_negative_flow_rejected(self, diamond_trees):
        acc = SessionFlowAccumulator(session=Session((0, 1, 2)))
        with pytest.raises(ConfigurationError):
            acc.add(diamond_trees[0], -2.0)

    def test_scaled_output(self, diamond_trees):
        acc = SessionFlowAccumulator(session=Session((0, 1, 2)))
        acc.add(diamond_trees[0], 4.0)
        scaled = acc.scaled(0.5)
        assert len(scaled) == 1
        assert scaled[0].flow == pytest.approx(2.0)


def _make_solution(diamond_network, diamond_trees, flows=(3.0, 1.0)):
    session = Session((0, 1, 2), demand=5.0)
    result = SessionResult(
        session=session,
        tree_flows=(
            TreeFlow(tree=diamond_trees[0], flow=flows[0]),
            TreeFlow(tree=diamond_trees[1], flow=flows[1]),
        ),
    )
    return FlowSolution(
        algorithm="test",
        sessions=(result,),
        network=diamond_network,
        epsilon=0.1,
        oracle_calls=7,
    )


class TestSessionResult:
    def test_rate_and_trees(self, diamond_network, diamond_trees):
        solution = _make_solution(diamond_network, diamond_trees)
        session_result = solution.sessions[0]
        assert session_result.rate == pytest.approx(4.0)
        assert session_result.num_trees == 2
        assert session_result.aggregate_receiver_rate == pytest.approx(8.0)

    def test_edge_flows(self, diamond_network, diamond_trees):
        solution = _make_solution(diamond_network, diamond_trees)
        flows = solution.sessions[0].edge_flows(diamond_network.num_edges)
        # Edge (0,1) is used by both trees: 3 + 1 units.
        assert flows[diamond_network.edge_id(0, 1)] == pytest.approx(4.0)

    def test_rate_distribution(self, diamond_network, diamond_trees):
        solution = _make_solution(diamond_network, diamond_trees)
        ranks, frac = solution.sessions[0].rate_distribution()
        assert frac[0] == pytest.approx(0.75)
        assert frac[-1] == pytest.approx(1.0)


class TestFlowSolution:
    def test_headline_metrics(self, diamond_network, diamond_trees):
        solution = _make_solution(diamond_network, diamond_trees)
        assert solution.overall_throughput == pytest.approx(8.0)
        assert solution.min_rate == pytest.approx(4.0)
        assert solution.concurrent_throughput == pytest.approx(0.8)
        assert solution.num_trees_per_session == [2]

    def test_feasibility_check(self, diamond_network, diamond_trees):
        feasible = _make_solution(diamond_network, diamond_trees, flows=(3.0, 1.0))
        assert feasible.is_feasible()
        infeasible = _make_solution(diamond_network, diamond_trees, flows=(50.0, 1.0))
        assert not infeasible.is_feasible()

    def test_max_congestion(self, diamond_network, diamond_trees):
        solution = _make_solution(diamond_network, diamond_trees)
        assert solution.max_congestion() == pytest.approx(0.4)  # 4 units on cap 10

    def test_link_utilization_covered_only(self, diamond_network, diamond_trees):
        solution = _make_solution(diamond_network, diamond_trees)
        covered = solution.link_utilization(covered_only=True)
        full = solution.link_utilization(covered_only=False)
        assert covered.size <= full.size
        assert full.size == diamond_network.num_edges

    def test_scaled(self, diamond_network, diamond_trees):
        solution = _make_solution(diamond_network, diamond_trees)
        half = solution.scaled(0.5)
        assert half.overall_throughput == pytest.approx(4.0)
        assert half.oracle_calls == solution.oracle_calls
        with pytest.raises(ConfigurationError):
            solution.scaled(-1.0)

    def test_summary_keys(self, diamond_network, diamond_trees):
        summary = _make_solution(diamond_network, diamond_trees).summary()
        assert "overall_throughput" in summary
        assert "rate_session_1" in summary
        assert "trees_session_1" in summary
