"""Equivalence suite for the dynamic-routing fast path.

The fast path rebuilds the dynamic oracle pipeline in three layers —
cached CSR adjacency structure with in-place weight refresh
(``PhysicalNetwork``), a one-Dijkstra retained query serving both MST
weights and path reconstructions (``ShortestPathQuery`` /
``MinimumOverlayTreeOracle.minimum_tree_from_query``), and a
union-of-members Dijkstra front for all-session query rounds
(``BatchedOracleFront`` dynamic mode).  Its contract is *bit identity*:
every dynamic-routing solver must produce exactly the results the
pre-change pipeline produced.  The pre-change pipeline is kept runnable
behind :func:`configure_dynamic_fastpath`, so every test here compares
live implementations rather than recorded fixtures.
"""

import numpy as np
import pytest
from scipy.sparse import coo_matrix

from repro.core.engine import BatchedOracleFront
from repro.core.maxconcurrent import MaxConcurrentFlow, MaxConcurrentFlowConfig
from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.core.online import OnlineConfig, OnlineMinCongestion
from repro.overlay.oracle import (
    MinimumOverlayTreeOracle,
    build_oracles,
    configure_dynamic_fastpath,
    dynamic_fastpath_default,
)
from repro.overlay.session import Session
from repro.routing.dynamic import DynamicRouting
from repro.routing.shortest_path import ShortestPathQuery, shortest_path_tree
from repro.topology.network import PhysicalNetwork
from repro.util.errors import InfeasibleProblemError, InvalidNetworkError

from tests.test_engine_equivalence import fingerprint


@pytest.fixture
def legacy_dynamic_pipeline():
    """Run the enclosed block with the pre-change dynamic pipeline."""
    previous = configure_dynamic_fastpath(False)
    yield
    configure_dynamic_fastpath(previous)


def scratch_adjacency(network: PhysicalNetwork, weights: np.ndarray):
    """The pre-change from-scratch ``coo_matrix(...).tocsr()`` build."""
    endpoints = network.edge_endpoints
    u, v = endpoints[:, 0], endpoints[:, 1]
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    data = np.concatenate([weights, weights])
    return coo_matrix(
        (data, (rows, cols)), shape=(network.num_nodes, network.num_nodes)
    ).tocsr()


class TestCachedCsrStructure:
    def test_adjacency_matrix_matches_scratch_build(self, waxman_network):
        rng = np.random.default_rng(0)
        for _ in range(3):
            w = rng.uniform(0.01, 5.0, waxman_network.num_edges)
            cached = waxman_network.adjacency_matrix(w)
            scratch = scratch_adjacency(waxman_network, w)
            assert np.array_equal(cached.indptr, scratch.indptr)
            assert np.array_equal(cached.indices, scratch.indices)
            assert np.array_equal(cached.data, scratch.data)

    def test_inplace_refresh_matches_scratch_build(self, waxman_network):
        rng = np.random.default_rng(1)
        # Successive refreshes with different weights must each equal a
        # from-scratch build — the satellite's unit criterion.
        for _ in range(4):
            w = rng.uniform(0.01, 5.0, waxman_network.num_edges)
            inplace = waxman_network.csr_adjacency_inplace(w)
            scratch = scratch_adjacency(waxman_network, w)
            assert np.array_equal(inplace.indptr, scratch.indptr)
            assert np.array_equal(inplace.indices, scratch.indices)
            assert np.array_equal(inplace.data, scratch.data)

    def test_inplace_matrix_is_shared_and_refreshed(self, diamond_network):
        first = diamond_network.csr_adjacency_inplace(
            np.full(diamond_network.num_edges, 2.0)
        )
        second = diamond_network.csr_adjacency_inplace(
            np.full(diamond_network.num_edges, 7.0)
        )
        assert first is second
        assert np.all(second.data == 7.0)

    def test_hop_metric_default(self, diamond_network):
        cached = diamond_network.adjacency_matrix()
        scratch = scratch_adjacency(
            diamond_network, np.ones(diamond_network.num_edges)
        )
        assert np.array_equal(cached.toarray(), scratch.toarray())

    def test_adjacency_matrix_returns_independent_copies(self, diamond_network):
        w = np.ones(diamond_network.num_edges)
        one = diamond_network.adjacency_matrix(w)
        one.data[:] = 99.0
        one.indices[0] = one.indices[1]  # deliberately corrupt the copy
        two = diamond_network.adjacency_matrix(w)
        scratch = scratch_adjacency(diamond_network, w)
        assert np.array_equal(two.indices, scratch.indices)
        assert np.array_equal(two.data, scratch.data)

    def test_bad_weight_shape_still_raises(self, diamond_network):
        with pytest.raises(InvalidNetworkError):
            diamond_network.adjacency_matrix(np.ones(3))
        with pytest.raises(InvalidNetworkError):
            diamond_network.csr_adjacency_inplace(np.ones(3))


class TestShortestPathQuery:
    def test_rows_match_per_source_runs(self, waxman_network):
        members = [0, 5, 11, 17, 23]
        w = np.random.default_rng(2).uniform(0.1, 2.0, waxman_network.num_edges)
        query = ShortestPathQuery.run(waxman_network, members, w)
        # The union run's rows must be bit-identical to fresh
        # single-source runs — the property the whole fast path rests on.
        for m in members:
            dist, pred = shortest_path_tree(waxman_network, [m], w)
            row = query.row_index(m)
            assert np.array_equal(query.distances[row], dist[0])
            assert np.array_equal(query.predecessors[row], pred[0])

    def test_paths_match_legacy_paths_for_pairs(self, waxman_network):
        routing = DynamicRouting(waxman_network)
        members = [0, 5, 11, 17]
        pairs = [(0, 5), (11, 5), (17, 0), (11, 17)]
        w = np.random.default_rng(3).uniform(0.1, 2.0, waxman_network.num_edges)
        legacy = routing.paths_for_pairs(pairs, w)
        query = routing.query(members, w)
        fast = query.paths_for_pairs(pairs)
        assert set(fast) == set(legacy)
        for key in legacy:
            assert fast[key].nodes == legacy[key].nodes
            assert np.array_equal(fast[key].edge_ids, legacy[key].edge_ids)

    def test_pair_lengths_from_query_matches_pair_lengths(self, waxman_network):
        routing = DynamicRouting(waxman_network)
        members = [3, 9, 21, 30]
        w = np.random.default_rng(4).uniform(0.1, 2.0, waxman_network.num_edges)
        legacy = routing.pair_lengths(members, w)
        fast = routing.pair_lengths_from_query(routing.query(members, w), members)
        assert np.array_equal(fast, legacy)

    def test_union_query_serves_member_subsets(self, waxman_network):
        routing = DynamicRouting(waxman_network)
        w = np.random.default_rng(5).uniform(0.1, 2.0, waxman_network.num_edges)
        union = sorted({0, 5, 11, 17, 23, 30})
        shared = routing.query(union, w)
        for members in ([0, 5, 11], [23, 5, 30, 17]):
            direct = routing.pair_lengths(members, w)
            sliced = routing.pair_lengths_from_query(shared, members)
            assert np.array_equal(sliced, direct)

    def test_trivial_and_unknown_sources(self, diamond_network):
        query = ShortestPathQuery.run(
            diamond_network, [0, 2], np.ones(diamond_network.num_edges)
        )
        assert query.path(2, 2).hop_count == 0
        with pytest.raises(InvalidNetworkError):
            query.path(1, 3)  # 1 is not a source of this query

    def test_disconnected_destination_raises(self):
        net = PhysicalNetwork(4, [(0, 1), (2, 3)])
        query = ShortestPathQuery.run(net, [0], np.ones(net.num_edges))
        with pytest.raises(InfeasibleProblemError):
            query.path(0, 3)

    def test_path_cache_is_shared_across_queries(self, waxman_network):
        routing = DynamicRouting(waxman_network)
        w = np.ones(waxman_network.num_edges)
        first = routing.query([0, 5], w).path(0, 5)
        again = routing.query([0, 5], w).path(0, 5)
        assert again is first  # same immutable object, served from cache


class TestOneDijkstraOracle:
    @pytest.mark.parametrize("memoize", [True, False], ids=["memoized", "unmemoized"])
    def test_oracle_results_match_legacy(self, waxman_network, memoize):
        session = Session((0, 4, 9, 13, 27), demand=100.0, name="s")
        fast_oracle = MinimumOverlayTreeOracle(
            session, DynamicRouting(waxman_network), memoize=memoize
        )
        legacy_oracle = MinimumOverlayTreeOracle(
            session,
            DynamicRouting(waxman_network),
            memoize=memoize,
            dynamic_fastpath=False,
        )
        assert fast_oracle.dynamic_fastpath and not legacy_oracle.dynamic_fastpath
        rng = np.random.default_rng(6)
        for _ in range(8):
            w = rng.uniform(0.01, 5.0, waxman_network.num_edges)
            fast = fast_oracle.minimum_tree(w)
            legacy = legacy_oracle.minimum_tree(w)
            assert fast.tree == legacy.tree
            assert fast.length == legacy.length
            assert fast.tree.canonical_key() == legacy.tree.canonical_key()
        assert fast_oracle.call_count == legacy_oracle.call_count
        assert fast_oracle.cache_info() == legacy_oracle.cache_info()

    def test_fastpath_default_is_configurable(self):
        assert dynamic_fastpath_default()
        previous = configure_dynamic_fastpath(False)
        try:
            assert previous is True
            assert not dynamic_fastpath_default()
        finally:
            configure_dynamic_fastpath(previous)

    def test_from_query_rejects_fixed_routing(self, waxman_network):
        from repro.routing.ip_routing import FixedIPRouting
        from repro.util.errors import ConfigurationError

        oracle = build_oracles(
            [Session((0, 4), demand=1.0)], FixedIPRouting(waxman_network)
        )[0]
        with pytest.raises(ConfigurationError):
            oracle.minimum_tree_from_query(None, np.ones(waxman_network.num_edges))


@pytest.fixture(scope="module")
def dynamic_sessions():
    return [
        Session((0, 4, 9, 13), demand=100.0, name="s1"),
        Session((2, 7, 20), demand=100.0, name="s2"),
        Session((4, 20, 31, 35), demand=100.0, name="s3"),
    ]


@pytest.mark.parametrize("memoize", [True, False], ids=["memoized", "unmemoized"])
class TestDynamicSolverEquivalence:
    """Bit-identical solver outputs: fast path vs the pre-change loop."""

    def test_max_flow(
        self, waxman_network, dynamic_sessions, memoize, legacy_dynamic_pipeline
    ):
        config = MaxFlowConfig(epsilon=0.15, memoize=memoize)
        reference = MaxFlow(
            dynamic_sessions, DynamicRouting(waxman_network), config
        ).solve()
        configure_dynamic_fastpath(True)
        fast = MaxFlow(
            dynamic_sessions, DynamicRouting(waxman_network), config
        ).solve()
        assert fingerprint(fast) == fingerprint(reference)

    def test_max_concurrent_flow(
        self, waxman_network, dynamic_sessions, memoize, legacy_dynamic_pipeline
    ):
        config = MaxConcurrentFlowConfig(
            epsilon=0.25, prescale_epsilon=0.25, memoize=memoize, prescale_jobs=1
        )
        reference = MaxConcurrentFlow(
            dynamic_sessions, DynamicRouting(waxman_network), config
        ).solve()
        configure_dynamic_fastpath(True)
        fast = MaxConcurrentFlow(
            dynamic_sessions, DynamicRouting(waxman_network), config
        ).solve()
        assert fingerprint(fast) == fingerprint(reference)

    def test_online_min_congestion(
        self, waxman_network, dynamic_sessions, memoize, legacy_dynamic_pipeline
    ):
        arrivals = [
            copy
            for session in dynamic_sessions
            for copy in session.replicate(3, demand=1.0)
        ]
        config = OnlineConfig(sigma=50.0, memoize=memoize)

        def run():
            solver = OnlineMinCongestion(DynamicRouting(waxman_network), config)
            solver.accept_all(arrivals)
            return solver.solution(group_by_members=True)

        reference = run()
        configure_dynamic_fastpath(True)
        fast = run()
        assert fingerprint(fast) == fingerprint(reference)


class TestDynamicFrontEquivalence:
    def test_batched_solver_run_matches_loop_run(
        self, waxman_network, dynamic_sessions
    ):
        solutions = []
        for batch_oracle in (True, False):
            solver = MaxFlow(
                dynamic_sessions,
                DynamicRouting(waxman_network),
                MaxFlowConfig(epsilon=0.15, batch_oracle=batch_oracle),
            )
            solutions.append(solver.solve())
        batched, looped = solutions
        assert fingerprint(batched) == fingerprint(looped)
        assert batched.instrumentation["batched_rounds"] > 0
        assert looped.instrumentation["batched_rounds"] == 0
        assert looped.instrumentation["per_session_rounds"] > 0

    def test_union_round_matches_per_oracle_calls(
        self, waxman_network, dynamic_sessions
    ):
        routing = DynamicRouting(waxman_network)
        oracles = build_oracles(dynamic_sessions, routing)
        front = BatchedOracleFront(oracles)
        assert front.mode == "dynamic"
        rng = np.random.default_rng(8)
        direct_oracles = build_oracles(dynamic_sessions, DynamicRouting(waxman_network))
        for _ in range(4):
            w = rng.uniform(0.01, 5.0, waxman_network.num_edges)
            results = front.query(range(len(oracles)), w)
            for (_, result), direct_oracle in zip(results, direct_oracles):
                direct = direct_oracle.minimum_tree(w)
                assert result.tree == direct.tree
                assert result.length == direct.length
