"""Tests for the MaxConcurrentFlow FPTAS (paper Table III)."""

import numpy as np
import pytest

from repro.core.maxconcurrent import (
    MaxConcurrentFlow,
    MaxConcurrentFlowConfig,
    solve_max_concurrent_flow,
)
from repro.lp.exact import exact_max_concurrent_flow
from repro.overlay.session import Session
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.generators import complete_topology
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError


class TestConfig:
    def test_requires_exactly_one_parameter(self):
        with pytest.raises(ConfigurationError):
            MaxConcurrentFlowConfig().resolved_epsilon()
        with pytest.raises(ConfigurationError):
            MaxConcurrentFlowConfig(epsilon=0.1, approximation_ratio=0.9).resolved_epsilon()

    def test_ratio_to_epsilon(self):
        config = MaxConcurrentFlowConfig(approximation_ratio=0.91)
        assert config.resolved_epsilon() == pytest.approx(0.03)

    def test_epsilon_bounds(self):
        with pytest.raises(ConfigurationError):
            MaxConcurrentFlowConfig(epsilon=0.5).resolved_epsilon()


class TestSingleLink:
    def test_shared_link_split_fairly(self):
        net = PhysicalNetwork(2, [(0, 1, 10.0)])
        sessions = [
            Session((0, 1), demand=1.0, name="a"),
            Session((0, 1), demand=1.0, name="b"),
        ]
        solution = solve_max_concurrent_flow(sessions, FixedIPRouting(net), epsilon=0.05)
        assert solution.is_feasible()
        rates = solution.session_rates
        # Equal demands on a shared link: rates within a few percent of each other.
        assert rates.min() >= 0.85 * rates.max()
        assert rates.sum() <= 10.0 + 1e-6
        assert solution.concurrent_throughput >= (1 - 3 * 0.05) * 5.0 - 1e-6

    def test_metadata(self):
        net = PhysicalNetwork(2, [(0, 1, 10.0)])
        solution = solve_max_concurrent_flow(
            [Session((0, 1), demand=1.0)], FixedIPRouting(net), epsilon=0.1
        )
        assert solution.algorithm == "MaxConcurrentFlow"
        assert solution.extra["phases"] >= 1
        assert solution.extra["prescale_oracle_calls"] > 0
        assert solution.oracle_calls >= solution.extra["main_oracle_calls"]


class TestAgainstExactLP:
    def test_single_session_close_to_optimum(self):
        net = complete_topology(4, capacity=8.0)
        sessions = [Session((0, 1, 2, 3), demand=4.0)]
        routing = FixedIPRouting(net)
        exact = exact_max_concurrent_flow(sessions, routing)
        approx = solve_max_concurrent_flow(sessions, routing, epsilon=0.05)
        assert approx.is_feasible()
        assert approx.concurrent_throughput <= exact.objective + 1e-6
        assert approx.concurrent_throughput >= (1 - 3 * 0.05) * exact.objective - 1e-4

    def test_two_sessions_close_to_optimum(self, waxman_network):
        routing = FixedIPRouting(waxman_network)
        sessions = [
            Session((0, 4, 9, 13), demand=100.0, name="s1"),
            Session((2, 7, 20), demand=100.0, name="s2"),
        ]
        exact = exact_max_concurrent_flow(sessions, routing)
        approx = MaxConcurrentFlow(
            sessions, routing, MaxConcurrentFlowConfig(epsilon=0.05)
        ).solve()
        assert approx.is_feasible()
        assert approx.concurrent_throughput <= exact.objective + 1e-6
        assert approx.concurrent_throughput >= (1 - 3 * 0.05) * exact.objective - 1e-4

    def test_weighted_fairness_follows_demands(self):
        # Demands 1 and 3 on a shared link: routed rates stay close to the
        # 1:3 ratio enforced by the phase structure.
        net = PhysicalNetwork(2, [(0, 1, 12.0)])
        sessions = [
            Session((0, 1), demand=1.0, name="light"),
            Session((0, 1), demand=3.0, name="heavy"),
        ]
        solution = solve_max_concurrent_flow(sessions, FixedIPRouting(net), epsilon=0.05)
        ratio = solution.sessions[1].rate / solution.sessions[0].rate
        assert ratio == pytest.approx(3.0, rel=0.15)


class TestBehaviourVersusMaxFlow:
    def test_raises_minimum_rate(self, waxman_network):
        from repro.core.maxflow import solve_max_flow as maxflow

        routing = FixedIPRouting(waxman_network)
        sessions = [
            Session((0, 4, 9, 13, 17, 25), demand=100.0, name="big"),
            Session((2, 7, 20), demand=100.0, name="small"),
        ]
        throughput_solution = maxflow(sessions, routing, epsilon=0.1)
        fair_solution = solve_max_concurrent_flow(sessions, routing, epsilon=0.1)
        # Fairness lifts the weakest session (or keeps it, within FPTAS noise)...
        assert fair_solution.min_rate >= throughput_solution.min_rate * 0.9
        # ...at the price of overall throughput.
        assert (
            fair_solution.overall_throughput
            <= throughput_solution.overall_throughput * 1.05
        )

    def test_no_sessions_rejected(self, waxman_network):
        with pytest.raises(ConfigurationError):
            MaxConcurrentFlow([], FixedIPRouting(waxman_network))


class TestParallelPrescaling:
    """The pre-scaling MaxFlow runs may fan out to a process pool."""

    def test_parallel_prescale_bit_identical(self, waxman_network):
        routing = FixedIPRouting(waxman_network)
        sessions = [
            Session((0, 4, 9, 13), demand=100.0, name="s1"),
            Session((2, 7, 20), demand=100.0, name="s2"),
            Session((5, 11, 31, 36), demand=100.0, name="s3"),
        ]
        serial = MaxConcurrentFlow(
            sessions,
            routing,
            MaxConcurrentFlowConfig(epsilon=0.1, prescale_jobs=1),
        ).solve()
        parallel = MaxConcurrentFlow(
            sessions,
            routing,
            MaxConcurrentFlowConfig(epsilon=0.1, prescale_jobs=2),
        ).solve()
        # Bit-identical: same beta bound, same oracle accounting, same flows.
        assert parallel.extra["zeta_upper_bound"] == serial.extra["zeta_upper_bound"]
        assert parallel.extra["prescale_oracle_calls"] == serial.extra["prescale_oracle_calls"]
        assert parallel.summary() == serial.summary()
        for p_session, s_session in zip(parallel.sessions, serial.sessions):
            assert [
                (tf.tree.canonical_key(), tf.flow) for tf in p_session.tree_flows
            ] == [(tf.tree.canonical_key(), tf.flow) for tf in s_session.tree_flows]

    def test_prescale_jobs_env_plumbing(self, waxman_network, monkeypatch):
        from repro.util.jobs import JOBS_ENV_VAR

        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        routing = FixedIPRouting(waxman_network)
        sessions = [
            Session((0, 4, 9), demand=100.0, name="s1"),
            Session((2, 7, 20), demand=100.0, name="s2"),
        ]
        # prescale_jobs=None falls back to REPRO_JOBS; results unchanged.
        pooled = MaxConcurrentFlow(
            sessions, routing, MaxConcurrentFlowConfig(epsilon=0.15)
        ).solve()
        monkeypatch.delenv(JOBS_ENV_VAR)
        serial = MaxConcurrentFlow(
            sessions, routing, MaxConcurrentFlowConfig(epsilon=0.15)
        ).solve()
        assert pooled.summary() == serial.summary()
