"""Tests for hierarchical trace spans (``repro.obs.tracing``).

The load-bearing invariants: span counts match the engine's own
instrumentation exactly (one ``engine.step`` span per step, one
``oracle_round`` span per non-prefetched query round), child spans nest
inside their parents' intervals, tracing never changes solver outputs,
and multi-process traces merge into distinct Perfetto lanes.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api.service import solve, solve_many
from repro.api.specs import ArrivalSpec, ScenarioSpec, TopologySpec, WorkloadSpec
from repro.obs import __main__ as obs_cli
from repro.obs.tracing import (
    NULL_SPAN,
    Tracer,
    current_tracer,
    load_trace,
    maybe_span,
    merge_traces,
    summarize_trace,
    trace_to,
)


def small_spec(seed: int = 5, **overrides) -> ScenarioSpec:
    fields = dict(
        topology=TopologySpec(
            generator="paper_flat", params={"num_nodes": 12, "capacity": 100.0}, seed=3
        ),
        workload=WorkloadSpec(sizes=(3,), demand=10.0, seed=seed),
        routing="ip",
        solver="max_flow",
        solver_params={"approximation_ratio": 0.7},
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def spans_named(events, name):
    return [e for e in events if e.get("ph") == "X" and e["name"] == name]


def contains(outer, inner) -> bool:
    """Whether ``inner``'s interval sits inside ``outer``'s."""
    return (
        outer["ts"] <= inner["ts"]
        and inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
    )


# ----------------------------------------------------------------------
# activation mechanics
# ----------------------------------------------------------------------
def test_maybe_span_is_null_when_inactive():
    assert current_tracer() is None
    assert maybe_span("anything") is NULL_SPAN
    with maybe_span("anything") as span:
        span.set(key="value")  # no-op, no error


def test_activation_is_scoped_and_restores_prior():
    outer, inner = Tracer(), Tracer()
    with outer.activate():
        assert current_tracer() is outer
        with inner.activate():
            assert current_tracer() is inner
            with maybe_span("x"):
                pass
        assert current_tracer() is outer
    assert current_tracer() is None
    assert len(inner.events) == 1
    assert len(outer.events) == 0


def test_activation_is_thread_local():
    tracer = Tracer()
    seen_in_thread = []

    def probe():
        seen_in_thread.append(current_tracer())

    with tracer.activate():
        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
    assert seen_in_thread == [None]


def test_span_records_complete_event_with_args():
    tracer = Tracer()
    with tracer.activate():
        with maybe_span("work", step=3) as span:
            span.set(outcome="done")
    (event,) = tracer.events
    assert event["ph"] == "X"
    assert event["name"] == "work"
    assert event["dur"] >= 0
    assert event["args"] == {"step": 3, "outcome": "done"}
    assert event["pid"] > 0 and event["tid"] > 0


# ----------------------------------------------------------------------
# the solve round trip
# ----------------------------------------------------------------------
def test_trace_round_trip_span_counts_match_instrumentation(tmp_path):
    """Spans are exact: one per step, one per non-prefetched oracle round."""
    path = tmp_path / "solve.trace.json"
    report = solve(small_spec(seed=11), trace=path)
    instr = report.solution.instrumentation

    payload = load_trace(path)
    events = payload["traceEvents"]
    assert payload["displayTimeUnit"] == "ms"

    steps = spans_named(events, "engine.step")
    rounds = spans_named(events, "oracle_round")
    solves = spans_named(events, "solve")
    assert len(solves) == 1
    assert len(spans_named(events, "build_instance")) == 1
    assert len(spans_named(events, "solve_instance")) == 1
    assert len(steps) == instr["steps"]
    assert len(rounds) == instr["batched_rounds"] + instr["per_session_rounds"]

    # Nesting: every engine.step sits inside the solve span, and every
    # oracle_round inside some engine.step.
    solve_span = solves[0]
    assert all(contains(solve_span, s) for s in steps)
    for oracle_span in rounds:
        assert any(contains(step, oracle_span) for step in steps)
    assert solve_span["args"]["outcome"] == "cold"


def test_trace_with_live_tracer_accumulates_across_solves():
    tracer = Tracer()
    solve(small_spec(seed=12), trace=tracer)
    solve(small_spec(seed=13), trace=tracer)
    assert len(spans_named(tracer.events, "solve")) == 2


def test_store_hit_span_has_store_outcome(tmp_path):
    from repro.store.report_store import ReportStore

    store = ReportStore(tmp_path / "store")
    spec = small_spec(seed=14)
    solve(spec, store=store)
    tracer = Tracer()
    solve(spec, store=store, trace=tracer)
    (solve_span,) = spans_named(tracer.events, "solve")
    assert solve_span["args"]["outcome"] == "store"
    # A store hit performs no engine work, so no step spans.
    assert not spans_named(tracer.events, "engine.step")


def test_tracing_does_not_change_solver_outputs():
    plain = solve(small_spec(seed=15))
    traced = solve(small_spec(seed=15), trace=Tracer())

    def strip(report):
        # instrumentation carries wall-clock oracle timings — per-run,
        # like wall_seconds — so compare it without the *_seconds keys.
        payload = {
            k: v for k, v in report.to_jsonable().items() if k != "wall_seconds"
        }
        payload["instrumentation"] = {
            k: v
            for k, v in payload["instrumentation"].items()
            if not k.endswith("_seconds")
        }
        return payload

    assert strip(plain) == strip(traced)


def test_online_solve_traces_per_session_rounds(tmp_path):
    path = tmp_path / "online.trace.json"
    spec = small_spec(
        seed=16,
        workload=WorkloadSpec(sizes=(3, 2), demand=10.0, seed=5),
        solver="online",
        solver_params={"sigma": 10.0},
        arrivals=ArrivalSpec(replication=2, seed=11, demand=1.0),
    )
    report = solve(spec, trace=path)
    instr = report.solution.instrumentation
    events = load_trace(path)["traceEvents"]
    assert len(spans_named(events, "engine.step")) == instr["steps"]
    assert len(spans_named(events, "oracle_round")) == (
        instr["batched_rounds"] + instr["per_session_rounds"]
    )


def test_solve_many_serial_path_emits_solve_spans():
    tracer = Tracer()
    with tracer.activate():
        solve_many([small_spec(seed=17), small_spec(seed=18)], jobs=1, use_cache=False)
    assert len(spans_named(tracer.events, "solve")) == 2


# ----------------------------------------------------------------------
# trace_to / save / load
# ----------------------------------------------------------------------
def test_trace_to_writes_on_exit(tmp_path):
    path = tmp_path / "nested" / "out.trace.json"
    with trace_to(path, process_name="unit-test"):
        with maybe_span("inside"):
            pass
    payload = load_trace(path)
    metas = [e for e in payload["traceEvents"] if e.get("ph") == "M"]
    assert metas and metas[0]["args"]["name"] == "unit-test"
    assert len(spans_named(payload["traceEvents"], "inside")) == 1


def test_load_trace_accepts_bare_list(tmp_path):
    path = tmp_path / "bare.json"
    path.write_text(json.dumps([{"name": "x", "ph": "X", "ts": 0, "dur": 1}]))
    payload = load_trace(path)
    assert len(payload["traceEvents"]) == 1


def test_load_trace_rejects_non_trace(tmp_path):
    path = tmp_path / "not.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ValueError):
        load_trace(path)


# ----------------------------------------------------------------------
# merge + summary
# ----------------------------------------------------------------------
def _write_trace(path, pid, names):
    tracer = Tracer(pid=pid)
    with tracer.activate():
        for name in names:
            with tracer.span(name):
                pass
    tracer.save(path)


def test_merge_traces_rehomes_colliding_pids(tmp_path):
    a, b = tmp_path / "a.trace.json", tmp_path / "b.trace.json"
    _write_trace(a, pid=42, names=["alpha"])
    _write_trace(b, pid=42, names=["beta"])  # same pid: recycled across hosts
    merged = merge_traces([str(a), str(b)])
    spans = [e for e in merged["traceEvents"] if e.get("ph") == "X"]
    pids = {e["pid"] for e in spans}
    assert len(pids) == 2  # the collision was re-homed
    labels = {
        e["pid"]: e["args"]["name"]
        for e in merged["traceEvents"]
        if e.get("ph") == "M"
    }
    assert set(labels.values()) == {"a.trace.json", "b.trace.json"}
    assert set(labels) == pids


def test_merge_traces_keeps_distinct_pids(tmp_path):
    a, b = tmp_path / "a.trace.json", tmp_path / "b.trace.json"
    _write_trace(a, pid=100, names=["alpha"])
    _write_trace(b, pid=200, names=["beta"])
    merged = merge_traces([str(a), str(b)])
    spans = [e for e in merged["traceEvents"] if e.get("ph") == "X"]
    assert {e["pid"] for e in spans} == {100, 200}


def test_summarize_trace_aggregates_by_name():
    payload = {
        "traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 1000.0},
            {"name": "a", "ph": "X", "ts": 0, "dur": 3000.0},
            {"name": "b", "ph": "X", "ts": 0, "dur": 500.0},
            {"name": "meta", "ph": "M"},
        ]
    }
    rows = summarize_trace(payload)
    assert [r["span"] for r in rows] == ["a", "b"]
    assert rows[0]["count"] == 2
    assert rows[0]["total_ms"] == pytest.approx(4.0)
    assert rows[0]["mean_ms"] == pytest.approx(2.0)
    assert rows[0]["max_ms"] == pytest.approx(3.0)


# ----------------------------------------------------------------------
# the CLI (python -m repro.obs)
# ----------------------------------------------------------------------
def test_cli_merge_and_summary(tmp_path, capsys):
    a, b = tmp_path / "a.trace.json", tmp_path / "b.trace.json"
    _write_trace(a, pid=1, names=["alpha", "alpha"])
    _write_trace(b, pid=2, names=["beta"])
    out = tmp_path / "merged.trace.json"
    assert obs_cli.main(["merge", str(out), str(a), str(b)]) == 0
    assert "3 spans" in capsys.readouterr().out
    assert obs_cli.main(["summary", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "alpha" in printed and "beta" in printed


def test_cli_dump_renders_registry(capsys):
    from repro.obs.metrics import configure_metrics

    reg = configure_metrics(True)
    try:
        reg.counter("cli_dump_total").inc(5)
        assert obs_cli.main(["dump"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["cli_dump_total"]["samples"][0]["value"] == 5
        assert obs_cli.main(["dump", "--format", "prom"]) == 0
        assert "cli_dump_total 5" in capsys.readouterr().out
    finally:
        configure_metrics(None)


# ----------------------------------------------------------------------
# worker trace files (cluster --trace-dir)
# ----------------------------------------------------------------------
def test_worker_writes_one_trace_per_task(tmp_path):
    from repro.cluster.queue import WorkQueue
    from repro.cluster.worker import run_worker

    specs = [small_spec(seed=31), small_spec(seed=32)]
    queue = WorkQueue(tmp_path / "queue")
    queue.submit(specs)
    trace_dir = tmp_path / "traces"
    stats = run_worker(
        queue,
        tmp_path / "store",
        exit_when_empty=True,
        trace_dir=trace_dir,
    )
    assert stats["completed"] == 2
    files = sorted(trace_dir.glob("*.trace.json"))
    assert len(files) == 2
    for spec in specs:
        payload = load_trace(trace_dir / f"{spec.canonical_key}.trace.json")
        assert spans_named(payload["traceEvents"], "solve")
