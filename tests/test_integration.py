"""End-to-end integration tests across the whole pipeline.

These tests exercise the exact scenario of the paper at small scale:
generate a topology, place competing sessions, run every algorithm, and
check the cross-algorithm relationships the paper reports (feasibility,
fairness versus throughput, the limited-tree approximation quality, and
the negligible impact of IP routing).
"""

import numpy as np
import pytest

from repro import (
    DynamicRouting,
    FixedIPRouting,
    RandomMinCongestion,
    Session,
    paper_flat_topology,
    solve_max_concurrent_flow,
    solve_max_flow,
    solve_online,
    standalone_session_rates,
)
from repro.lp.exact import exact_max_concurrent_flow, exact_max_flow
from repro.metrics.fairness import jains_index


@pytest.fixture(scope="module")
def scenario():
    network = paper_flat_topology(num_nodes=36, seed=13)
    routing = FixedIPRouting(network)
    sessions = [
        Session((0, 5, 11, 17), demand=100.0, name="session-1"),
        Session((2, 8, 23), demand=100.0, name="session-2"),
    ]
    return network, routing, sessions


@pytest.fixture(scope="module")
def maxflow_solution(scenario):
    _, routing, sessions = scenario
    return solve_max_flow(sessions, routing, epsilon=0.05)


@pytest.fixture(scope="module")
def concurrent_solution(scenario):
    _, routing, sessions = scenario
    return solve_max_concurrent_flow(sessions, routing, epsilon=0.05)


class TestPipelineAgainstExactOptima:
    def test_maxflow_within_guarantee(self, scenario, maxflow_solution):
        _, routing, sessions = scenario
        exact = exact_max_flow(sessions, routing)
        max_size = max(s.size for s in sessions)
        objective = sum(
            (s.session.size - 1) / (max_size - 1) * s.rate
            for s in maxflow_solution.sessions
        )
        assert maxflow_solution.is_feasible()
        assert objective <= exact.objective + 1e-6
        assert objective >= 0.9 * exact.objective - 1e-6

    def test_concurrent_within_guarantee(self, scenario, concurrent_solution):
        _, routing, sessions = scenario
        exact = exact_max_concurrent_flow(sessions, routing)
        assert concurrent_solution.is_feasible()
        assert concurrent_solution.concurrent_throughput <= exact.objective + 1e-6
        assert concurrent_solution.concurrent_throughput >= 0.85 * exact.objective - 1e-6

    def test_standalone_rates_upper_bound_concurrent(self, scenario, concurrent_solution):
        _, routing, sessions = scenario
        standalone = standalone_session_rates(sessions, routing, epsilon=0.1)
        for session_result, alone in zip(concurrent_solution.sessions, standalone):
            assert session_result.rate <= alone * 1.1 + 1e-6


class TestPaperFindings:
    def test_fairness_versus_throughput(self, maxflow_solution, concurrent_solution):
        # Finding 2 of the paper: enforcing max-min fairness costs little
        # overall throughput (ratio stays above 80%).
        ratio = (
            concurrent_solution.overall_throughput
            / maxflow_solution.overall_throughput
        )
        assert ratio >= 0.8
        assert ratio <= 1.05
        # And fairness improves (or at least does not degrade) Jain's index.
        assert jains_index(concurrent_solution.session_rates) >= jains_index(
            maxflow_solution.session_rates
        ) - 1e-6

    def test_limited_trees_approach_optimum(self, concurrent_solution):
        # Finding 3: a limited number of trees captures most of the optimal
        # capacity utilisation.
        rounding = RandomMinCongestion(concurrent_solution, seed=5)
        few = rounding.average_over_trials(1, trials=20, seed=1)["mean_throughput"]
        many = rounding.average_over_trials(12, trials=20, seed=2)["mean_throughput"]
        assert many >= few
        assert many >= 0.5 * concurrent_solution.overall_throughput

    def test_arbitrary_routing_never_hurts(self, scenario, maxflow_solution):
        # Section V: removing the fixed-IP-routing restriction can only help
        # (up to FPTAS noise).  The *magnitude* of the gain is topology
        # dependent — the paper's 100-node instance shows <1%, while small
        # sparse instances can gain substantially — so we only assert the
        # direction and feasibility here; EXPERIMENTS.md records the
        # measured magnitudes.
        network, _, sessions = scenario
        dynamic = solve_max_flow(sessions, DynamicRouting(network), epsilon=0.05)
        assert dynamic.is_feasible()
        assert dynamic.overall_throughput >= 0.9 * maxflow_solution.overall_throughput

    def test_online_algorithm_viable(self, scenario, maxflow_solution):
        network, routing, sessions = scenario
        arrivals = [copy for s in sessions for copy in s.replicate(10, demand=1.0)]
        rng = np.random.default_rng(3)
        order = rng.permutation(len(arrivals))
        online = solve_online([arrivals[i] for i in order], routing, sigma=50.0)
        assert online.is_feasible(tolerance=1e-6)
        # The online solution reaches a meaningful fraction of the offline
        # optimum even with a single tree per arrival.
        assert online.overall_throughput >= 0.3 * maxflow_solution.overall_throughput
