"""Tests for the sharded work-queue execution layer (``repro.cluster``).

The headline contract (an acceptance criterion of the subsystem): a
2-worker cooperative drain of a sharded batch produces reports
bit-identical to a serial ``solve_many`` over the same specs.  Around
it, unit coverage for deterministic sharding, the claim/lease/complete
lifecycle, crash-safe requeue of expired leases, and the asyncio
``solve_many_async`` front end (streaming order, duplicate keys,
timeout without workers).
"""

import asyncio
import json
import time

import pytest

from repro import api
from repro.api import ScenarioSpec, SessionSpec, TopologySpec, WorkloadSpec
from repro.cluster import (
    WorkQueue,
    as_reports_completed,
    partition_specs,
    run_worker,
    shard_of,
    solve_many_async,
    spawn_local_workers,
)
from repro.store import ReportStore
from repro.util.errors import ConfigurationError


def _spec(rows: int) -> ScenarioSpec:
    return ScenarioSpec(
        topology=TopologySpec("grid", {"rows": rows, "cols": 3, "capacity": 10.0}),
        workload=WorkloadSpec(
            sessions=(SessionSpec((0, 4, 8), demand=5.0, name="diag"),)
        ),
        solver="max_flow",
        solver_params={"approximation_ratio": 0.8},
    )


def _flows(solution):
    return [
        (
            s.session.name,
            sorted((tf.tree.canonical_key(), tf.flow) for tf in s.tree_flows),
        )
        for s in solution.sessions
    ]


@pytest.fixture(autouse=True)
def fresh_caches():
    api.clear_caches()
    yield
    api.clear_caches()


class TestSharding:
    def test_shard_of_is_deterministic_and_in_range(self):
        keys = [_spec(rows).canonical_key for rows in (3, 4, 5, 6)]
        for num_shards in (1, 2, 3, 7):
            shards = [shard_of(key, num_shards) for key in keys]
            assert shards == [shard_of(key, num_shards) for key in keys]
            assert all(0 <= s < num_shards for s in shards)

    def test_partition_covers_every_spec_once(self):
        specs = [_spec(rows) for rows in (3, 4, 5, 6)]
        shards = partition_specs(specs, 3)
        assert set(shards) == {0, 1, 2}
        flattened = [spec for bucket in shards.values() for spec in bucket]
        assert sorted(s.canonical_key for s in flattened) == sorted(
            s.canonical_key for s in specs
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_of("abc123", 0)
        with pytest.raises(ConfigurationError):
            shard_of("not-hex!", 4)


class TestWorkQueue:
    def test_submit_is_idempotent_and_deduplicates(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        spec = _spec(3)
        queue.submit([spec, spec])
        queue.submit([spec])
        assert queue.counts() == {"pending": 1, "claimed": 0, "done": 0, "failed": 0}

    def test_claim_complete_lifecycle(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        spec = _spec(3)
        queue.submit([spec], num_shards=2)
        task = queue.claim("worker-a")
        assert task is not None
        assert task.key == spec.canonical_key
        assert task.spec == spec
        assert task.shard == shard_of(spec.canonical_key, 2)
        assert queue.counts() == {"pending": 0, "claimed": 1, "done": 0, "failed": 0}
        assert queue.claim("worker-b") is None  # nothing left to claim
        queue.complete(task)
        assert queue.counts() == {"pending": 0, "claimed": 0, "done": 1, "failed": 0}
        assert queue.done_keys() == [spec.canonical_key]
        assert queue.is_drained()
        queue.complete(task)  # idempotent

    def test_shard_pinned_claim_filters(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        specs = [_spec(rows) for rows in (3, 4, 5, 6)]
        queue.submit(specs, num_shards=2)
        my_shard = shard_of(specs[0].canonical_key, 2)
        task = queue.claim("worker-a", shard=my_shard)
        assert task is not None and task.shard == my_shard
        # A worker pinned elsewhere never claims this shard's tasks.
        other = [s for s in specs if shard_of(s.canonical_key, 2) != my_shard]
        for _ in other:
            claimed = queue.claim("worker-b", shard=1 - my_shard)
            assert claimed is not None and claimed.shard == 1 - my_shard
        assert queue.claim("worker-b", shard=1 - my_shard) is None

    def test_release_returns_task_to_pending(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit([_spec(3)])
        task = queue.claim("worker-a")
        queue.release(task)
        assert queue.counts() == {"pending": 1, "claimed": 0, "done": 0, "failed": 0}
        assert queue.claim("worker-b") is not None

    def test_expired_lease_is_requeued(self, tmp_path):
        # Crash safety: a worker that claims and dies must not strand
        # the task — once the lease lapses any worker can requeue it.
        queue = WorkQueue(tmp_path / "q", lease_seconds=0.05)
        queue.submit([_spec(3)])
        task = queue.claim("doomed-worker")
        assert task is not None
        assert queue.requeue_expired() == 0  # lease still live
        time.sleep(0.1)
        assert queue.requeue_expired() == 1
        assert queue.counts() == {"pending": 1, "claimed": 0, "done": 0, "failed": 0}
        rescued = queue.claim("rescuer")
        assert rescued is not None and rescued.key == task.key
        # The late original completion is harmless (idempotent).
        queue.complete(task)
        queue.complete(rescued)
        assert queue.counts()["done"] == 1

    def test_stale_worker_cannot_fail_a_reclaimed_task(self, tmp_path):
        # Regression: after a lease expires and a successor re-claims
        # the same task name, the original worker's late fail()/
        # complete()/release() must be a no-op — dead-lettering the
        # successor's live claim would strand good work.
        queue = WorkQueue(tmp_path / "q", lease_seconds=0.05)
        queue.submit([_spec(3)])
        stale = queue.claim("worker-a")
        time.sleep(0.1)
        queue.requeue_expired()
        fresh = queue.claim("worker-b")
        assert fresh is not None
        queue.fail(stale, "late transient error")  # must not dead-letter
        assert queue.counts()["failed"] == 0
        queue.release(stale)  # must not move the successor's claim
        assert queue.counts()["claimed"] == 1
        queue.complete(stale)  # must not drop the successor's lease
        assert queue._read_lease(fresh.name) is not None
        queue.complete(fresh)
        assert queue.counts()["done"] == 1

    def test_missing_lease_uses_claim_age_grace(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_seconds=0.05)
        queue.submit([_spec(3)])
        task = queue.claim("worker-a")
        queue._lease_path(task.name).unlink()  # worker died pre-lease-write
        assert queue.requeue_expired() == 0  # claim file still fresh
        time.sleep(0.1)
        assert queue.requeue_expired() == 1

    def test_submit_dedupes_across_shard_counts(self, tmp_path):
        # Regression: re-submitting the same key under a different
        # num_shards must not enqueue a second task for it.
        queue = WorkQueue(tmp_path / "q")
        spec = _spec(3)
        queue.submit([spec], num_shards=1)
        queue.submit([spec], num_shards=2)
        assert queue.counts()["pending"] == 1

    def test_resubmit_reshards_stale_pending_tasks(self, tmp_path):
        # Regression: a pending task submitted under an old num_shards
        # must become claimable by workers pinned to the new layout —
        # otherwise a pinned drain over a reused queue deadlocks.
        queue = WorkQueue(tmp_path / "q")
        spec = _spec(3)
        queue.submit([spec], num_shards=4)
        queue.submit([spec], num_shards=2)
        new_shard = shard_of(spec.canonical_key, 2)
        task = queue.claim("worker-a", shard=new_shard)
        assert task is not None
        assert task.key == spec.canonical_key
        assert task.shard == new_shard  # filename, not payload, wins

    def test_reopen_done_task(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        spec = _spec(3)
        queue.submit([spec])
        task = queue.claim("worker-a")
        queue.complete(task)
        assert queue.reopen(spec.canonical_key) is True
        assert queue.counts() == {"pending": 1, "claimed": 0, "done": 0, "failed": 0}
        assert queue.reopen("0" * 64) is False

    def test_invalid_lease_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WorkQueue(tmp_path / "q", lease_seconds=0.0)


class TestWorker:
    def test_in_process_worker_drains_queue_into_store(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        store = ReportStore(tmp_path / "store")
        specs = [_spec(rows) for rows in (3, 4)]
        queue.submit(specs)
        stats = run_worker(queue, store, exit_when_empty=True, poll_seconds=0.01)
        assert stats == {"completed": 2, "solved": 2, "store_hits": 0, "failed": 0}
        assert queue.is_drained()
        for spec in specs:
            assert store.get(spec.canonical_key) is not None

    def test_worker_serves_warm_keys_from_store(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        store = ReportStore(tmp_path / "store")
        spec = _spec(3)
        store.put(api.solve(spec))
        queue.submit([spec])
        stats = run_worker(queue, store, exit_when_empty=True, poll_seconds=0.01)
        assert stats == {"completed": 1, "solved": 0, "store_hits": 1, "failed": 0}

    def test_failing_spec_is_dead_lettered_not_fatal(self, tmp_path):
        # One bad spec (unregistered solver) must not kill the worker or
        # leave the queue undrainable: it parks in failed/ with its
        # error recorded, and the good spec still completes.
        queue = WorkQueue(tmp_path / "q")
        store = ReportStore(tmp_path / "store")
        bad = ScenarioSpec(
            topology=TopologySpec("grid", {"rows": 3, "cols": 3, "capacity": 10.0}),
            workload=WorkloadSpec(sessions=(SessionSpec((0, 4), demand=1.0),)),
            solver="definitely_not_registered",
        )
        good = _spec(3)
        queue.submit([bad, good])
        stats = run_worker(queue, store, exit_when_empty=True, poll_seconds=0.01)
        assert stats["failed"] == 1
        assert stats["completed"] == 1
        assert queue.is_drained()
        assert queue.counts()["failed"] == 1
        failures = queue.failures()
        assert list(failures) == [bad.canonical_key]
        assert "definitely_not_registered" in failures[bad.canonical_key]
        assert store.get(good.canonical_key) is not None

    def test_retry_failed_requeues_dead_letters(self, tmp_path):
        # After fixing a transient cause, failed tasks must be
        # recoverable through the queue API (submit dedupes against
        # failed/, so nothing else would ever retry them).
        queue = WorkQueue(tmp_path / "q")
        spec = _spec(3)
        queue.submit([spec])
        task = queue.claim("worker-a")
        queue.fail(task, "disk full")
        assert queue.counts()["failed"] == 1
        assert queue.retry_failed() == 1
        assert queue.counts() == {
            "pending": 1,
            "claimed": 0,
            "done": 0,
            "failed": 0,
        }
        assert queue.failures() == {}  # error sidecar cleaned up
        assert queue.retry_failed(key="0" * 64) == 0
        store = ReportStore(tmp_path / "store")
        stats = run_worker(queue, store, exit_when_empty=True, poll_seconds=0.01)
        assert stats["completed"] == 1

    def test_gather_surfaces_worker_failure(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        store = ReportStore(tmp_path / "store")
        bad = ScenarioSpec(
            topology=TopologySpec("grid", {"rows": 3, "cols": 3, "capacity": 10.0}),
            workload=WorkloadSpec(sessions=(SessionSpec((0, 4), demand=1.0),)),
            solver="definitely_not_registered",
        )

        async def with_worker():
            gather = asyncio.create_task(
                solve_many_async([bad], queue, store, poll_seconds=0.01, timeout=60)
            )
            await asyncio.sleep(0.05)
            await asyncio.to_thread(
                run_worker, queue, store, exit_when_empty=True, poll_seconds=0.01
            )
            return await gather

        with pytest.raises(RuntimeError, match="failed in the worker pool"):
            asyncio.run(with_worker())


class TestTwoWorkerDrain:
    def test_two_worker_drain_bit_identical_to_serial(self, tmp_path):
        # The subsystem's acceptance criterion, end to end: six specs,
        # two shards, two subprocess workers pinned one per shard; the
        # gathered reports must match serial solve_many bit-for-bit.
        specs = [_spec(rows) for rows in (3, 4, 5, 6, 7, 8)]
        serial = api.solve_many(specs, jobs=1)

        queue_root = tmp_path / "q"
        store_root = tmp_path / "store"
        # Submit before spawning: batch-mode workers exit on a drained
        # queue, so an empty first look would race them out early.
        WorkQueue(queue_root).submit(specs, num_shards=2)
        with spawn_local_workers(
            2, queue_root, store_root, pin_shards=True, poll_seconds=0.02
        ):
            reports = asyncio.run(
                solve_many_async(
                    specs,
                    WorkQueue(queue_root),
                    store_root,
                    num_shards=2,
                    timeout=300,
                    submit=False,
                )
            )
        assert len(reports) == len(specs)
        assert [r.canonical_key for r in reports] == [
            s.canonical_key for s in specs
        ]
        assert [_flows(r.solution) for r in reports] == [
            _flows(r.solution) for r in serial
        ]
        assert [r.oracle_calls for r in reports] == [
            r.oracle_calls for r in serial
        ]
        assert [r.summary() for r in reports] == [r.summary() for r in serial]
        assert WorkQueue(queue_root).counts() == {
            "pending": 0,
            "claimed": 0,
            "done": len(specs),
            "failed": 0,
        }


class TestAsyncFrontEnd:
    def test_streaming_yields_every_input_position(self, tmp_path):
        # Duplicate keys queue once but every input index is yielded.
        queue = WorkQueue(tmp_path / "q")
        store = ReportStore(tmp_path / "store")
        spec = _spec(3)
        specs = [spec, _spec(4), spec]

        async def drive():
            stream = as_reports_completed(
                specs, queue, store, poll_seconds=0.01, timeout=120
            )
            seen = []
            worker_ran = False
            async for index, report in stream:
                seen.append((index, report.canonical_key))
                if not worker_ran:
                    worker_ran = True
            return seen

        async def with_worker():
            gather = asyncio.create_task(drive())
            await asyncio.sleep(0.05)  # let submission land
            await asyncio.to_thread(
                run_worker, queue, store, exit_when_empty=True, poll_seconds=0.01
            )
            return await gather

        seen = asyncio.run(with_worker())
        assert sorted(index for index, _ in seen) == [0, 1, 2]
        by_index = dict(seen)
        assert by_index[0] == by_index[2] == spec.canonical_key
        assert queue.counts()["done"] == 2  # deduplicated to two tasks

    def test_timeout_without_workers(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        store = ReportStore(tmp_path / "store")
        with pytest.raises(TimeoutError):
            asyncio.run(
                solve_many_async(
                    [_spec(3)], queue, store, poll_seconds=0.01, timeout=0.1
                )
            )

    def test_done_task_with_pruned_store_recovers_inline(self, tmp_path):
        # Regression: a done marker whose report vanished from the store
        # (pruned, or a fresh store attached to an old queue) must be
        # healed by the gatherer itself — workers may have exited — not
        # hang the gather forever.
        queue = WorkQueue(tmp_path / "q")
        store = ReportStore(tmp_path / "store")
        spec = _spec(3)
        queue.submit([spec])
        run_worker(queue, store, exit_when_empty=True, poll_seconds=0.01)
        assert queue.counts()["done"] == 1
        store.prune(max_entries=0)  # the report is gone, the marker stays
        store.clear_memory()
        # No worker attached: recovery must still complete the gather.
        reports = asyncio.run(
            solve_many_async([spec], queue, store, poll_seconds=0.01, timeout=60)
        )
        assert len(reports) == 1
        assert reports[0].canonical_key == spec.canonical_key
        store.clear_memory()
        assert store.get(spec.canonical_key) is not None  # healed on disk

    def test_prestored_reports_gather_without_queue_work(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        store = ReportStore(tmp_path / "store")
        spec = _spec(3)
        store.put(api.solve(spec))
        reports = asyncio.run(
            solve_many_async([spec], queue, store, poll_seconds=0.01, timeout=5)
        )
        assert len(reports) == 1
        assert reports[0].canonical_key == spec.canonical_key


class TestClusterCli:
    def test_drain_command_matches_serial_run(self, tmp_path):
        from repro.cluster.__main__ import main as cluster_main

        specs = [_spec(rows) for rows in (3, 4, 5)]
        spec_path = tmp_path / "batch.json"
        spec_path.write_text(json.dumps([s.to_jsonable() for s in specs]))
        out_path = tmp_path / "cluster.json"
        rc = cluster_main(
            [
                "drain",
                str(spec_path),
                "--queue",
                str(tmp_path / "q"),
                "--store",
                str(tmp_path / "store"),
                "--workers",
                "2",
                "--num-shards",
                "2",
                "--timeout",
                "300",
                "--output",
                str(out_path),
            ]
        )
        assert rc == 0
        cluster_reports = json.loads(out_path.read_text())
        serial = [r.to_jsonable() for r in api.solve_many(specs, jobs=1)]

        def strip(report):
            # instrumentation carries wall-clock oracle timings, which —
            # like wall_seconds — differ between any two live runs.
            return {
                k: v
                for k, v in report.items()
                if k not in ("wall_seconds", "cached", "instrumentation")
            }

        assert [strip(r) for r in cluster_reports] == [strip(r) for r in serial]

    def test_status_and_submit_commands(self, tmp_path, capsys):
        from repro.cluster.__main__ import main as cluster_main

        spec_path = tmp_path / "one.json"
        spec_path.write_text(json.dumps(_spec(3).to_jsonable()))
        assert (
            cluster_main(
                ["submit", str(spec_path), "--queue", str(tmp_path / "q")]
            )
            == 0
        )
        capsys.readouterr()
        assert cluster_main(["status", "--queue", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "pending  1" in out
