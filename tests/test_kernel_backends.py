"""Kernel-backend conformance suite.

The kernel registry (:mod:`repro.core.engine.kernels`) promises three
things, and this suite pins each:

1. **Op-level bit identity.**  Ordered backends (``ordered``, and
   ``numba`` when importable) compute every reduction as the exact
   left-to-right sequential sum — each op is compared bitwise against
   an explicit Python ``for``-loop oracle, which is the definition of
   that order.  This is also where the NumPy primitive assumptions are
   enforced: ``np.bincount`` accumulating per bin in input order and
   ``np.cumsum``'s last element being the running sum are load-bearing,
   and a NumPy upgrade that re-associates either breaks here first.
2. **Solver-level bit identity per backend.**  The stacked ledger path
   and the per-tree loop path must agree bitwise under *every*
   registered backend — the same 4 solvers x 2 routings x stacked
   on/off matrix as ``tests/test_tree_ledger.py``, re-run per backend,
   with the compiled leg guarded by ``pytest.importorskip("numba")``.
3. **Registry/knob semantics.**  Registration, duplicate detection,
   the process default (``configure_kernel_backend`` / ``REPRO_KERNELS``),
   the per-solver ``kernel_backend`` knob surfacing in instrumentation,
   the thread-local override, and the one-time-warning fallback to
   ``numpy`` when an optional backend is unavailable.
"""

import threading
import warnings

import numpy as np
import pytest

from repro.api.registry import (
    solve_max_concurrent_flow_instance,
    solve_max_flow_instance,
    solve_online_instance,
    solve_randomized_rounding_instance,
)
from repro.core.engine import kernels as kernels_mod
from repro.core.engine.kernels import (
    KernelBackend,
    OrderedKernelBackend,
    active_kernels,
    configure_kernel_backend,
    kernel_backend_default,
    kernel_backend_names,
    register_kernel_backend,
    resolve_kernel_backend,
    unregister_kernel_backend,
    use_kernel_backend,
)
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.util.errors import ConfigurationError


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401

        return True
    except ImportError:
        return False


@pytest.fixture(params=sorted(kernel_backend_names()))
def backend_name(request):
    """Every registered backend; the compiled leg skips when absent."""
    if request.param == "numba":
        pytest.importorskip("numba")
    return request.param


@pytest.fixture(params=["ordered", "numba"])
def ordered_backend(request):
    """The two backends contracted to the left-to-right order."""
    if request.param == "numba":
        pytest.importorskip("numba")
    backend = resolve_kernel_backend(request.param)
    backend.warmup()
    return backend


def _segment_case(seed, num_columns=37, num_edges=211, mean_footprint=9):
    """Random CSC-style entries: contiguous per-column runs, in order.

    Lengths span ~16 decades so any re-association of the sum changes
    the low-order bits — the case that catches a pairwise/SIMD backend
    masquerading as ordered.
    """
    rng = np.random.default_rng(seed)
    counts = rng.poisson(mean_footprint, size=num_columns)
    ids = np.repeat(np.arange(num_columns, dtype=np.int64), counts)
    total = int(counts.sum())
    rows = rng.integers(0, num_edges, size=total, dtype=np.int64)
    values = rng.integers(1, 5, size=total).astype(float)
    lengths = rng.uniform(0.5, 2.0, size=num_edges) * 10.0 ** rng.integers(
        -8, 8, size=num_edges
    )
    return rows, values, ids, num_columns, num_edges, lengths


# ----------------------------------------------------------------------
# 1. op-level bit identity against explicit sequential loops
# ----------------------------------------------------------------------
def _loop_column_lengths(rows, values, ids, num_columns, lengths):
    out = np.zeros(num_columns, dtype=float)
    for k in range(rows.size):
        out[ids[k]] += values[k] * lengths[rows[k]]
    return out


def _loop_tree_length(rows, values, lengths):
    total = 0.0
    for k in range(rows.size):
        total += values[k] * lengths[rows[k]]
    return total


def _loop_scatter_add(out, rows, values):
    for k in range(rows.size):
        out[rows[k]] += values[k]
    return out


def _loop_multiply_at(rel, edge_ids, factors):
    for k in range(edge_ids.size):
        rel[edge_ids[k]] *= factors[k]


class TestOrderedOpBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_column_lengths_is_the_sequential_sum(self, ordered_backend, seed):
        rows, values, ids, ncols, _, lengths = _segment_case(seed)
        got = ordered_backend.column_lengths(rows, values, ids, ncols, lengths)
        want = _loop_column_lengths(rows, values, ids, ncols, lengths)
        assert got.shape == (ncols,)
        assert np.array_equal(got, want)  # bitwise, not allclose

    def test_column_lengths_empty_entries(self, ordered_backend):
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0, dtype=float)
        got = ordered_backend.column_lengths(
            empty_i, empty_f, empty_i, 5, np.ones(7)
        )
        assert np.array_equal(got, np.zeros(5))

    @pytest.mark.parametrize("seed", [3, 4])
    def test_tree_length_is_the_sequential_sum(self, ordered_backend, seed):
        rows, values, _, _, _, lengths = _segment_case(seed)
        got = ordered_backend.tree_length(rows, values, lengths)
        assert got == _loop_tree_length(rows, values, lengths)
        assert ordered_backend.tree_length(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=float), lengths
        ) == 0.0

    def test_scatter_add_fresh_is_the_sequential_scatter(self, ordered_backend):
        rows, values, _, _, num_edges, _ = _segment_case(5)
        got = ordered_backend.scatter_add_fresh(
            np.zeros(num_edges), rows, values
        )
        want = _loop_scatter_add(np.zeros(num_edges), rows, values)
        assert np.array_equal(got, want)

    def test_scatter_add_accumulates_into_existing(self, ordered_backend):
        rows, values, _, _, num_edges, _ = _segment_case(6)
        base = np.linspace(0.25, 3.0, num_edges)
        got = ordered_backend.scatter_add(base.copy(), rows, values)
        want = _loop_scatter_add(base.copy(), rows, values)
        assert np.array_equal(got, want)

    def test_multiply_at_handles_duplicates_in_order(self, ordered_backend):
        rng = np.random.default_rng(7)
        rel = rng.uniform(0.5, 2.0, 64)
        edge_ids = rng.integers(0, 64, size=200, dtype=np.int64)  # duplicates
        factors = rng.uniform(0.9, 1.1, size=200)
        got = rel.copy()
        ordered_backend.multiply_at(got, edge_ids, factors)
        want = rel.copy()
        _loop_multiply_at(want, edge_ids, factors)
        assert np.array_equal(got, want)

    def test_multiply_unique_matches_fancy_multiply(self, ordered_backend):
        rng = np.random.default_rng(8)
        rel = rng.uniform(0.5, 2.0, 64)
        edge_ids = rng.permutation(64)[:20].astype(np.int64)
        factors = rng.uniform(0.9, 1.1, size=20)
        got = rel.copy()
        ordered_backend.multiply_unique(got, edge_ids, factors)
        want = rel.copy()
        want[edge_ids] *= factors
        assert np.array_equal(got, want)


class TestNumpyBackendScattersStaySequential:
    """The numpy backend's scatter/multiply ops are ``np.add.at`` /
    ``np.multiply.at`` — contractually in input order too."""

    def test_scatter_and_multiply_match_loops(self):
        backend = resolve_kernel_backend("numpy")
        rows, values, _, _, num_edges, _ = _segment_case(9)
        got = backend.scatter_add(np.zeros(num_edges), rows, values)
        assert np.array_equal(got, _loop_scatter_add(np.zeros(num_edges), rows, values))
        rng = np.random.default_rng(10)
        rel = rng.uniform(0.5, 2.0, 32)
        ids = rng.integers(0, 32, size=90, dtype=np.int64)
        factors = rng.uniform(0.9, 1.1, size=90)
        got_rel, want_rel = rel.copy(), rel.copy()
        backend.multiply_at(got_rel, ids, factors)
        _loop_multiply_at(want_rel, ids, factors)
        assert np.array_equal(got_rel, want_rel)


@pytest.mark.skipif(not _numba_available(), reason="numba not installed")
def test_numba_matches_ordered_reference_bitwise():
    """The compiled backend is bit-identical to the pure-NumPy oracle."""
    numba_backend = resolve_kernel_backend("numba")
    ordered = resolve_kernel_backend("ordered")
    assert numba_backend.name == "numba" and numba_backend.compiled
    for seed in range(3):
        rows, values, ids, ncols, num_edges, lengths = _segment_case(seed)
        assert np.array_equal(
            numba_backend.column_lengths(rows, values, ids, ncols, lengths),
            ordered.column_lengths(rows, values, ids, ncols, lengths),
        )
        assert numba_backend.tree_length(rows, values, lengths) == ordered.tree_length(
            rows, values, lengths
        )
        assert np.array_equal(
            numba_backend.scatter_add_fresh(np.zeros(num_edges), rows, values),
            ordered.scatter_add_fresh(np.zeros(num_edges), rows, values),
        )


# ----------------------------------------------------------------------
# 2. solver equivalence matrix, per backend
# ----------------------------------------------------------------------
def fingerprint(solution):
    """Everything the paper reports about a solution, exactly."""
    return {
        "algorithm": solution.algorithm,
        "epsilon": solution.epsilon,
        "oracle_calls": solution.oracle_calls,
        "rates": [s.rate for s in solution.sessions],
        "names": [s.session.name for s in solution.sessions],
        "num_trees": solution.num_trees_per_session,
        "flows": [
            sorted((tf.tree.canonical_key(), tf.flow) for tf in s.tree_flows)
            for s in solution.sessions
        ],
        "edge_flows": solution.edge_flows().tolist(),
        "extra": dict(solution.extra),
    }


@pytest.fixture(scope="module")
def kernel_sessions():
    from repro.overlay.session import Session

    return [
        Session((0, 4, 9, 13), demand=100.0, name="s1"),
        Session((2, 7, 20), demand=100.0, name="s2"),
    ]


@pytest.mark.parametrize("routing_cls", [FixedIPRouting, DynamicRouting])
class TestBackendEquivalenceMatrix:
    """Stacked vs loop stays bitwise identical under every backend."""

    def test_max_flow(self, waxman_network, kernel_sessions, routing_cls, backend_name):
        runs = [
            solve_max_flow_instance(
                kernel_sessions,
                routing_cls(waxman_network),
                epsilon=0.15,
                stacked_trees=stacked,
                kernel_backend=backend_name,
            )
            for stacked in (True, False)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])
        assert runs[0].instrumentation["kernel_backend"] == backend_name

    def test_max_concurrent_flow(
        self, waxman_network, kernel_sessions, routing_cls, backend_name
    ):
        runs = [
            solve_max_concurrent_flow_instance(
                kernel_sessions,
                routing_cls(waxman_network),
                epsilon=0.25,
                prescale_epsilon=0.3,
                stacked_trees=stacked,
                kernel_backend=backend_name,
            )
            for stacked in (True, False)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])
        assert runs[0].instrumentation["kernel_backend"] == backend_name

    def test_online(self, waxman_network, kernel_sessions, routing_cls, backend_name):
        arrivals = kernel_sessions * 3
        runs = [
            solve_online_instance(
                arrivals,
                routing_cls(waxman_network),
                sigma=10.0,
                stacked_trees=stacked,
                kernel_backend=backend_name,
            )
            for stacked in (True, False)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])
        assert runs[0].instrumentation["kernel_backend"] == backend_name

    def test_randomized_rounding(
        self, waxman_network, kernel_sessions, routing_cls, backend_name
    ):
        runs = [
            solve_randomized_rounding_instance(
                kernel_sessions,
                routing_cls(waxman_network),
                max_trees=2,
                seed=5,
                epsilon=0.25,
                prescale_epsilon=0.3,
                stacked_trees=stacked,
                kernel_backend=backend_name,
            )
            for stacked in (True, False)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])


def test_backends_agree_to_roundoff(waxman_network, kernel_sessions):
    """Cross-backend agreement is floating-point round-off, not bitwise:
    the ordered sum re-associates relative to the BLAS dots, so rates
    and edge flows track to ``allclose`` precision."""
    routing = FixedIPRouting(waxman_network)
    base = solve_max_flow_instance(
        kernel_sessions, routing, epsilon=0.15, kernel_backend="numpy"
    )
    ordered = solve_max_flow_instance(
        kernel_sessions, routing, epsilon=0.15, kernel_backend="ordered"
    )
    np.testing.assert_allclose(
        [s.rate for s in base.sessions],
        [s.rate for s in ordered.sessions],
        rtol=1e-9,
    )
    np.testing.assert_allclose(
        base.edge_flows(), ordered.edge_flows(), rtol=1e-9, atol=1e-12
    )


# ----------------------------------------------------------------------
# 3. registry, knobs, fallback
# ----------------------------------------------------------------------
def test_builtin_backends_are_registered():
    names = kernel_backend_names()
    assert {"numpy", "ordered", "numba"} <= set(names)
    assert names == sorted(names)


def test_resolve_caches_instances():
    assert resolve_kernel_backend("numpy") is resolve_kernel_backend("numpy")
    assert resolve_kernel_backend("ordered") is resolve_kernel_backend("ordered")
    assert resolve_kernel_backend("NumPy").name == "numpy"  # case-insensitive


def test_resolve_passes_instances_through():
    backend = resolve_kernel_backend("ordered")
    assert resolve_kernel_backend(backend) is backend


def test_resolve_unknown_backend_raises():
    with pytest.raises(ConfigurationError, match="unknown kernel backend"):
        resolve_kernel_backend("no-such-backend")


def test_register_duplicate_name_raises():
    with pytest.raises(ConfigurationError, match="already registered"):
        register_kernel_backend("numpy", KernelBackend)
    with pytest.raises(ConfigurationError, match="non-empty"):
        register_kernel_backend("", KernelBackend)


def test_register_and_unregister_round_trip():
    class PluginBackend(OrderedKernelBackend):
        name = "plugin-test"

    register_kernel_backend("plugin-test", PluginBackend)
    try:
        assert "plugin-test" in kernel_backend_names()
        backend = resolve_kernel_backend("plugin-test")
        assert isinstance(backend, PluginBackend)
        assert backend is resolve_kernel_backend("PLUGIN-TEST")
    finally:
        unregister_kernel_backend("plugin-test")
    assert "plugin-test" not in kernel_backend_names()
    with pytest.raises(ConfigurationError):
        unregister_kernel_backend("plugin-test")


def test_unavailable_backend_falls_back_to_numpy_with_one_warning():
    @register_kernel_backend("broken-test")
    def _broken():
        raise ImportError("optional toolchain missing")

    try:
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            backend = resolve_kernel_backend("broken-test")
        assert backend is resolve_kernel_backend("numpy")
        # Cached: the second resolution neither re-runs the factory nor
        # re-warns.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel_backend("broken-test") is backend
    finally:
        unregister_kernel_backend("broken-test")


@pytest.mark.skipif(_numba_available(), reason="numba is installed here")
def test_numba_absent_resolves_to_numpy():
    """On a machine without numba the compiled name degrades gracefully."""
    kernels_mod._BACKEND_INSTANCES.pop("numba", None)
    kernels_mod._FALLBACK_WARNED.discard("numba")
    with pytest.warns(RuntimeWarning, match="'numba' is unavailable"):
        backend = resolve_kernel_backend("numba")
    assert backend.name == "numpy"
    assert backend is resolve_kernel_backend("numpy")


def test_configure_kernel_backend_round_trip():
    assert kernel_backend_default() == "numpy"
    previous = configure_kernel_backend("ordered")
    try:
        assert previous == "numpy"
        assert kernel_backend_default() == "ordered"
        assert active_kernels().name == "ordered"
        # The per-solver default follows the process default.
        with use_kernel_backend(None) as resolved:
            assert resolved.name == "ordered"
    finally:
        configure_kernel_backend(previous)
    assert kernel_backend_default() == "numpy"
    with pytest.raises(ConfigurationError, match="unknown kernel backend"):
        configure_kernel_backend("no-such-backend")


def test_use_kernel_backend_restores_and_nests():
    assert active_kernels().name == kernel_backend_default()
    with use_kernel_backend("ordered") as outer:
        assert active_kernels() is outer
        with use_kernel_backend("numpy") as inner:
            assert active_kernels() is inner
        assert active_kernels() is outer
    assert active_kernels().name == kernel_backend_default()


def test_use_kernel_backend_is_thread_local():
    seen = {}

    def probe():
        seen["worker"] = active_kernels().name

    with use_kernel_backend("ordered"):
        worker = threading.Thread(target=probe)
        worker.start()
        worker.join()
        assert active_kernels().name == "ordered"
    # The worker thread never saw this thread's override.
    assert seen["worker"] == kernel_backend_default()


def test_env_var_seeds_the_boot_default(monkeypatch):
    monkeypatch.setenv(kernels_mod.KERNELS_ENV_VAR, "ordered")
    assert kernels_mod._initial_backend_name() == "ordered"
    monkeypatch.setenv(kernels_mod.KERNELS_ENV_VAR, "  Ordered  ")
    assert kernels_mod._initial_backend_name() == "ordered"
    monkeypatch.delenv(kernels_mod.KERNELS_ENV_VAR)
    assert kernels_mod._initial_backend_name() == "numpy"
    monkeypatch.setenv(kernels_mod.KERNELS_ENV_VAR, "bogus")
    with pytest.warns(RuntimeWarning, match="names no registered kernel backend"):
        assert kernels_mod._initial_backend_name() == "numpy"


def test_engine_default_backend_reported_in_instrumentation(
    waxman_network, kernel_sessions
):
    routing = FixedIPRouting(waxman_network)
    default_run = solve_max_flow_instance(kernel_sessions, routing, epsilon=0.3)
    assert default_run.instrumentation["kernel_backend"] == kernel_backend_default()
    previous = configure_kernel_backend("ordered")
    try:
        configured = solve_max_flow_instance(kernel_sessions, routing, epsilon=0.3)
        assert configured.instrumentation["kernel_backend"] == "ordered"
    finally:
        configure_kernel_backend(previous)
