"""Tests for repro.util.tables and repro.util.serialization."""

import dataclasses
from pathlib import Path

import numpy as np
import pytest

from repro.util.serialization import dump_json, load_json, to_jsonable
from repro.util.tables import format_kv, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.50" in text
        assert len(lines) == 4  # header, separator, two rows

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_precision(self):
        text = format_table(["x"], [[1.23456]], precision=4)
        assert "1.2346" in text

    def test_column_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_string_cells(self):
        text = format_table(["name", "value"], [["alpha", 1]])
        assert "alpha" in text


class TestFormatKv:
    def test_alignment(self):
        text = format_kv({"a": 1, "long_key": 2.5})
        lines = text.splitlines()
        assert all(" : " in line for line in lines)

    def test_title(self):
        text = format_kv({"a": 1}, title="Header")
        assert text.splitlines()[0] == "Header"

    def test_empty(self):
        assert format_kv({}) == ""


@dataclasses.dataclass
class _Sample:
    name: str
    values: np.ndarray


class TestSerialization:
    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.bool_(True)) is True

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2, 3])) == [1, 2, 3]

    def test_dataclass(self):
        obj = _Sample(name="x", values=np.array([1.0, 2.0]))
        assert to_jsonable(obj) == {"name": "x", "values": [1.0, 2.0]}

    def test_nested_containers(self):
        out = to_jsonable({"a": (1, 2), "b": {np.int32(3)}})
        assert out["a"] == [1, 2]
        assert out["b"] == [3]

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_dump_and_load_roundtrip(self, tmp_path: Path):
        payload = {"x": np.arange(3), "y": {"z": np.float64(1.5)}}
        path = dump_json(payload, tmp_path / "out" / "result.json")
        assert path.exists()
        loaded = load_json(path)
        assert loaded == {"x": [0, 1, 2], "y": {"z": 1.5}}
