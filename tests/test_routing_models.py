"""Tests for FixedIPRouting and DynamicRouting."""

import numpy as np
import pytest

from repro.routing.base import pair_key
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.network import PhysicalNetwork
from repro.util.errors import InfeasibleProblemError


class TestPairKey:
    def test_canonical_ordering(self):
        assert pair_key(5, 2) == (2, 5)
        assert pair_key(2, 5) == (2, 5)


class TestFixedIPRouting:
    def test_routes_are_shortest_by_hops(self, diamond_network):
        routing = FixedIPRouting(diamond_network)
        paths = routing.paths_for_pairs([(0, 3)])
        assert paths[(0, 3)].hop_count == 2

    def test_routes_are_cached(self, diamond_network):
        routing = FixedIPRouting(diamond_network)
        routing.paths_for_pairs([(0, 3), (0, 2)])
        assert routing.cached_pair_count() == 2
        routing.paths_for_pairs([(0, 3)])
        assert routing.cached_pair_count() == 2

    def test_routes_ignore_length_function(self, diamond_network):
        routing = FixedIPRouting(diamond_network)
        before = routing.paths_for_pairs([(0, 3)])[(0, 3)]
        weights = np.full(diamond_network.num_edges, 100.0)
        after = routing.paths_for_pairs([(0, 3)], weights)[(0, 3)]
        assert before.nodes == after.nodes

    def test_same_node_pair(self, diamond_network):
        routing = FixedIPRouting(diamond_network)
        path = routing.paths_for_pairs([(2, 2)])[(2, 2)]
        assert path.hop_count == 0

    def test_is_not_dynamic(self, diamond_network):
        assert not FixedIPRouting(diamond_network).is_dynamic

    def test_member_pairs_order(self):
        pairs = FixedIPRouting.member_pairs([3, 1, 2])
        assert pairs == [(1, 3), (2, 3), (1, 2)]

    def test_incidence_matrix_matches_paths(self, diamond_network):
        routing = FixedIPRouting(diamond_network)
        members = [0, 1, 3]
        incidence = routing.incidence_for_members(members)
        pairs = routing.member_pairs(members)
        paths = routing.paths_for_pairs(pairs)
        assert incidence.shape == (3, diamond_network.num_edges)
        for row, pk in enumerate(pairs):
            dense = incidence.getrow(row).toarray().ravel()
            assert dense.sum() == paths[pk].hop_count
            assert np.all(dense[paths[pk].edge_ids] == 1.0)

    def test_pair_lengths_symmetric(self, diamond_network):
        routing = FixedIPRouting(diamond_network)
        lengths = routing.pair_lengths([0, 1, 3], np.ones(diamond_network.num_edges))
        assert lengths.shape == (3, 3)
        assert np.allclose(lengths, lengths.T)
        assert np.allclose(np.diag(lengths), 0.0)
        assert lengths[0, 2] == pytest.approx(2.0)  # 0 -> 3 is two hops

    def test_pair_lengths_single_member(self, diamond_network):
        routing = FixedIPRouting(diamond_network)
        assert routing.pair_lengths([0], np.ones(diamond_network.num_edges)).shape == (1, 1)

    def test_covered_edges(self, diamond_network):
        routing = FixedIPRouting(diamond_network)
        covered = routing.covered_edges([0, 1, 3])
        assert covered.size >= 2

    def test_max_route_hops(self, path_network):
        routing = FixedIPRouting(path_network)
        assert routing.max_route_hops([0, 2, 4]) == 4

    def test_max_route_hops_single_member(self, path_network):
        routing = FixedIPRouting(path_network)
        assert routing.max_route_hops([2]) == 0

    def test_disconnected_members_raise(self):
        net = PhysicalNetwork(4, [(0, 1), (2, 3)])
        routing = FixedIPRouting(net)
        with pytest.raises(InfeasibleProblemError):
            routing.paths_for_pairs([(0, 2)])


class TestDynamicRouting:
    def test_is_dynamic(self, diamond_network):
        assert DynamicRouting(diamond_network).is_dynamic

    def test_paths_follow_length_function(self, diamond_network):
        routing = DynamicRouting(diamond_network)
        uniform = routing.paths_for_pairs([(0, 1)], np.ones(diamond_network.num_edges))
        assert uniform[(0, 1)].hop_count == 1
        weights = np.ones(diamond_network.num_edges)
        weights[diamond_network.edge_id(0, 1)] = 50.0
        rerouted = routing.paths_for_pairs([(0, 1)], weights)
        assert rerouted[(0, 1)].hop_count == 2  # detour via node 2

    def test_default_weights_are_hop_metric(self, diamond_network):
        routing = DynamicRouting(diamond_network)
        paths = routing.paths_for_pairs([(0, 3)])
        assert paths[(0, 3)].hop_count == 2

    def test_pair_lengths_match_dijkstra(self, diamond_network):
        routing = DynamicRouting(diamond_network)
        weights = np.linspace(1.0, 2.0, diamond_network.num_edges)
        lengths = routing.pair_lengths([0, 1, 3], weights)
        assert lengths.shape == (3, 3)
        assert np.allclose(lengths, lengths.T)
        direct = weights[diamond_network.edge_id(0, 1)]
        assert lengths[0, 1] <= direct + 1e-12

    def test_same_node_pair(self, diamond_network):
        routing = DynamicRouting(diamond_network)
        path = routing.paths_for_pairs([(1, 1)], np.ones(diamond_network.num_edges))[(1, 1)]
        assert path.hop_count == 0

    def test_covered_edges(self, diamond_network):
        routing = DynamicRouting(diamond_network)
        covered = routing.covered_edges([0, 1, 3])
        assert covered.size >= 2

    def test_disconnected_members_raise(self):
        net = PhysicalNetwork(4, [(0, 1), (2, 3)])
        routing = DynamicRouting(net)
        with pytest.raises(InfeasibleProblemError):
            routing.paths_for_pairs([(1, 2)], np.ones(net.num_edges))

    def test_agrees_with_ip_routing_on_hop_metric(self, waxman_network):
        ip = FixedIPRouting(waxman_network)
        dyn = DynamicRouting(waxman_network)
        members = [0, 5, 11, 17]
        ones = np.ones(waxman_network.num_edges)
        assert np.allclose(ip.pair_lengths(members, ones), dyn.pair_lengths(members, ones))

    def test_pair_lengths_symmetrised_with_max(self, diamond_network, monkeypatch):
        # Regression: the symmetrisation must take the elementwise max of
        # the two directions (as documented), not their average.  Feed an
        # artificially asymmetric distance matrix to pin the behaviour.
        members = [0, 1, 3]
        num_nodes = diamond_network.num_nodes

        def fake_shortest_path_tree(network, sources, edge_lengths):
            distances = np.arange(
                len(sources) * num_nodes, dtype=float
            ).reshape(len(sources), num_nodes)
            return distances, None

        monkeypatch.setattr(
            "repro.routing.dynamic.shortest_path_tree", fake_shortest_path_tree
        )
        routing = DynamicRouting(diamond_network)
        result = routing.pair_lengths(members, np.ones(diamond_network.num_edges))

        sub = np.arange(len(members) * num_nodes, dtype=float).reshape(
            len(members), num_nodes
        )[:, members]
        expected = np.maximum(sub, sub.T)
        assert np.array_equal(result, expected)
        assert np.array_equal(result, result.T)
