"""Tests for the ``repro.serve`` subsystem and its satellite plumbing.

Covers the full stack: the ExponentialBackoff primitive, admission
control, relay channels, SSE framing, the transport-independent
ServeApp, the real HTTP server end-to-end (submit → poll → report
bit-identical to a direct ``solve``; SSE congestion telemetry; 429
shedding; structured 400s; warm re-submits with zero solver calls),
cluster-mode dispatch through a WorkQueue, the thread-local engine
event tap, dropped-event accounting, and the
``as_reports_completed`` timeout diagnostics.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.serve.app as serve_app_module
from repro.api.service import solve
from repro.api.specs import ArrivalSpec, ScenarioSpec, TopologySpec, WorkloadSpec
from repro.cluster.async_api import as_reports_completed
from repro.cluster.queue import WorkQueue
from repro.cluster.worker import run_worker
from repro.core.engine.instrumentation import Instrumentation, event_tap
from repro.faults import fault_scope
from repro.serve import (
    AdmissionController,
    AdmissionShed,
    CircuitBreaker,
    EventRelay,
    ServeApp,
    ServeConfig,
    format_sse,
    make_server,
    parse_sse_line,
    sse_frames,
)
from repro.store.report_store import ReportStore
from repro.util.backoff import ExponentialBackoff
from repro.util.errors import ConfigurationError


def small_spec(seed: int = 5, **overrides) -> ScenarioSpec:
    """A fast offline scenario (sub-second solve); ``seed`` varies the key."""
    fields = dict(
        topology=TopologySpec(
            generator="paper_flat", params={"num_nodes": 12, "capacity": 100.0}, seed=3
        ),
        workload=WorkloadSpec(sizes=(3,), demand=10.0, seed=seed),
        routing="ip",
        solver="max_flow",
        solver_params={"approximation_ratio": 0.7},
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def online_spec() -> ScenarioSpec:
    """An online scenario — its engine emits ``congestion`` events."""
    return small_spec(
        workload=WorkloadSpec(sizes=(3, 2), demand=10.0, seed=5),
        solver="online",
        solver_params={"sigma": 10.0},
        arrivals=ArrivalSpec(replication=2, seed=11, demand=1.0),
    )


def strip_volatile(payload: dict) -> dict:
    """Drop the non-deterministic report fields for bit-identity checks."""
    return {
        k: v
        for k, v in payload.items()
        if k not in ("wall_seconds", "cached", "instrumentation")
    }


# ----------------------------------------------------------------------
# ExponentialBackoff (satellite: capped backoff on empty polls)
# ----------------------------------------------------------------------
class TestExponentialBackoff:
    def test_doubles_from_floor_and_caps(self):
        backoff = ExponentialBackoff(0.1, cap=0.5)
        delays = [backoff.next_delay() for _ in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_reset_restores_floor(self):
        backoff = ExponentialBackoff(0.05)
        backoff.next_delay()
        backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() == 0.05

    def test_default_cap_covers_large_floors(self):
        # floor above the default cap: the cap must not undercut the floor
        backoff = ExponentialBackoff(5.0)
        assert backoff.next_delay() == 5.0
        assert backoff.next_delay() == 5.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(0.0)
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(0.1, factor=0.5)

    def test_jitter_default_off_preserves_ladder(self):
        backoff = ExponentialBackoff(0.1, cap=0.5)
        assert backoff.jitter is False
        assert [backoff.next_delay() for _ in range(4)] == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_delays_stay_inside_the_envelope(self):
        # Decorrelated jitter: every delay lies in [floor, cap] AND below
        # previous * factor (the decorrelation bound).
        backoff = ExponentialBackoff(
            0.1, cap=2.0, factor=3.0, jitter=True, rng=random.Random(42)
        )
        previous = 0.1
        for _ in range(100):
            delay = backoff.next_delay()
            assert 0.1 <= delay <= 2.0
            assert delay <= max(0.1, previous * 3.0) + 1e-12
            previous = delay

    def test_jitter_reset_restores_floor_correlation(self):
        backoff = ExponentialBackoff(
            0.5, cap=60.0, jitter=True, rng=random.Random(7)
        )
        for _ in range(20):
            backoff.next_delay()
        backoff.reset()
        assert backoff.peek() == 0.5
        # Right after a reset the draw envelope is [floor, floor*factor].
        assert 0.5 <= backoff.next_delay() <= 1.0

    def test_jitter_is_deterministic_under_a_seeded_rng(self):
        schedules = []
        for _ in range(2):
            backoff = ExponentialBackoff(
                0.1, cap=5.0, jitter=True, rng=random.Random(99)
            )
            schedules.append([backoff.next_delay() for _ in range(16)])
        assert schedules[0] == schedules[1]
        assert len(set(schedules[0])) > 1  # it does actually jitter


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_priority_order_fifo_within_level(self):
        adm = AdmissionController(high_water=10)
        adm.offer("a", "low1", priority=5)
        adm.offer("b", "hi", priority=0)
        adm.offer("a", "low2", priority=5)
        order = [adm.take(timeout=0)[1] for _ in range(3)]
        assert order == ["hi", "low1", "low2"]

    def test_high_water_sheds(self):
        adm = AdmissionController(high_water=2)
        adm.offer("a", 1)
        adm.offer("a", 2)
        with pytest.raises(AdmissionShed) as excinfo:
            adm.offer("b", 3)
        assert excinfo.value.depth == 2
        assert excinfo.value.high_water == 2
        assert adm.snapshot()["shed"] == 1

    def test_per_client_limit(self):
        adm = AdmissionController(high_water=10, per_client_limit=1)
        adm.offer("noisy", 1)
        with pytest.raises(AdmissionShed):
            adm.offer("noisy", 2)
        adm.offer("quiet", 3)  # other tenants unaffected

    def test_take_timeout_and_active_accounting(self):
        adm = AdmissionController()
        assert adm.take(timeout=0.01) is None
        adm.offer("c", "item")
        client, item = adm.take(timeout=0.01)
        assert (client, item) == ("c", "item")
        assert adm.active == 1
        adm.finish(client)
        assert adm.active == 0
        assert adm.snapshot()["completed"] == 1


# ----------------------------------------------------------------------
# Event relay channels
# ----------------------------------------------------------------------
class TestEventRelay:
    def test_writer_append_finish_and_replay(self, tmp_path):
        relay = EventRelay(tmp_path)
        writer = relay.open_writer("k1")
        writer.append({"kind": "oracle", "step": 1})
        writer.finish("done", cached=False)
        writer.finish("done")  # idempotent
        events = relay.events("k1")
        assert [e["kind"] for e in events] == ["oracle", "end"]
        assert events[-1]["status"] == "done"

    def test_tail_replays_completed_channel(self, tmp_path):
        relay = EventRelay(tmp_path)
        with relay.open_writer("k2") as writer:
            writer.append({"kind": "congestion", "step": 1, "max_congestion": 0.5})
            writer.finish("done")
        seen = list(relay.tail("k2", timeout=2.0))
        assert [e["kind"] for e in seen] == ["congestion", "end"]

    def test_tail_synthesizes_end_when_finished(self, tmp_path):
        relay = EventRelay(tmp_path)
        writer = relay.open_writer("k3")
        writer.append({"kind": "oracle", "step": 1})
        writer.close()  # crashed worker: no end marker
        seen = list(
            relay.tail("k3", timeout=5.0, finished=lambda: True, grace_seconds=0.1)
        )
        assert seen[-1]["kind"] == "end"
        assert seen[-1].get("synthetic") is True

    def test_tail_times_out_without_marker(self, tmp_path):
        relay = EventRelay(tmp_path)
        relay.open_writer("k4").close()
        assert list(relay.tail("k4", timeout=0.2)) == []

    def test_context_manager_marks_failure(self, tmp_path):
        relay = EventRelay(tmp_path)
        with pytest.raises(RuntimeError):
            with relay.open_writer("k5") as writer:
                writer.append({"kind": "oracle", "step": 1})
                raise RuntimeError("boom")
        end = relay.events("k5")[-1]
        assert end["kind"] == "end" and end["status"] == "failed"
        assert "boom" in end["error"]

    def test_tail_recovers_from_writer_dead_mid_event(self, tmp_path):
        # Crash-recovery contract: a writer that dies mid-append leaves a
        # torn, newline-less suffix on the channel.  A follower must (a)
        # never surface that partial line as an event and (b) still get a
        # terminal marker — synthesized once the run is known finished.
        relay = EventRelay(tmp_path)
        writer = relay.open_writer("k6")
        writer.append({"kind": "oracle", "step": 1, "queries": 4.0})
        with fault_scope("relay.append:truncate=0.4"):
            writer.append({"kind": "congestion", "step": 2, "max_congestion": 9.9})
        writer.close()  # died before finish(): no end marker
        raw = relay.path_for("k6").read_bytes()
        assert not raw.endswith(b"\n")  # the torn suffix really is there
        seen = list(
            relay.tail("k6", timeout=5.0, finished=lambda: True, grace_seconds=0.1)
        )
        assert [e["kind"] for e in seen] == ["oracle", "end"]
        assert seen[-1].get("synthetic") is True
        assert all(e.get("max_congestion") != 9.9 for e in seen)

    def test_tail_survives_transient_read_faults(self, tmp_path):
        relay = EventRelay(tmp_path)
        with relay.open_writer("k7") as writer:
            writer.append({"kind": "oracle", "step": 1})
            writer.finish("done")
        with fault_scope("relay.tail.read:raisex2"):
            seen = list(relay.tail("k7", timeout=5.0))
        assert [e["kind"] for e in seen] == ["oracle", "end"]


# ----------------------------------------------------------------------
# SSE framing
# ----------------------------------------------------------------------
class TestSSE:
    def test_format_and_parse_roundtrip(self):
        frame = format_sse({"kind": "congestion", "step": 3}, event="congestion")
        state: dict = {}
        parsed = None
        for line in frame.split(b"\n"):
            parsed = parse_sse_line(line + b"\n", state) or parsed
        assert parsed is not None
        name, data = parsed
        assert name == "congestion"
        assert json.loads(data)["step"] == 3

    def test_timeout_frame_when_no_end(self):
        frames = list(
            sse_frames(iter([{"kind": "oracle"}]), timed_out_event={"key": "x"})
        )
        assert frames[-1].startswith(b"event: timeout\n")

    def test_no_timeout_frame_after_end(self):
        frames = list(
            sse_frames(iter([{"kind": "end"}]), timed_out_event={"key": "x"})
        )
        assert len(frames) == 1 and frames[0].startswith(b"event: end\n")


# ----------------------------------------------------------------------
# ServeApp over real HTTP (inline mode)
# ----------------------------------------------------------------------
@pytest.fixture
def http_server(tmp_path):
    """A live inline-mode server on an ephemeral port."""
    app = ServeApp(ServeConfig(store=tmp_path / "store", poll_seconds=0.01))
    server = make_server(app, port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
    )
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield app, base
    finally:
        server.shutdown()
        server.server_close()
        app.close()
        thread.join(timeout=2)


def http_post(url: str, body: bytes, headers: dict = None) -> tuple:
    req = urllib.request.Request(url, data=body, method="POST", headers=headers or {})
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.load(resp), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err), dict(err.headers)


def http_get(url: str) -> tuple:
    try:
        with urllib.request.urlopen(url) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err)


def poll_report(base: str, key: str, deadline: float = 30.0) -> dict:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        code, payload = http_get(f"{base}/v1/reports/{key}")
        if code == 200:
            return payload
        assert code == 202, payload
        time.sleep(0.02)
    raise AssertionError(f"report {key[:12]} never landed")


class TestServeHTTP:
    def test_submit_poll_report_bit_identical(self, http_server):
        _, base = http_server
        spec = small_spec()
        code, ticket, _ = http_post(
            f"{base}/v1/solve", json.dumps(spec.to_jsonable()).encode()
        )
        assert code == 202
        assert ticket["key"] == spec.canonical_key
        served = poll_report(base, ticket["key"])
        direct = solve(spec).to_jsonable()
        assert strip_volatile(served) == strip_volatile(direct)

    def test_sse_streams_congestion_before_end(self, http_server):
        _, base = http_server
        spec = online_spec()
        code, ticket, _ = http_post(
            f"{base}/v1/solve", json.dumps(spec.to_jsonable()).encode()
        )
        assert code == 202
        kinds = []
        url = f"{base}/v1/runs/{ticket['key']}/events?timeout=30"
        state: dict = {}
        with urllib.request.urlopen(url) as resp:
            assert resp.headers["Content-Type"].startswith("text/event-stream")
            for raw in resp:
                frame = parse_sse_line(raw, state)
                if frame is None:
                    continue
                kinds.append(frame[0])
                if frame[0] == "end":
                    break
        assert kinds[-1] == "end"
        assert kinds.count("congestion") >= 1
        assert kinds.index("congestion") < kinds.index("end")

    def test_shed_returns_429_with_retry_after(self, tmp_path):
        # inline_workers=0: nothing drains admission, so with
        # high_water=1 the second submission deterministically sheds.
        app = ServeApp(
            ServeConfig(store=tmp_path / "store", inline_workers=0, high_water=1)
        )
        server = make_server(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            first = json.dumps(small_spec().to_jsonable()).encode()
            second = json.dumps(small_spec(seed=99).to_jsonable()).encode()
            code, _, _ = http_post(f"{base}/v1/solve", first)
            assert code == 202
            code, payload, headers = http_post(f"{base}/v1/solve", second)
            assert code == 429
            assert payload["error"]["type"] == "AdmissionShed"
            assert int(headers["Retry-After"]) >= 1
            code, status = http_get(f"{base}/v1/status")
            assert status["admission"]["shed"] == 1
            assert status["admission"]["depth"] == 1
        finally:
            server.shutdown()
            server.server_close()
            app.close()

    def test_malformed_spec_is_structured_400(self, http_server):
        _, base = http_server
        cases = [
            b"{not json",
            json.dumps({"no_such_field": 1}).encode(),
            json.dumps(
                {**small_spec().to_jsonable(), "solver": "no_such_solver"}
            ).encode(),
            json.dumps({"spec": small_spec().to_jsonable(), "priority": "high"}).encode(),
        ]
        for body in cases:
            code, payload, _ = http_post(f"{base}/v1/solve", body)
            assert code == 400, body
            assert set(payload["error"]) == {"type", "message"}

    def test_warm_resubmit_zero_solver_calls(self, http_server, monkeypatch):
        app, base = http_server
        spec = small_spec()
        body = json.dumps(spec.to_jsonable()).encode()
        code, ticket, _ = http_post(f"{base}/v1/solve", body)
        assert code == 202
        poll_report(base, ticket["key"])
        calls = []
        monkeypatch.setattr(
            serve_app_module,
            "solve",
            lambda *a, **k: calls.append(1) or (_ for _ in ()).throw(
                AssertionError("solver invoked on warm key")
            ),
        )
        code, payload, _ = http_post(f"{base}/v1/solve", body)
        assert code == 200
        assert payload["cached"] is True
        assert calls == []
        # the report itself also answers straight from the store
        code, served = http_get(f"{base}/v1/reports/{ticket['key']}")
        assert code == 200
        assert served["canonical_key"] == ticket["key"]

    def test_unknown_key_and_route_404(self, http_server):
        _, base = http_server
        code, payload = http_get(f"{base}/v1/reports/{'0' * 64}")
        assert code == 404 and payload["error"]["type"] == "NotFound"
        code, payload = http_get(f"{base}/v1/nope")
        assert code == 404

    def test_status_and_index(self, http_server):
        _, base = http_server
        code, payload = http_get(f"{base}/v1/status")
        assert code == 200
        assert payload["mode"] == "inline"
        for field in ("admission", "workers", "runs", "store"):
            assert field in payload
        code, payload = http_get(f"{base}/")
        assert code == 200 and "POST /v1/solve" in payload["endpoints"]

    def test_duplicate_inflight_submit_deduplicates(self, tmp_path):
        app = ServeApp(
            ServeConfig(store=tmp_path / "store", inline_workers=0, high_water=4)
        )
        body = json.dumps(small_spec().to_jsonable()).encode()
        code1, first = app.submit(body)
        code2, second = app.submit(body)
        assert (code1, code2) == (202, 202)
        assert second["deduplicated"] is True
        assert app.admission.depth == 1
        app.close()


# ----------------------------------------------------------------------
# Graceful degradation: circuit breaker, /healthz, draining shutdown
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_open_probe(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=5.0, clock=lambda: clock[0]
        )
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock[0] = 3.0
        assert breaker.retry_after() == pytest.approx(2.0)
        clock[0] = 5.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # exactly one probe
        assert not breaker.allow()
        breaker.record_failure()  # probe failed: full cool-down again
        assert breaker.state == "open"
        clock[0] = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()  # no probe rationing

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken, never 3 in a row

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_seconds=0.0)


class TestServeDegradation:
    def test_store_failure_sheds_503_with_retry_after(self, tmp_path):
        app = ServeApp(
            ServeConfig(
                store=tmp_path / "store",
                inline_workers=0,
                breaker_failures=1,
                breaker_reset_seconds=60.0,
            )
        )
        try:
            body = json.dumps(small_spec().to_jsonable()).encode()
            with fault_scope("serve.store.lookup:raise"):
                code, payload = app.submit(body)
            assert code == 503
            assert payload["error"]["type"] == "StoreUnavailable"
            assert payload["retry_after_seconds"] > 0
            # The breaker is now open: requests shed fast, without
            # touching the store at all (no fault plan armed here).
            code, payload = app.submit(body)
            assert code == 503
            code, payload = app.report(small_spec().canonical_key)
            assert code == 503
            # Readiness mirrors the breaker; liveness does not.
            code, payload = app.health()
            assert code == 503
            assert payload["live"] is True and payload["ready"] is False
            assert payload["circuit"]["state"] == "open"
            assert app.status()[1]["circuit"]["state"] == "open"
            # Recovery closes the breaker and readiness returns.
            app.breaker.record_success()
            code, payload = app.health()
            assert code == 200 and payload["ready"] is True
            code, _ = app.submit(body)
            assert code == 202
        finally:
            app.close()

    def test_healthz_route_and_retry_after_header(self, http_server):
        app, base = http_server
        code, payload = http_get(f"{base}/healthz")
        assert code == 200
        assert payload["live"] is True and payload["ready"] is True
        # Force not-ready and check the HTTP surface: 503 + Retry-After.
        app._draining = True
        try:
            req = urllib.request.Request(f"{base}/healthz")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req)
            assert excinfo.value.code == 503
            assert int(excinfo.value.headers["Retry-After"]) >= 1
        finally:
            app._draining = False

    def test_drain_sheds_submits_and_flushes_markers(self, tmp_path):
        app = ServeApp(
            ServeConfig(store=tmp_path / "store", inline_workers=0, high_water=4)
        )
        code, ticket = app.submit(json.dumps(small_spec().to_jsonable()).encode())
        assert code == 202
        result = app.drain(timeout=0.2)
        assert result == {"draining": True, "interrupted_runs": 1}
        # New work is shed the moment draining starts.
        code, payload = app.submit(
            json.dumps(small_spec(seed=7).to_jsonable()).encode()
        )
        assert code == 503
        assert payload["error"]["type"] == "Draining"
        # The interrupted run is terminal and its SSE channel got a
        # terminal marker — no client is left hanging.
        code, payload = app.report(ticket["key"])
        assert code == 500
        assert payload["error"]["type"] == "SolveFailed"
        end = app.relay.events(ticket["key"])[-1]
        assert end["kind"] == "end" and end["status"] == "failed"
        assert "draining" in end["error"]

    def test_drain_waits_for_inflight_work(self, tmp_path):
        app = ServeApp(ServeConfig(store=tmp_path / "store", poll_seconds=0.01))
        try:
            code, ticket = app.submit(
                json.dumps(small_spec(seed=401).to_jsonable()).encode()
            )
            assert code == 202
            result = app.drain(timeout=30.0)
            assert result["interrupted_runs"] == 0
            assert app.store.contains(ticket["key"])
        finally:
            app.close()


# ----------------------------------------------------------------------
# Cluster mode: dispatch through a WorkQueue, worker writes the relay
# ----------------------------------------------------------------------
class TestServeClusterMode:
    def test_queue_worker_roundtrip_with_relay(self, tmp_path):
        store_root = tmp_path / "store"
        queue_root = tmp_path / "queue"
        app = ServeApp(
            ServeConfig(store=store_root, queue=queue_root, poll_seconds=0.01)
        )
        try:
            spec = small_spec()
            code, ticket = app.submit(json.dumps(spec.to_jsonable()).encode())
            assert code == 202
            key = ticket["key"]
            deadline = time.monotonic() + 10
            while app.queue.counts()["pending"] == 0:
                assert time.monotonic() < deadline, "dispatcher never queued the run"
                time.sleep(0.01)
            # A batch-mode worker (as `python -m repro.cluster worker
            # --relay ...` would run) drains the queue and writes the
            # relay channel for the SSE side.
            stats = run_worker(
                queue_root,
                store_root,
                poll_seconds=0.01,
                exit_when_empty=True,
                relay=app.relay.root,
            )
            assert stats["completed"] == 1
            deadline = time.monotonic() + 10
            while app.report(key)[0] != 200:
                assert time.monotonic() < deadline, "collector never finalised"
                time.sleep(0.01)
            code, served = app.report(key)
            assert strip_volatile(served) == strip_volatile(solve(spec).to_jsonable())
            events = app.relay.events(key)
            assert events and events[-1]["kind"] == "end"
            assert events[-1]["status"] == "done"
            frames = list(app.event_stream(key, timeout=5))
            assert frames[-1].startswith(b"event: end\n")
            assert app.status()[1]["queue"]["done"] == 1
        finally:
            app.close()

    def test_dead_lettered_run_surfaces_as_500(self, tmp_path):
        app = ServeApp(
            ServeConfig(
                store=tmp_path / "store", queue=tmp_path / "queue", poll_seconds=0.01
            )
        )
        try:
            # Passes registry name validation but fails inside the solver.
            bad = small_spec(solver_params={"approximation_ratio": 1.5})
            code, ticket = app.submit(json.dumps(bad.to_jsonable()).encode())
            assert code == 202
            deadline = time.monotonic() + 10
            while app.queue.counts()["pending"] == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            stats = run_worker(
                tmp_path / "queue",
                tmp_path / "store",
                poll_seconds=0.01,
                exit_when_empty=True,
                relay=app.relay.root,
            )
            assert stats["failed"] == 1
            deadline = time.monotonic() + 10
            while app.report(ticket["key"])[0] == 202:
                assert time.monotonic() < deadline, "collector never saw the failure"
                time.sleep(0.01)
            code, payload = app.report(ticket["key"])
            assert code == 500
            assert payload["error"]["type"] == "SolveFailed"
            # the worker-side relay channel carries the failed end marker
            end = app.relay.events(ticket["key"])[-1]
            assert end["kind"] == "end" and end["status"] == "failed"
        finally:
            app.close()


# ----------------------------------------------------------------------
# Satellites: event tap, dropped-event accounting, timeout diagnostics
# ----------------------------------------------------------------------
class TestEventTap:
    def test_tap_sees_solve_events_and_detaches(self):
        seen = []
        with event_tap(seen.append):
            solve(small_spec(seed=101))
        assert seen, "tap saw no engine events"
        count = len(seen)
        solve(small_spec(seed=102))
        assert len(seen) == count, "tap leaked past its context"

    def test_listeners_outlive_the_log_bound(self):
        instr = Instrumentation(max_events=2)
        seen = []
        instr.add_listener(seen.append)
        for step in range(5):
            instr.emit("oracle", step, queries=1.0)
        assert len(seen) == 5
        assert len(instr.events) == 2
        snapshot = instr.snapshot()
        assert snapshot["dropped_events"] == 3

    def test_solve_on_event_matches_tap(self, tmp_path):
        kinds = set()
        solve(online_spec(), store=tmp_path / "s", on_event=lambda e: kinds.add(e.kind))
        assert "congestion" in kinds


class TestAsReportsCompletedTimeout:
    def test_timeout_names_keys_and_queue_state(self, tmp_path):
        specs = [small_spec(seed=s) for s in (201, 202)]

        async def gather():
            async for _ in as_reports_completed(
                specs,
                tmp_path / "q",
                tmp_path / "s",
                poll_seconds=0.01,
                timeout=0.15,
            ):
                pass

        with pytest.raises(TimeoutError) as excinfo:
            asyncio.run(gather())
        message = str(excinfo.value)
        for spec in specs:
            assert spec.canonical_key[:12] in message
        assert "2 pending" in message
        assert "workers attached" in message

    def test_worker_backoff_still_drains(self, tmp_path):
        # Backoff in the worker loop must not change drain semantics.
        queue = WorkQueue(tmp_path / "q")
        queue.submit([small_spec(seed=301)])
        stats = run_worker(
            queue, tmp_path / "s", poll_seconds=0.01, exit_when_empty=True
        )
        assert stats["completed"] == 1
        store = ReportStore(tmp_path / "s")
        assert store.stats()["entries"] == 1
