"""Deterministic fault-injection and crash-safety tests.

The proof obligations of the robustness PR, layered:

* unit semantics of the injector itself (spec grammar, hit counting,
  deterministic probabilistic rules, scoping);
* the unified :class:`RetryPolicy` (classification, attempt accounting,
  metrics);
* in-process *raise* sweeps over every declared fault point of
  ``store.put`` and the queue lifecycle, asserting the invariants that
  matter: no lost task, no duplicate completion, corrupt entries
  quarantined — never served;
* subprocess *crash* sweeps (``os._exit`` at the exact instruction
  boundary) over a live worker, followed by a clean resume that must
  drain the queue to reports bit-identical to a serial ``solve_many``;
* heartbeat lease renewal (a slow solve under a short lease completes
  exactly once) and poison-task dead-lettering.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import api, faults
from repro.api import ScenarioSpec, SessionSpec, TopologySpec, WorkloadSpec
from repro.api.service import solve
from repro.cluster.queue import WorkQueue
from repro.cluster.worker import run_worker, spawn_local_workers, worker_command
from repro.faults import (
    CRASH_EXIT_CODE,
    FaultPlan,
    FaultRule,
    InjectedFault,
    configure_faults,
    fault_scope,
    parse_fault_spec,
)
from repro.obs import metrics as obs_metrics
import repro.serve.relay  # noqa: F401 - imports declare the relay fault points
from repro.store.report_store import ReportStore
from repro.util.errors import ConfigurationError
from repro.util.retry import RetryPolicy

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")


def _spec(rows: int) -> ScenarioSpec:
    return ScenarioSpec(
        topology=TopologySpec("grid", {"rows": rows, "cols": 3, "capacity": 10.0}),
        workload=WorkloadSpec(
            sessions=(SessionSpec((0, 4, 8), demand=5.0, name="diag"),)
        ),
        solver="max_flow",
        solver_params={"approximation_ratio": 0.8},
    )


def _strip(report_jsonable: dict) -> dict:
    return {
        k: v
        for k, v in report_jsonable.items()
        if k not in ("wall_seconds", "cached", "instrumentation")
    }


def _counter_value(name: str, **labels) -> float:
    return obs_metrics.registry().counter(name, labels=labels or None).value


@pytest.fixture(autouse=True)
def fresh_caches():
    api.clear_caches()
    yield
    api.clear_caches()


@pytest.fixture(autouse=True)
def no_fault_leaks():
    """Faults armed by a test must never leak into the next one."""
    assert faults.active_plan() is None
    yield
    configure_faults(None)


def _worker_env(spec_string: str = "") -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if spec_string:
        env[faults.FAULTS_ENV_VAR] = spec_string
    else:
        env.pop(faults.FAULTS_ENV_VAR, None)
    return env


# ----------------------------------------------------------------------
# The injector: grammar, hit accounting, scoping
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parses_the_full_grammar(self):
        rules = parse_fault_spec(
            "store.put.rename:crash@2, store.get.read:raisex2,"
            "queue.claim.rename:delay=0.05x*,store.put.write:truncate=0.25,"
            "relay.append:raise%0.25~7"
        )
        by_point = {rule.point: rule for rule in rules}
        assert by_point["store.put.rename"].action == "crash"
        assert by_point["store.put.rename"].at == 2
        assert by_point["store.get.read"].times == 2
        assert by_point["queue.claim.rename"].action == "delay"
        assert by_point["queue.claim.rename"].param == 0.05
        assert by_point["queue.claim.rename"].times is None  # x* = unlimited
        assert by_point["store.put.write"].param == 0.25
        assert by_point["relay.append"].probability == 0.25
        assert by_point["relay.append"].seed == 7

    def test_rejects_malformed_specs(self):
        for bad in ("no-colon", "p:", "p:explode", "p:raise@0", "p:raise%1.5"):
            with pytest.raises(ConfigurationError):
                parse_fault_spec(bad)

    def test_raise_fires_at_the_exact_hit(self):
        with fault_scope("p.x:raise@3"):
            faults.point("p.x")
            faults.point("p.x")
            with pytest.raises(InjectedFault):
                faults.point("p.x")
            faults.point("p.x")  # times=1: armed once, then spent

    def test_unlimited_rule_fires_every_hit(self):
        with fault_scope("p.y:raisex*"):
            for _ in range(5):
                with pytest.raises(InjectedFault):
                    faults.point("p.y")

    def test_truncate_only_acts_at_mangle_seams(self):
        with fault_scope("p.z:truncate=0.5x*"):
            faults.point("p.z")  # no data: nothing to truncate, no error
            assert faults.mangle("p.z", b"12345678") == b"1234"

    def test_probabilistic_rules_replay_bit_identically(self):
        def draw() -> list:
            with fault_scope("p.r:raisex*%0.5~1234") as plan:
                outcomes = []
                for _ in range(32):
                    try:
                        faults.point("p.r")
                        outcomes.append(0)
                    except InjectedFault:
                        outcomes.append(1)
                assert plan is not None
                return outcomes

        first, second = draw(), draw()
        assert first == second
        assert 0 < sum(first) < 32  # it actually flips both ways

    def test_scope_restores_the_previous_plan(self):
        assert faults.active_plan() is None
        with fault_scope("a.b:raise"):
            outer = faults.active_plan()
            assert outer is not None
            with fault_scope(None):
                assert faults.active_plan() is None
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_configure_accepts_rules_and_plans(self):
        plan = configure_faults([FaultRule(point="q.q", action="delay", param=0.0)])
        assert isinstance(plan, FaultPlan)
        assert plan.describe() == {"q.q": ["delay"]}
        assert configure_faults(plan) is plan
        assert configure_faults("") is None
        assert faults.active_plan() is None

    def test_disabled_points_are_no_ops(self):
        assert faults.active_plan() is None
        assert faults.point("not.armed") is None
        payload = b"payload"
        assert faults.mangle("not.armed", payload) is payload

    def test_declared_catalogue_covers_the_hardened_seams(self):
        declared = set(faults.declared_points())
        assert {
            "store.put.write",
            "store.put.rename",
            "store.put.publish",
            "store.put.index",
            "store.get.read",
            "queue.claim.rename",
            "queue.claim.lease",
            "queue.complete.rename",
            "queue.complete.lease",
            "queue.requeue.rename",
            "queue.requeue.lease",
            "queue.renew.write",
            "relay.append",
            "relay.tail.read",
        } <= declared
        assert faults.declared_points("store.put") == sorted(
            p for p in declared if p.startswith("store.put")
        )

    def test_hit_and_injection_counters(self):
        hits_before = _counter_value("repro_fault_point_hits_total", point="p.m")
        injected_before = _counter_value(
            "repro_fault_injections_total", point="p.m", action="delay"
        )
        with fault_scope("p.m:delay=0.0"):
            faults.point("p.m")
            faults.point("p.m")
        assert (
            _counter_value("repro_fault_point_hits_total", point="p.m")
            == hits_before + 2
        )
        assert (
            _counter_value("repro_fault_injections_total", point="p.m", action="delay")
            == injected_before + 1
        )

    def test_env_spec_arms_subprocesses(self):
        # The inheritance contract the crash sweep rides on: a child
        # process with REPRO_FAULTS in its env arms the plan at import.
        code = (
            "from repro import faults; import sys;"
            "plan = faults.active_plan();"
            "sys.exit(0 if plan and plan.describe() == {'a.b': ['raise']} else 1)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=_worker_env("a.b:raise"),
            timeout=60,
        )
        assert proc.returncode == 0


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def _policy(self, **overrides) -> RetryPolicy:
        defaults = dict(
            max_attempts=3, floor=0.001, cap=0.002, sleep=lambda _s: None
        )
        defaults.update(overrides)
        return RetryPolicy(**defaults)

    def test_recovers_from_transient_errors(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("blip")
            return "ok"

        recovered_before = _counter_value(
            "repro_retry_total", surface="t.recover", outcome="recovered"
        )
        assert self._policy(surface="t.recover").call(flaky) == "ok"
        assert len(calls) == 3
        assert (
            _counter_value("repro_retry_total", surface="t.recover", outcome="recovered")
            == recovered_before + 1
        )

    def test_exhausts_after_max_attempts(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise TimeoutError("down")

        exhausted_before = _counter_value(
            "repro_retry_total", surface="t.exhaust", outcome="exhausted"
        )
        with pytest.raises(TimeoutError):
            self._policy(surface="t.exhaust").call(always_fails)
        assert len(calls) == 3
        assert (
            _counter_value("repro_retry_total", surface="t.exhaust", outcome="exhausted")
            == exhausted_before + 1
        )

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def missing():
            calls.append(1)
            raise FileNotFoundError("gone for good")

        with pytest.raises(FileNotFoundError):
            self._policy(surface="t.reject").call(missing)
        assert len(calls) == 1  # never retried

    def test_classification(self):
        policy = self._policy()
        assert policy.is_retryable(OSError("x"))
        assert policy.is_retryable(ConnectionError("x"))
        assert policy.is_retryable(TimeoutError("x"))
        assert policy.is_retryable(InjectedFault("x"))
        assert not policy.is_retryable(FileNotFoundError("x"))
        assert not policy.is_retryable(PermissionError("x"))
        assert not policy.is_retryable(ValueError("x"))

    def test_sleeps_follow_the_backoff_schedule(self):
        slept = []
        policy = self._policy(
            max_attempts=4, floor=0.05, cap=0.2, jitter=False, sleep=slept.append
        )

        def always_fails():
            raise OSError("down")

        with pytest.raises(OSError):
            policy.call(always_fails)
        assert slept == [0.05, 0.1, 0.2]

    def test_max_attempts_one_disables_retry(self):
        calls = []

        def fails():
            calls.append(1)
            raise OSError("down")

        with pytest.raises(OSError):
            self._policy(max_attempts=1).call(fails)
        assert len(calls) == 1
        with pytest.raises(ConfigurationError):
            self._policy(max_attempts=0)

    def test_wrap_routes_through_call(self):
        calls = []

        def flaky(value):
            calls.append(1)
            if len(calls) < 2:
                raise OSError("blip")
            return value

        wrapped = self._policy().wrap(flaky)
        assert wrapped("v") == "v"
        assert len(calls) == 2


# ----------------------------------------------------------------------
# Store: read retries, quarantine, interrupted-put sweep
# ----------------------------------------------------------------------
class TestStoreFaults:
    def test_get_retries_through_transient_read_faults(self, tmp_path):
        store = ReportStore(tmp_path, memory_entries=0, durable=False)
        report = solve(_spec(3))
        store.put(report)
        with fault_scope("store.get.read:raisex2"):
            fetched = store.get(report.canonical_key)
        assert fetched is not None
        assert _strip(fetched.to_jsonable()) == _strip(report.to_jsonable())
        assert store.corrupt == 0  # an I/O blip is never a corruption verdict

    def test_persistent_read_failure_degrades_to_miss_not_quarantine(self, tmp_path):
        store = ReportStore(tmp_path, memory_entries=0, durable=False)
        report = solve(_spec(3))
        path = store.put(report)
        with fault_scope("store.get.read:raisex*"):
            assert store.get(report.canonical_key) is None
        assert path.exists()  # the entry survives to be read next time
        assert store.corrupt == 0
        assert store.get(report.canonical_key) is not None

    def test_truncated_gzip_entry_is_quarantined(self, tmp_path):
        store = ReportStore(tmp_path, compress=True, memory_entries=0, durable=False)
        report = solve(_spec(3))
        with fault_scope("store.put.write:truncate=0.5"):
            path = store.put(report)
        assert path.exists()
        assert store.get(report.canonical_key) is None
        assert store.corrupt == 1
        assert not path.exists()  # quarantined out of the object tree
        # The poisoned entry is gone, so a fresh put round-trips again.
        store.put(report)
        assert store.get(report.canonical_key) is not None

    def test_put_interrupted_at_every_point_never_serves_garbage(self, tmp_path):
        points = faults.declared_points("store.put")
        assert len(points) >= 4
        report = solve(_spec(3))
        key = report.canonical_key
        for index, point_name in enumerate(points):
            store = ReportStore(
                tmp_path / f"s{index}", memory_entries=0, durable=False
            )
            with fault_scope(f"{point_name}:raise"):
                try:
                    store.put(report)
                except OSError:
                    pass
            # Invariant: whatever instruction the put died on, a reader
            # sees either nothing or the complete verified report.
            fetched = store.get(key)
            if fetched is not None:
                assert _strip(fetched.to_jsonable()) == _strip(report.to_jsonable())
            assert store.corrupt == 0, point_name
            # And a clean re-put always restores full service.
            store.put(report)
            refetched = store.get(key)
            assert refetched is not None
            assert _strip(refetched.to_jsonable()) == _strip(report.to_jsonable())

    def test_durable_put_round_trips(self, tmp_path):
        store = ReportStore(tmp_path, durable=True)
        report = solve(_spec(3))
        store.put(report)
        store.clear_memory()
        assert store.get(report.canonical_key) is not None


# ----------------------------------------------------------------------
# Queue: interrupted-transition sweep, poison tasks, renewal semantics
# ----------------------------------------------------------------------
def _drain_queue(queue: WorkQueue, worker_id: str = "recovery") -> int:
    """Requeue anything lapsed, then claim/complete until empty."""
    queue.requeue_expired(now=time.time() + queue.lease_seconds + 3600.0)
    completed = 0
    while True:
        task = queue.claim(worker_id)
        if task is None:
            break
        queue.complete(task)
        completed += 1
    return completed


class TestQueueFaults:
    LIFECYCLE_POINTS = (
        "queue.submit.write",
        "queue.submit.rename",
        "queue.submit.publish",
        "queue.claim.rename",
        "queue.claim.lease",
        "queue.complete.rename",
        "queue.complete.lease",
    )

    def test_lifecycle_interrupted_at_every_point_loses_nothing(self, tmp_path):
        spec = _spec(3)
        for index, point_name in enumerate(self.LIFECYCLE_POINTS):
            queue = WorkQueue(tmp_path / f"q{index}", lease_seconds=60.0, durable=False)
            with fault_scope(f"{point_name}:raise"):
                try:
                    queue.submit([spec])
                    task = queue.claim("victim")
                    if task is not None:
                        queue.complete(task)
                except OSError:
                    pass
            # Recovery with no faults armed: submission is idempotent and
            # lapsed claims requeue, so the task must land in done/
            # exactly once — never lost, never duplicated, never stuck.
            queue.submit([spec])
            _drain_queue(queue)
            counts = queue.counts()
            assert counts["done"] == 1, point_name
            assert counts["pending"] == 0, point_name
            assert counts["claimed"] == 0, point_name
            assert counts["failed"] == 0, point_name
            assert queue.failures() == {}, point_name
            # No stray lease or attempts sidecars survive recovery.
            leases = list((queue.root / "leases").glob("*.lease")) if (
                queue.root / "leases"
            ).exists() else []
            assert leases == [], point_name

    def test_requeue_interrupted_then_recovered(self, tmp_path):
        spec = _spec(3)
        for index, point_name in enumerate(
            ("queue.requeue.rename", "queue.requeue.lease")
        ):
            queue = WorkQueue(tmp_path / f"r{index}", lease_seconds=60.0, durable=False)
            queue.submit([spec])
            assert queue.claim("crashed-worker") is not None
            forged_now = time.time() + queue.lease_seconds + 3600.0
            with fault_scope(f"{point_name}:raise"):
                try:
                    queue.requeue_expired(now=forged_now)
                except OSError:
                    pass
            _drain_queue(queue)
            assert queue.counts()["done"] == 1, point_name
            assert queue.failures() == {}, point_name

    def test_poison_task_dead_letters_after_max_attempts(self, tmp_path):
        queue = WorkQueue(
            tmp_path / "q", lease_seconds=60.0, max_attempts=3, durable=False
        )
        spec = _spec(3)
        queue.submit([spec])
        poison_before = _counter_value("repro_queue_poison_total")
        for attempt in range(3):
            task = queue.claim(f"victim-{attempt}")
            assert task is not None, f"attempt {attempt} found nothing to claim"
            # The worker "dies" without completing; its lease lapses.
            queue.requeue_expired(now=time.time() + queue.lease_seconds + 3600.0)
        counts = queue.counts()
        assert counts == {"pending": 0, "claimed": 0, "done": 0, "failed": 1}
        failures = queue.failures()
        assert "poison" in failures[spec.canonical_key]
        assert "max_attempts=3" in failures[spec.canonical_key]
        assert _counter_value("repro_queue_poison_total") == poison_before + 1
        # retry_failed resets the attempt budget: the key is claimable
        # again and completes (it does not instantly re-poison).
        assert queue.retry_failed() == 1
        assert _drain_queue(queue) == 1
        assert queue.counts()["done"] == 1

    def test_renew_extends_lease_and_detects_lost_ownership(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_seconds=60.0, durable=False)
        queue.submit([_spec(3)])
        task = queue.claim("original")
        assert task is not None
        renewals_before = _counter_value("repro_lease_renewals_total")
        future = time.time() + 1000.0
        assert queue.renew(task, now=future) is True
        assert _counter_value("repro_lease_renewals_total") == renewals_before + 1
        lease = queue._read_lease(task.name)
        assert lease["expires_at"] == pytest.approx(future + queue.lease_seconds)
        assert lease["renewals"] == 1
        # The renewed lease is what keeps requeue_expired's hands off.
        assert queue.requeue_expired(now=future + 1.0) == 0
        # Ownership loss: the lease lapses far enough out, a successor
        # re-claims the same name, and the original's renew answers False.
        assert queue.requeue_expired(now=future + queue.lease_seconds + 1.0) == 1
        successor = queue.claim("successor")
        assert successor is not None
        assert queue.renew(task) is False
        # The original's complete is the idempotent no-op; the successor
        # still owns the task and completes it exactly once.
        queue.complete(task)
        assert queue.counts()["claimed"] == 1
        queue.complete(successor)
        assert queue.counts()["done"] == 1


# ----------------------------------------------------------------------
# Heartbeat: a slow solve under a short lease completes exactly once
# ----------------------------------------------------------------------
class TestHeartbeat:
    def _run_two_workers(self, tmp_path, monkeypatch, heartbeat: bool) -> dict:
        import repro.api.service as service_module

        real_solve = service_module.solve
        solve_calls = []
        solve_lock = threading.Lock()

        def slow_solve(spec, **kwargs):
            with solve_lock:
                solve_calls.append(threading.current_thread().name)
            time.sleep(1.2)
            return real_solve(spec, **kwargs)

        monkeypatch.setattr(service_module, "solve", slow_solve)
        queue = WorkQueue(tmp_path / "q", lease_seconds=0.3, durable=False)
        queue.submit([_spec(3)])
        store = ReportStore(tmp_path / "s", durable=False)
        results = {}

        def worker(name: str) -> None:
            results[name] = run_worker(
                queue,
                store,
                worker_id=name,
                poll_seconds=0.02,
                exit_when_empty=True,
                heartbeat=heartbeat,
            )

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        return {
            "queue": queue,
            "stats": results,
            "solve_calls": len(solve_calls),
        }

    def test_heartbeat_prevents_double_execution(self, tmp_path, monkeypatch):
        renewals_before = _counter_value("repro_lease_renewals_total")
        expirations_before = _counter_value("repro_queue_lease_expirations_total")
        outcome = self._run_two_workers(tmp_path, monkeypatch, heartbeat=True)
        # The solve takes 4x the lease window, yet renewal keeps the
        # claim owned: no second worker ever re-executes it.
        assert outcome["solve_calls"] == 1
        assert outcome["queue"].counts()["done"] == 1
        assert sum(s["completed"] for s in outcome["stats"].values()) == 1
        assert _counter_value("repro_lease_renewals_total") > renewals_before
        assert (
            _counter_value("repro_queue_lease_expirations_total")
            == expirations_before
        )

    def test_without_heartbeat_completion_is_still_exactly_once(
        self, tmp_path, monkeypatch
    ):
        # The pre-heartbeat regression this PR fixes: the lease lapses
        # mid-solve and another worker re-executes — and because the
        # lease is stolen again before each solve lands, the task
        # ping-pongs every window without ever completing, until
        # max_attempts dead-letters it as poison.  Even in that storm
        # the safety invariants hold: every late complete() is an
        # idempotent no-op (at most one completion) and the task ends in
        # exactly one terminal state.
        outcome = self._run_two_workers(tmp_path, monkeypatch, heartbeat=False)
        assert outcome["solve_calls"] >= 2  # double execution really happened
        counts = outcome["queue"].counts()
        assert counts["done"] + counts["failed"] == 1
        assert counts["pending"] == 0 and counts["claimed"] == 0


# ----------------------------------------------------------------------
# Crash sweep: kill a live worker at every fault point, then resume
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_baseline():
    """Canonical key → stripped report for the sweep's two specs."""
    api.clear_caches()
    specs = [_spec(3), _spec(4)]
    reports = api.solve_many(specs, jobs=1)
    api.clear_caches()
    return (
        specs,
        {r.canonical_key: _strip(r.to_jsonable()) for r in reports},
    )


CRASH_POINTS = (
    "store.put.write",
    "store.put.rename",
    "store.put.publish",
    "store.put.index",
    "queue.claim.rename",
    "queue.claim.lease",
    "queue.complete.rename",
    "queue.complete.lease",
)


class TestCrashSweep:
    @pytest.mark.parametrize("point_name", CRASH_POINTS)
    def test_kill_at_point_then_resume_loses_nothing(
        self, tmp_path, point_name, serial_baseline
    ):
        specs, baseline = serial_baseline
        queue_root = tmp_path / "queue"
        store_root = tmp_path / "store"
        queue = WorkQueue(queue_root, lease_seconds=0.5)
        queue.submit(specs)
        # A live worker subprocess inherits the fault plan from its
        # environment and dies — os._exit, no cleanup — at the armed
        # point, mid-drain.
        proc = subprocess.run(
            worker_command(
                queue_root,
                store_root,
                poll_seconds=0.05,
                exit_when_empty=True,
                lease_seconds=0.5,
            ),
            env=_worker_env(f"{point_name}:crash"),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == CRASH_EXIT_CODE, (
            f"worker did not crash at {point_name}: "
            f"rc={proc.returncode} stderr={proc.stderr[-500:]}"
        )
        assert f"injected crash at {point_name}" in proc.stderr
        # Clean resume in-process: lapsed claims requeue, and the batch
        # must complete with every report bit-identical to serial.
        queue.requeue_expired(now=time.time() + 3600.0)
        run_worker(queue, store_root, poll_seconds=0.02, exit_when_empty=True)
        counts = queue.counts()
        assert counts["done"] == len(specs), (point_name, counts)
        assert counts["pending"] == 0 and counts["claimed"] == 0, point_name
        assert queue.failures() == {}, point_name
        store = ReportStore(store_root)
        store.clear_memory()
        for spec in specs:
            fetched = store.get(spec.canonical_key)
            assert fetched is not None, (point_name, spec.canonical_key)
            assert _strip(fetched.to_jsonable()) == baseline[spec.canonical_key], (
                point_name
            )
        assert store.corrupt == 0, point_name


class TestCrashResumeBitIdentity:
    def test_crashed_then_resumed_two_worker_drain_matches_serial(self, tmp_path):
        # The headline acceptance criterion: a worker killed mid-batch,
        # then a fresh 2-worker drain over the same queue + store, must
        # produce exactly the serial solve_many result — no lost task,
        # no duplicate, no divergent report.
        specs = [_spec(rows) for rows in (3, 4, 5, 6)]
        serial = [
            _strip(r.to_jsonable()) for r in api.solve_many(specs, jobs=1)
        ]
        api.clear_caches()
        queue_root = tmp_path / "queue"
        store_root = tmp_path / "store"
        queue = WorkQueue(queue_root, lease_seconds=0.5)
        queue.submit(specs, num_shards=2)
        proc = subprocess.run(
            worker_command(
                queue_root,
                store_root,
                poll_seconds=0.05,
                exit_when_empty=True,
                lease_seconds=0.5,
            ),
            env=_worker_env("store.put.publish:crash@2"),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr[-500:]
        assert queue.counts()["done"] < len(specs)  # it really died mid-batch
        # Resume: two clean subprocess workers. The crashed worker's
        # claim re-enters pending via natural lease expiry (0.5s) — no
        # forged clocks — and the drain completes.
        with spawn_local_workers(
            2,
            queue_root,
            store_root,
            poll_seconds=0.05,
            exit_when_empty=True,
            lease_seconds=0.5,
            shutdown_timeout=240,
        ):
            pass
        counts = queue.counts()
        assert counts["done"] == len(specs)
        assert counts["pending"] == 0 and counts["claimed"] == 0
        assert queue.failures() == {}
        store = ReportStore(store_root)
        resumed = []
        for spec in specs:
            fetched = store.get(spec.canonical_key)
            assert fetched is not None
            resumed.append(_strip(fetched.to_jsonable()))
        assert resumed == serial
