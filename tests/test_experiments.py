"""Tests for the experiment harness (settings, runner, every table/figure)."""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    clear_caches,
    flat_instance,
    flat_ratio_sweep,
    limited_tree_study,
    online_sweep_runs,
    sweep_instance,
    sweep_runs,
)
from repro.experiments.settings import (
    flat_setting_for_scale,
    limited_tree_setting_for_scale,
    paper_flat_setting,
    paper_sweep_setting,
    quick_flat_setting,
    quick_sweep_setting,
    sweep_setting_for_scale,
    tiny_flat_setting,
)
from repro.util.errors import ConfigurationError
from repro.util.serialization import load_json

SCALE = "tiny"


@pytest.fixture(scope="module", autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestSettings:
    def test_scale_resolution(self):
        assert flat_setting_for_scale("tiny") == tiny_flat_setting()
        assert flat_setting_for_scale("quick") == quick_flat_setting()
        assert flat_setting_for_scale("paper") == paper_flat_setting()
        assert sweep_setting_for_scale("quick") == quick_sweep_setting()
        assert sweep_setting_for_scale("paper") == paper_sweep_setting()

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            flat_setting_for_scale("huge")
        with pytest.raises(ConfigurationError):
            sweep_setting_for_scale("huge")
        with pytest.raises(ConfigurationError):
            limited_tree_setting_for_scale("huge")

    def test_flat_setting_builds_consistent_instance(self):
        setting = tiny_flat_setting()
        network = setting.build_network()
        sessions = setting.build_sessions(network)
        assert len(sessions) == len(setting.session_sizes)
        for session, size in zip(sessions, setting.session_sizes):
            assert session.size == size
            session.validate_against(network)

    def test_flat_setting_routing_kinds(self):
        setting = tiny_flat_setting()
        network = setting.build_network()
        assert not setting.build_routing(network, "ip").is_dynamic
        assert setting.build_routing(network, "dynamic").is_dynamic
        with pytest.raises(ConfigurationError):
            setting.build_routing(network, "bogus")

    def test_sweep_setting_builds_sessions(self):
        setting = sweep_setting_for_scale("tiny")
        network = setting.build_network()
        sessions = setting.build_sessions(network, 2, 3)
        assert len(sessions) == 2
        assert all(s.size == 3 for s in sessions)


class TestRunner:
    def test_flat_instance_cached(self):
        a = flat_instance(SCALE, "ip")
        b = flat_instance(SCALE, "ip")
        assert a is b

    def test_flat_ratio_sweep_keys(self):
        solutions = flat_ratio_sweep(SCALE, "ip", "maxflow")
        assert set(solutions) == set(flat_setting_for_scale(SCALE).ratios)
        for solution in solutions.values():
            assert solution.is_feasible(tolerance=1e-6)

    def test_flat_ratio_sweep_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            flat_ratio_sweep(SCALE, "ip", "bogus")

    def test_limited_tree_study_shapes(self):
        study = limited_tree_study(SCALE, "ip")
        setting = limited_tree_setting_for_scale(SCALE)
        assert [p.tree_limit for p in study.points] == list(setting.tree_limits)
        for point in study.points:
            assert point.random_throughput <= study.fractional.overall_throughput + 1e-6
            for sigma in setting.sigmas:
                assert point.online_throughput[sigma] > 0

    def test_sweep_runs_cover_grid(self):
        instance = sweep_instance(SCALE)
        runs = sweep_runs(SCALE, "maxflow")
        assert set(runs) == set(instance.sessions)
        for solution in runs.values():
            assert solution.is_feasible(tolerance=1e-6)

    def test_online_sweep_runs(self):
        runs = online_sweep_runs(SCALE, tree_limit=2)
        assert len(runs) > 0
        for solution in runs.values():
            assert solution.is_feasible(tolerance=1e-6)


class TestExperimentRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {"table2", "table4", "table7", "table8"} | {
            f"fig{i}" for i in range(2, 20)
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_every_experiment_runs_at_tiny_scale(experiment_id, tmp_path):
    result = run_experiment(experiment_id, scale=SCALE)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.scale == SCALE
    assert result.rendered
    assert result.data
    # Results must be JSON-serialisable and round-trip through disk.
    path = result.save(tmp_path)
    loaded = load_json(path)
    assert loaded["experiment_id"] == experiment_id


class TestExperimentContent:
    def test_table2_columns_match_ratios(self):
        result = run_experiment("table2", scale=SCALE)
        ratios = flat_setting_for_scale(SCALE).ratios
        assert set(result.data["columns"]) == {f"{r:g}" for r in ratios}
        column = next(iter(result.data["columns"].values()))
        assert "overall_throughput" in column
        assert "rate_session_1" in column

    def test_table4_reports_prescale_cost(self):
        result = run_experiment("table4", scale=SCALE)
        column = next(iter(result.data["columns"].values()))
        assert "prescale_oracle_calls" in column

    def test_table7_reports_ip_comparison(self):
        result = run_experiment("table7", scale=SCALE)
        assert "throughput_improvement_vs_ip" in result.data
        # Arbitrary routing can only help (within FPTAS noise); the size of
        # the gain is topology dependent, so only the direction is asserted.
        for value in result.data["throughput_improvement_vs_ip"].values():
            assert np.isfinite(value)
            assert value > -0.15

    def test_fig2_contains_distribution_series(self):
        result = run_experiment("fig2", scale=SCALE)
        sessions = result.data["sessions"]
        assert "session_1" in sessions
        series = next(iter(sessions["session_1"].values()))
        assert series["cumulative_fraction"][-1] == pytest.approx(1.0)

    def test_fig5_series_lengths(self):
        result = run_experiment("fig5", scale=SCALE)
        limits = result.data["tree_limits"]
        assert len(result.data["random"]["throughput"]) == len(limits)
        for series in result.data["online"].values():
            assert len(series["throughput"]) == len(limits)

    def test_fig12_surface_shape(self):
        result = run_experiment("fig12", scale=SCALE)
        counts = result.data["session_counts"]
        sizes = result.data["session_sizes"]
        values = np.asarray(result.data["values"])
        assert values.shape == (len(counts), len(sizes))
        assert np.all(values > 0)

    def test_fig16_ratios_at_most_one(self):
        result = run_experiment("fig16", scale=SCALE)
        values = np.asarray(result.data["values"])
        # MaxConcurrentFlow can never beat MaxFlow on overall throughput by
        # more than FPTAS noise.
        assert np.all(values <= 1.15)

    def test_fig18_and_fig19_ratios_bounded(self):
        for experiment_id in ("fig18", "fig19"):
            result = run_experiment(experiment_id, scale=SCALE)
            for surface in result.data["surfaces"].values():
                values = np.asarray(surface["values"])
                assert np.all(values >= 0.0)
                assert np.all(values <= 1.5)
