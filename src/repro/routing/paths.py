"""Unicast path representation.

A :class:`UnicastPath` records the node sequence and — crucially for the
flow algorithms — the physical edge indices it traverses, so that
per-edge quantities (lengths, capacities, congestion) can be gathered
with a single NumPy fancy-index instead of repeated dictionary lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.topology.network import PhysicalNetwork
from repro.util.errors import InvalidNetworkError


@dataclass(frozen=True)
class UnicastPath:
    """A simple path between two end systems in the physical network.

    Attributes
    ----------
    nodes:
        The vertex sequence ``(source, ..., destination)``.
    edge_ids:
        Physical edge indices traversed, aligned with consecutive node
        pairs (``len(edge_ids) == len(nodes) - 1``).
    """

    nodes: Tuple[int, ...]
    edge_ids: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "edge_ids", np.asarray(self.edge_ids, dtype=np.int64)
        )
        if len(self.nodes) < 1:
            raise InvalidNetworkError("a path must contain at least one node")
        if self.edge_ids.shape[0] != len(self.nodes) - 1:
            raise InvalidNetworkError(
                f"path with {len(self.nodes)} nodes must have "
                f"{len(self.nodes) - 1} edges, got {self.edge_ids.shape[0]}"
            )

    @property
    def source(self) -> int:
        """First node of the path."""
        return self.nodes[0]

    @property
    def destination(self) -> int:
        """Last node of the path."""
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        """Number of physical links traversed."""
        return int(self.edge_ids.shape[0])

    def length(self, edge_weights: np.ndarray) -> float:
        """Total path length under the per-edge weight vector."""
        if self.hop_count == 0:
            return 0.0
        return float(np.asarray(edge_weights, dtype=float)[self.edge_ids].sum())

    def bottleneck_capacity(self, capacities: np.ndarray) -> float:
        """Minimum capacity along the path (``inf`` for a trivial path)."""
        if self.hop_count == 0:
            return float("inf")
        return float(np.asarray(capacities, dtype=float)[self.edge_ids].min())

    def validate(self, network: PhysicalNetwork) -> None:
        """Check the path is consistent with ``network``; raise otherwise."""
        for a, b, eid in zip(self.nodes[:-1], self.nodes[1:], self.edge_ids):
            if not network.has_edge(a, b):
                raise InvalidNetworkError(f"path uses missing edge ({a}, {b})")
            if network.edge_id(a, b) != int(eid):
                raise InvalidNetworkError(
                    f"path edge ({a}, {b}) has index {network.edge_id(a, b)}, "
                    f"recorded {int(eid)}"
                )
        seen = set()
        for node in self.nodes:
            if node in seen:
                raise InvalidNetworkError(f"path revisits node {node}")
            seen.add(node)

    @classmethod
    def from_nodes(cls, network: PhysicalNetwork, nodes: Sequence[int]) -> "UnicastPath":
        """Build a path from a node sequence, resolving edge indices."""
        nodes = tuple(int(n) for n in nodes)
        edge_ids = np.asarray(
            [network.edge_id(a, b) for a, b in zip(nodes[:-1], nodes[1:])],
            dtype=np.int64,
        )
        return cls(nodes=nodes, edge_ids=edge_ids)

    def __len__(self) -> int:
        return len(self.nodes)
