"""Unicast routing substrate.

The paper's overlay model maps every overlay edge (a pair of session
members) onto a unicast route in the physical network:

* **Fixed IP routing** (Sections II-IV): the route between two end systems
  is the shortest path computed once over the physical topology (hop
  metric with deterministic tie-breaking), exactly like static
  shortest-path IP routing.
* **Arbitrary / dynamic routing** (Section V): the route may be any
  unicast path; the algorithms pick the shortest path under the *current*
  exponential length function each time the spanning-tree oracle runs.

Both are exposed behind the :class:`RoutingModel` interface so every
algorithm in :mod:`repro.core` can switch between them with a flag, which
is how the paper quantifies the impact of IP routing.
"""

from repro.routing.paths import UnicastPath
from repro.routing.shortest_path import (
    ShortestPathQuery,
    shortest_path_tree,
    reconstruct_path,
    pairwise_distances,
    single_pair_shortest_path,
)
from repro.routing.base import RoutingModel
from repro.routing.ip_routing import FixedIPRouting
from repro.routing.dynamic import DynamicRouting

__all__ = [
    "UnicastPath",
    "ShortestPathQuery",
    "shortest_path_tree",
    "reconstruct_path",
    "pairwise_distances",
    "single_pair_shortest_path",
    "RoutingModel",
    "FixedIPRouting",
    "DynamicRouting",
]
