"""Shortest-path primitives over :class:`PhysicalNetwork`.

Thin, vectorised wrappers around :func:`scipy.sparse.csgraph.dijkstra`.
The flow algorithms need two operations:

* per-source shortest-path trees under a given per-edge weight vector
  (used by both routing models), and
* path reconstruction from the predecessor matrix into
  :class:`~repro.routing.paths.UnicastPath` objects with physical edge
  indices resolved.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.routing.paths import UnicastPath
from repro.topology.network import PhysicalNetwork
from repro.util.errors import InfeasibleProblemError, InvalidNetworkError


def _weight_matrix(network: PhysicalNetwork, edge_weights: Optional[np.ndarray]):
    """Validated CSR adjacency under ``edge_weights``.

    This is the single validation point for caller-supplied weights: the
    shape and non-negativity checks run exactly once per Dijkstra call,
    and the zero clamp (see :func:`shortest_path_tree`) copies the weight
    vector only when a zero is actually present.
    """
    if edge_weights is None:
        weights = np.ones(network.num_edges, dtype=float)
    else:
        weights = np.asarray(edge_weights, dtype=float)
        if weights.shape != (network.num_edges,):
            raise InvalidNetworkError(
                f"edge_weights must have shape ({network.num_edges},), "
                f"got {weights.shape}"
            )
        if np.any(weights < 0):
            raise InvalidNetworkError("edge weights must be non-negative")
        if np.any(weights == 0):
            weights = np.where(weights == 0, np.finfo(float).tiny, weights)
    return network.adjacency_matrix(weights)


def shortest_path_tree(
    network: PhysicalNetwork,
    sources: Sequence[int],
    edge_weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dijkstra from every node in ``sources``.

    Returns ``(distances, predecessors)`` with shape
    ``(len(sources), num_nodes)``.  ``edge_weights=None`` means the hop
    metric (all weights 1), which is how fixed IP routes are computed.

    Note: zero weights are clamped to a tiny positive value because the
    CSR adjacency representation cannot distinguish a zero-weight edge
    from a missing edge.  The exponential length functions used by the
    FPTAS are strictly positive, so the clamp only matters for degenerate
    caller-provided weights.
    """
    src = np.asarray(list(sources), dtype=np.int64)
    if src.size == 0:
        return (
            np.zeros((0, network.num_nodes)),
            np.zeros((0, network.num_nodes), dtype=np.int64),
        )
    if np.any(src < 0) or np.any(src >= network.num_nodes):
        raise InvalidNetworkError("source outside the network's node range")
    matrix = _weight_matrix(network, edge_weights)
    distances, predecessors = dijkstra(
        matrix, directed=False, indices=src, return_predecessors=True
    )
    return distances, predecessors


def reconstruct_path(
    network: PhysicalNetwork,
    predecessors_row: np.ndarray,
    source: int,
    destination: int,
) -> UnicastPath:
    """Rebuild the path ``source -> destination`` from one predecessor row.

    Raises :class:`InfeasibleProblemError` when the destination is
    unreachable from the source.
    """
    if source == destination:
        return UnicastPath(nodes=(int(source),), edge_ids=np.empty(0, dtype=np.int64))
    nodes = [int(destination)]
    current = int(destination)
    limit = network.num_nodes + 1
    for _ in range(limit):
        prev = int(predecessors_row[current])
        if prev < 0:
            raise InfeasibleProblemError(
                f"node {destination} is unreachable from node {source}"
            )
        nodes.append(prev)
        current = prev
        if current == source:
            break
    else:  # pragma: no cover - defensive; predecessor chains cannot cycle
        raise InfeasibleProblemError("predecessor chain did not terminate")
    nodes.reverse()
    return UnicastPath.from_nodes(network, nodes)


def single_pair_shortest_path(
    network: PhysicalNetwork,
    source: int,
    destination: int,
    edge_weights: Optional[np.ndarray] = None,
) -> UnicastPath:
    """Shortest path between a single pair of nodes."""
    distances, predecessors = shortest_path_tree(network, [source], edge_weights)
    if not np.isfinite(distances[0, destination]):
        raise InfeasibleProblemError(
            f"node {destination} is unreachable from node {source}"
        )
    return reconstruct_path(network, predecessors[0], source, destination)


def pairwise_distances(
    network: PhysicalNetwork,
    nodes: Sequence[int],
    edge_weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Distance matrix restricted to ``nodes`` (square, in ``nodes`` order)."""
    nodes = list(int(n) for n in nodes)
    distances, _ = shortest_path_tree(network, nodes, edge_weights)
    return distances[:, nodes]
