"""Shortest-path primitives over :class:`PhysicalNetwork`.

Thin, vectorised wrappers around :func:`scipy.sparse.csgraph.dijkstra`.
The flow algorithms need two operations:

* per-source shortest-path trees under a given per-edge weight vector
  (used by both routing models), and
* path reconstruction from the predecessor matrix into
  :class:`~repro.routing.paths.UnicastPath` objects with physical edge
  indices resolved.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.routing.paths import UnicastPath
from repro.topology.network import PhysicalNetwork
from repro.util.errors import InfeasibleProblemError, InvalidNetworkError


def _weight_matrix(network: PhysicalNetwork, edge_weights: Optional[np.ndarray]):
    """Validated CSR adjacency under ``edge_weights``.

    This is the single validation point for caller-supplied weights: the
    shape and non-negativity checks run exactly once per Dijkstra call,
    and the zero clamp (see :func:`shortest_path_tree`) copies the weight
    vector only when a zero is actually present.

    The returned matrix is the network's shared scratch CSR adjacency
    (:meth:`PhysicalNetwork.csr_adjacency_inplace`): only its ``.data``
    array is refreshed per call, so a Dijkstra invocation performs zero
    CSR builds.  It is consumed immediately by the caller and never
    escapes this module.
    """
    if edge_weights is None:
        weights = np.ones(network.num_edges, dtype=float)
    else:
        weights = np.asarray(edge_weights, dtype=float)
        if weights.shape != (network.num_edges,):
            raise InvalidNetworkError(
                f"edge_weights must have shape ({network.num_edges},), "
                f"got {weights.shape}"
            )
        if np.any(weights < 0):
            raise InvalidNetworkError("edge weights must be non-negative")
        if np.any(weights == 0):
            weights = np.where(weights == 0, np.finfo(float).tiny, weights)
    return network.csr_adjacency_inplace(weights)


def shortest_path_tree(
    network: PhysicalNetwork,
    sources: Sequence[int],
    edge_weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dijkstra from every node in ``sources``.

    Returns ``(distances, predecessors)`` with shape
    ``(len(sources), num_nodes)``.  ``edge_weights=None`` means the hop
    metric (all weights 1), which is how fixed IP routes are computed.

    Note: zero weights are clamped to a tiny positive value because the
    CSR adjacency representation cannot distinguish a zero-weight edge
    from a missing edge.  The exponential length functions used by the
    FPTAS are strictly positive, so the clamp only matters for degenerate
    caller-provided weights.
    """
    src = np.asarray(list(sources), dtype=np.int64)
    if src.size == 0:
        return (
            np.zeros((0, network.num_nodes)),
            np.zeros((0, network.num_nodes), dtype=np.int64),
        )
    if np.any(src < 0) or np.any(src >= network.num_nodes):
        raise InvalidNetworkError("source outside the network's node range")
    matrix = _weight_matrix(network, edge_weights)
    distances, predecessors = dijkstra(
        matrix, directed=False, indices=src, return_predecessors=True
    )
    return distances, predecessors


def _walk_predecessors(
    network: PhysicalNetwork,
    predecessors_row: np.ndarray,
    source: int,
    destination: int,
) -> Tuple[int, ...]:
    """Node sequence ``source .. destination`` from one predecessor row.

    Raises :class:`InfeasibleProblemError` when the destination is
    unreachable from the source.
    """
    nodes = [int(destination)]
    current = int(destination)
    limit = network.num_nodes + 1
    for _ in range(limit):
        prev = int(predecessors_row[current])
        if prev < 0:
            raise InfeasibleProblemError(
                f"node {destination} is unreachable from node {source}"
            )
        nodes.append(prev)
        current = prev
        if current == source:
            break
    else:  # pragma: no cover - defensive; predecessor chains cannot cycle
        raise InfeasibleProblemError("predecessor chain did not terminate")
    nodes.reverse()
    return tuple(nodes)


def reconstruct_path(
    network: PhysicalNetwork,
    predecessors_row: np.ndarray,
    source: int,
    destination: int,
) -> UnicastPath:
    """Rebuild the path ``source -> destination`` from one predecessor row.

    Raises :class:`InfeasibleProblemError` when the destination is
    unreachable from the source.
    """
    if source == destination:
        return UnicastPath(nodes=(int(source),), edge_ids=np.empty(0, dtype=np.int64))
    nodes = _walk_predecessors(network, predecessors_row, source, destination)
    return UnicastPath.from_nodes(network, nodes)


def single_pair_shortest_path(
    network: PhysicalNetwork,
    source: int,
    destination: int,
    edge_weights: Optional[np.ndarray] = None,
) -> UnicastPath:
    """Shortest path between a single pair of nodes.

    Routes through :func:`shortest_path_tree` and therefore the cached
    CSR structure, so ad-hoc callers (the LP baseline, metrics) share the
    hot path's zero-build Dijkstra setup.
    """
    distances, predecessors = shortest_path_tree(network, [source], edge_weights)
    if not np.isfinite(distances[0, destination]):
        raise InfeasibleProblemError(
            f"node {destination} is unreachable from node {source}"
        )
    return reconstruct_path(network, predecessors[0], source, destination)


def pairwise_distances(
    network: PhysicalNetwork,
    nodes: Sequence[int],
    edge_weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Distance matrix restricted to ``nodes`` (square, in ``nodes`` order).

    Routes through :func:`shortest_path_tree` and therefore the cached
    CSR structure, like every other Dijkstra entry point in this module.
    """
    nodes = list(int(n) for n in nodes)
    distances, _ = shortest_path_tree(network, nodes, edge_weights)
    return distances[:, nodes]


class ShortestPathQuery:
    """Retained result of one (multi-source) Dijkstra invocation.

    The dynamic-routing oracle needs, per call, both the member-pair
    *distances* (to weight the overlay MST) and the chosen tree's
    *paths*.  Both come out of the same Dijkstra run: scipy computes
    every source row independently, so the predecessor row retained here
    is bit-identical to the row a fresh single-source run would return.
    Holding on to the ``(distances, predecessors)`` pair therefore lets
    one invocation answer distance lookups *and* reconstruct any
    ``source -> destination`` path for ``source`` in ``sources`` — the
    pre-change pipeline re-ran a fresh Dijkstra per path source and
    discarded this matrix.
    """

    __slots__ = (
        "_network",
        "_sources",
        "_row_of",
        "_path_cache",
        "distances",
        "predecessors",
    )

    def __init__(
        self,
        network: PhysicalNetwork,
        sources: Sequence[int],
        distances: np.ndarray,
        predecessors: np.ndarray,
        path_cache: Optional[dict] = None,
    ) -> None:
        self._network = network
        self._sources = tuple(int(s) for s in sources)
        self._row_of = {s: i for i, s in enumerate(self._sources)}
        # Optional cross-query cache of UnicastPaths keyed by their node
        # sequence (the sequence pins the path down completely, edge ids
        # included, so sharing the immutable object is bit-safe).  The
        # solvers' runs concentrate on a handful of distinct paths, so a
        # caller-owned dict turns most reconstructions into one dict hit.
        self._path_cache = path_cache
        self.distances = distances
        self.predecessors = predecessors

    @classmethod
    def run(
        cls,
        network: PhysicalNetwork,
        sources: Sequence[int],
        edge_weights: Optional[np.ndarray] = None,
        path_cache: Optional[dict] = None,
    ) -> "ShortestPathQuery":
        """One Dijkstra from every node in ``sources``, retained."""
        distances, predecessors = shortest_path_tree(network, sources, edge_weights)
        return cls(network, sources, distances, predecessors, path_cache)

    @property
    def sources(self) -> Tuple[int, ...]:
        """The Dijkstra sources, in row order."""
        return self._sources

    def row_index(self, source: int) -> int:
        """Row of ``source`` in the distance/predecessor matrices."""
        try:
            return self._row_of[int(source)]
        except KeyError as exc:
            raise InvalidNetworkError(
                f"node {source} is not a source of this query"
            ) from exc

    def distance_submatrix(self, members: Sequence[int]) -> np.ndarray:
        """``(len(members), len(members))`` distances between ``members``.

        Every member must be one of the query's sources.  Row/column
        order follows ``members``, matching
        :meth:`~repro.routing.base.RoutingModel.pair_lengths`.
        """
        members = [int(m) for m in members]
        rows = [self.row_index(m) for m in members]
        return self.distances[rows][:, members]

    def path(self, source: int, destination: int) -> UnicastPath:
        """Reconstruct ``source -> destination`` from the retained rows."""
        source, destination = int(source), int(destination)
        if source == destination:
            return UnicastPath(nodes=(source,), edge_ids=np.empty(0, dtype=np.int64))
        row = self.row_index(source)
        if not np.isfinite(self.distances[row, destination]):
            raise InfeasibleProblemError(
                f"nodes {source} and {destination} are disconnected"
            )
        nodes = _walk_predecessors(
            self._network, self.predecessors[row], source, destination
        )
        if self._path_cache is None:
            return UnicastPath.from_nodes(self._network, nodes)
        path = self._path_cache.get(nodes)
        if path is None:
            path = UnicastPath.from_nodes(self._network, nodes)
            self._path_cache[nodes] = path
        return path

    def paths_for_pairs(self, pairs: Sequence[Tuple[int, int]]):
        """Paths for canonical pairs, each from its smaller node's row.

        Orientation matches :meth:`DynamicRouting.paths_for_pairs`: the
        path runs from the canonical (smaller) node, so reconstruction
        from the retained predecessor rows yields exactly the paths the
        per-pair Dijkstra loop produced.
        """
        out = {}
        for u, v in pairs:
            u, v = (int(u), int(v)) if u < v else (int(v), int(u))
            out[(u, v)] = self.path(u, v)
        return out
