"""Arbitrary (dynamic) unicast routing.

Section V of the paper asks how much fixed IP routing constrains the
achievable capacity utilization.  To answer it, the overlay tree is
redefined so that each tree link may use *any* unicast path, and the
algorithms pick, at every oracle invocation, the shortest path under the
current exponential length function.  This class implements exactly that:
every call recomputes shortest paths with the supplied per-edge lengths.

Two call shapes are offered.  The classic :meth:`pair_lengths` /
:meth:`paths_for_pairs` pair recomputes Dijkstra per call (the
pre-fast-path pipeline, kept as the ablation baseline and for ad-hoc
callers).  The session-query shape — :meth:`query` returning a
:class:`~repro.routing.shortest_path.ShortestPathQuery` — runs *one*
Dijkstra and retains both distances and predecessors, so an oracle call
derives its MST weights and reconstructs the chosen tree's paths from
the same run (bit-identical rows, hence bit-identical paths).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.routing.base import PairKey, RoutingModel, pair_key
from repro.routing.paths import UnicastPath
from repro.routing.shortest_path import (
    ShortestPathQuery,
    reconstruct_path,
    shortest_path_tree,
)
from repro.topology.network import PhysicalNetwork
from repro.util.errors import InfeasibleProblemError


class DynamicRouting(RoutingModel):
    """Shortest-path routing under the caller-supplied length function."""

    def __init__(self, network: PhysicalNetwork) -> None:
        super().__init__(network)
        # Cross-query UnicastPath cache keyed by node sequence (shared
        # with every ShortestPathQuery this model issues).  The sequence
        # fully determines the path — edge ids included — and paths are
        # immutable, so cache hits are bit-identical to fresh builds.
        # Unbounded, like the oracle's tree memoization and for the same
        # reason: runs concentrate on a handful of distinct paths, so
        # the population is bounded by distinct shortest paths actually
        # chosen, not by iteration count.
        self._paths_by_nodes: Dict[tuple, UnicastPath] = {}

    @property
    def is_dynamic(self) -> bool:
        return True

    def pair_lengths(
        self,
        members: Sequence[int],
        edge_lengths: np.ndarray,
    ) -> np.ndarray:
        """Shortest-path distance between every member pair under the lengths."""
        members = [int(m) for m in members]
        n = len(members)
        if n < 2:
            return np.zeros((n, n), dtype=float)
        distances, _ = shortest_path_tree(self._network, members, edge_lengths)
        sub = distances[:, members]
        # Symmetrise (undirected graph; numerical asymmetry should not occur,
        # but a single max keeps the matrix exactly symmetric for the MST
        # step without averaging in any one-sided rounding error).
        return np.maximum(sub, sub.T)

    def paths_for_pairs(
        self,
        pairs: Sequence[PairKey],
        edge_lengths: Optional[np.ndarray] = None,
    ) -> Dict[PairKey, UnicastPath]:
        """Shortest paths for the given pairs under ``edge_lengths``.

        ``edge_lengths=None`` falls back to the hop metric, which makes the
        dynamic model coincide with fixed IP routing for a fresh network.
        """
        canonical = [pair_key(*p) for p in pairs]
        by_source: Dict[int, List[int]] = {}
        for u, v in canonical:
            if u != v:
                by_source.setdefault(u, []).append(v)
        out: Dict[PairKey, UnicastPath] = {}
        for source, dests in by_source.items():
            distances, predecessors = shortest_path_tree(
                self._network, [source], edge_lengths
            )
            for dest in dests:
                if not np.isfinite(distances[0, dest]):
                    raise InfeasibleProblemError(
                        f"nodes {source} and {dest} are disconnected"
                    )
                out[(source, dest)] = reconstruct_path(
                    self._network, predecessors[0], source, dest
                )
        for u, v in canonical:
            if u == v:
                out[(u, v)] = UnicastPath(nodes=(u,), edge_ids=np.empty(0, dtype=np.int64))
        return out

    def query(
        self,
        sources: Sequence[int],
        edge_lengths: Optional[np.ndarray] = None,
    ) -> ShortestPathQuery:
        """One retained Dijkstra from ``sources`` under ``edge_lengths``.

        The returned query answers both the member-pair distances and the
        path reconstructions of a dynamic oracle call, so the whole call
        costs exactly one Dijkstra invocation and zero extra CSR builds.
        """
        return ShortestPathQuery.run(
            self._network, sources, edge_lengths, path_cache=self._paths_by_nodes
        )

    def pair_lengths_from_query(
        self, query: ShortestPathQuery, members: Sequence[int]
    ) -> np.ndarray:
        """:meth:`pair_lengths` served from a retained query.

        Bit-identical to :meth:`pair_lengths` under the same lengths:
        scipy computes each Dijkstra source row independently, so the
        retained rows equal the rows a fresh run over ``members`` would
        produce, and the same elementwise-max symmetrisation is applied.
        """
        members = [int(m) for m in members]
        n = len(members)
        if n < 2:
            return np.zeros((n, n), dtype=float)
        sub = query.distance_submatrix(members)
        return np.maximum(sub, sub.T)

    def covered_edges(
        self, members: Sequence[int], edge_lengths: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Edges used by the member-pair shortest paths under ``edge_lengths``."""
        pairs = [
            pair_key(members[i], members[j])
            for i in range(len(members))
            for j in range(i + 1, len(members))
        ]
        paths = self.paths_for_pairs(pairs, edge_lengths)
        used = np.zeros(self._network.num_edges, dtype=bool)
        for path in paths.values():
            used[path.edge_ids] = True
        return np.flatnonzero(used)
