"""Arbitrary (dynamic) unicast routing.

Section V of the paper asks how much fixed IP routing constrains the
achievable capacity utilization.  To answer it, the overlay tree is
redefined so that each tree link may use *any* unicast path, and the
algorithms pick, at every oracle invocation, the shortest path under the
current exponential length function.  This class implements exactly that:
every call recomputes shortest paths with the supplied per-edge lengths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.routing.base import PairKey, RoutingModel, pair_key
from repro.routing.paths import UnicastPath
from repro.routing.shortest_path import reconstruct_path, shortest_path_tree
from repro.topology.network import PhysicalNetwork
from repro.util.errors import InfeasibleProblemError


class DynamicRouting(RoutingModel):
    """Shortest-path routing under the caller-supplied length function."""

    def __init__(self, network: PhysicalNetwork) -> None:
        super().__init__(network)

    @property
    def is_dynamic(self) -> bool:
        return True

    def pair_lengths(
        self,
        members: Sequence[int],
        edge_lengths: np.ndarray,
    ) -> np.ndarray:
        """Shortest-path distance between every member pair under the lengths."""
        members = [int(m) for m in members]
        n = len(members)
        if n < 2:
            return np.zeros((n, n), dtype=float)
        distances, _ = shortest_path_tree(self._network, members, edge_lengths)
        sub = distances[:, members]
        # Symmetrise (undirected graph; numerical asymmetry should not occur,
        # but a single max keeps the matrix exactly symmetric for the MST
        # step without averaging in any one-sided rounding error).
        return np.maximum(sub, sub.T)

    def paths_for_pairs(
        self,
        pairs: Sequence[PairKey],
        edge_lengths: Optional[np.ndarray] = None,
    ) -> Dict[PairKey, UnicastPath]:
        """Shortest paths for the given pairs under ``edge_lengths``.

        ``edge_lengths=None`` falls back to the hop metric, which makes the
        dynamic model coincide with fixed IP routing for a fresh network.
        """
        canonical = [pair_key(*p) for p in pairs]
        by_source: Dict[int, List[int]] = {}
        for u, v in canonical:
            if u != v:
                by_source.setdefault(u, []).append(v)
        out: Dict[PairKey, UnicastPath] = {}
        for source, dests in by_source.items():
            distances, predecessors = shortest_path_tree(
                self._network, [source], edge_lengths
            )
            for dest in dests:
                if not np.isfinite(distances[0, dest]):
                    raise InfeasibleProblemError(
                        f"nodes {source} and {dest} are disconnected"
                    )
                out[(source, dest)] = reconstruct_path(
                    self._network, predecessors[0], source, dest
                )
        for u, v in canonical:
            if u == v:
                out[(u, v)] = UnicastPath(nodes=(u,), edge_ids=np.empty(0, dtype=np.int64))
        return out

    def covered_edges(
        self, members: Sequence[int], edge_lengths: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Edges used by the member-pair shortest paths under ``edge_lengths``."""
        pairs = [
            pair_key(members[i], members[j])
            for i in range(len(members))
            for j in range(i + 1, len(members))
        ]
        paths = self.paths_for_pairs(pairs, edge_lengths)
        used = np.zeros(self._network.num_edges, dtype=bool)
        for path in paths.values():
            used[path.edge_ids] = True
        return np.flatnonzero(used)
