"""Routing model interface.

A routing model answers one question for the flow algorithms: *given a set
of overlay nodes and the current per-edge length function, what unicast
route and what route length connects each pair?*  Fixed IP routing answers
with routes precomputed under the hop metric; dynamic routing answers with
shortest paths under the current lengths.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.routing.paths import UnicastPath
from repro.topology.network import PhysicalNetwork

PairKey = Tuple[int, int]


def pair_key(u: int, v: int) -> PairKey:
    """Canonical (sorted) key for an unordered node pair."""
    u, v = int(u), int(v)
    return (u, v) if u < v else (v, u)


class RoutingModel(abc.ABC):
    """Maps overlay node pairs to unicast routes in the physical network."""

    def __init__(self, network: PhysicalNetwork) -> None:
        self._network = network

    @property
    def network(self) -> PhysicalNetwork:
        """The physical network this model routes over."""
        return self._network

    @property
    @abc.abstractmethod
    def is_dynamic(self) -> bool:
        """Whether routes depend on the current length function."""

    @abc.abstractmethod
    def pair_lengths(
        self,
        members: Sequence[int],
        edge_lengths: np.ndarray,
    ) -> np.ndarray:
        """Length of the route between every pair of ``members``.

        Returns a symmetric ``(len(members), len(members))`` matrix whose
        ``(i, j)`` entry is the length, under ``edge_lengths``, of the
        unicast route this model assigns to ``(members[i], members[j])``.
        The diagonal is zero.
        """

    @abc.abstractmethod
    def paths_for_pairs(
        self,
        pairs: Sequence[PairKey],
        edge_lengths: Optional[np.ndarray] = None,
    ) -> Dict[PairKey, UnicastPath]:
        """Concrete unicast routes for the given (canonical) node pairs.

        For fixed IP routing the ``edge_lengths`` argument is ignored; for
        dynamic routing it selects the paths.  The returned dictionary is
        keyed by canonical pair.
        """

    def path_for_pair(
        self,
        u: int,
        v: int,
        edge_lengths: Optional[np.ndarray] = None,
    ) -> UnicastPath:
        """Route for a single pair (convenience wrapper)."""
        key = pair_key(u, v)
        return self.paths_for_pairs([key], edge_lengths)[key]

    def max_route_hops(self, members: Sequence[int]) -> int:
        """Longest route (in hops) among all member pairs under hop metric.

        Used to compute the FPTAS initialisation constant ``U`` (the
        length of the longest unicast route) from the paper's Lemma 3.
        """
        members = list(dict.fromkeys(int(m) for m in members))
        if len(members) < 2:
            return 0
        hop_lengths = self.pair_lengths(members, np.ones(self._network.num_edges))
        finite = hop_lengths[np.isfinite(hop_lengths)]
        return int(round(float(finite.max()))) if finite.size else 0
