"""Fixed IP (shortest-path) routing.

Models static IP routing as used in Sections II–IV of the paper: the
route between two end systems is the hop-count shortest path in the
physical topology, computed once and never changed afterwards, regardless
of how congested its links become.  The flow algorithms only vary the
*rates* they push over these fixed routes.

For efficiency the class caches, per set of overlay members, a sparse
pair-by-edge incidence matrix so that evaluating the lengths of all
overlay edges under a new length function is a single sparse
matrix-vector product.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.routing.base import PairKey, RoutingModel, pair_key
from repro.routing.paths import UnicastPath
from repro.routing.shortest_path import reconstruct_path, shortest_path_tree
from repro.topology.network import PhysicalNetwork
from repro.util.errors import InfeasibleProblemError


class FixedIPRouting(RoutingModel):
    """Hop-count shortest-path routing with per-pair route caching."""

    def __init__(self, network: PhysicalNetwork) -> None:
        super().__init__(network)
        self._path_cache: Dict[PairKey, UnicastPath] = {}
        self._incidence_cache: Dict[Tuple[int, ...], csr_matrix] = {}

    @property
    def is_dynamic(self) -> bool:
        return False

    # ------------------------------------------------------------------
    # route computation / caching
    # ------------------------------------------------------------------
    def _compute_routes_from(self, source: int, destinations: Sequence[int]) -> None:
        """Populate the path cache with routes from ``source``."""
        distances, predecessors = shortest_path_tree(self._network, [source])
        for dest in destinations:
            key = pair_key(source, dest)
            if key in self._path_cache or source == dest:
                continue
            if not np.isfinite(distances[0, dest]):
                raise InfeasibleProblemError(
                    f"nodes {source} and {dest} are disconnected in the physical network"
                )
            path = reconstruct_path(self._network, predecessors[0], source, dest)
            # Store the path oriented from the smaller to the larger node id
            # so lookups by canonical pair are orientation-independent.
            if path.nodes[0] != key[0]:
                path = UnicastPath(
                    nodes=tuple(reversed(path.nodes)), edge_ids=path.edge_ids[::-1]
                )
            self._path_cache[key] = path

    def paths_for_pairs(
        self,
        pairs: Sequence[PairKey],
        edge_lengths: Optional[np.ndarray] = None,
    ) -> Dict[PairKey, UnicastPath]:
        """Fixed routes for the given pairs (``edge_lengths`` is ignored)."""
        canonical = [pair_key(*p) for p in pairs]
        missing: Dict[int, List[int]] = {}
        for u, v in canonical:
            if (u, v) not in self._path_cache and u != v:
                missing.setdefault(u, []).append(v)
        for source, dests in missing.items():
            self._compute_routes_from(source, dests)
        out: Dict[PairKey, UnicastPath] = {}
        for key in canonical:
            u, v = key
            if u == v:
                out[key] = UnicastPath(nodes=(u,), edge_ids=np.empty(0, dtype=np.int64))
            else:
                out[key] = self._path_cache[key]
        return out

    # ------------------------------------------------------------------
    # incidence matrices
    # ------------------------------------------------------------------
    @staticmethod
    def member_pairs(members: Sequence[int]) -> List[PairKey]:
        """Canonical pair list for a member set, in deterministic order."""
        members = [int(m) for m in members]
        return [
            pair_key(members[i], members[j])
            for i in range(len(members))
            for j in range(i + 1, len(members))
        ]

    def incidence_for_members(self, members: Sequence[int]) -> csr_matrix:
        """Sparse (num_pairs x num_edges) 0/1 incidence of fixed routes.

        Row ``r`` corresponds to the ``r``-th pair returned by
        :meth:`member_pairs`; entry ``(r, e)`` is 1 when physical edge
        ``e`` lies on the fixed route of that pair.  Cached per member
        tuple because the FPTAS evaluates it thousands of times.
        """
        key = tuple(int(m) for m in members)
        cached = self._incidence_cache.get(key)
        if cached is not None:
            return cached
        pairs = self.member_pairs(members)
        paths = self.paths_for_pairs(pairs)
        rows: List[int] = []
        cols: List[int] = []
        for r, pk in enumerate(pairs):
            for eid in paths[pk].edge_ids:
                rows.append(r)
                cols.append(int(eid))
        data = np.ones(len(rows), dtype=float)
        matrix = csr_matrix(
            (data, (rows, cols)), shape=(len(pairs), self._network.num_edges)
        )
        self._incidence_cache[key] = matrix
        return matrix

    def pair_lengths(
        self,
        members: Sequence[int],
        edge_lengths: np.ndarray,
    ) -> np.ndarray:
        """Symmetric matrix of fixed-route lengths under ``edge_lengths``."""
        members = [int(m) for m in members]
        n = len(members)
        lengths = np.zeros((n, n), dtype=float)
        if n < 2:
            return lengths
        incidence = self.incidence_for_members(members)
        pair_lengths = incidence @ np.asarray(edge_lengths, dtype=float)
        rows, cols = np.triu_indices(n, k=1)
        lengths[rows, cols] = pair_lengths
        lengths[cols, rows] = pair_lengths
        return lengths

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def cached_pair_count(self) -> int:
        """Number of pair routes currently cached (for tests/diagnostics)."""
        return len(self._path_cache)

    def covered_edges(self, members: Sequence[int]) -> np.ndarray:
        """Indices of physical edges used by at least one member-pair route.

        This is the "physical links covered by the overlay" notion used in
        the paper's link-utilization figures (Fig. 4/9/14) and the
        edges-per-node statistic (Fig. 13).
        """
        incidence = self.incidence_for_members(members)
        usage = np.asarray(incidence.sum(axis=0)).ravel()
        return np.flatnonzero(usage > 0)
