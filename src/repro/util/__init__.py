"""Shared utilities: RNG handling, validation, tabular output, result I/O.

These helpers are deliberately dependency-light so that every other
subpackage (topology, routing, overlay, core, experiments) can rely on
them without import cycles.
"""

from repro.util.errors import (
    ReproError,
    InvalidNetworkError,
    InvalidSessionError,
    InfeasibleProblemError,
    ConfigurationError,
)
from repro.util.backoff import ExponentialBackoff
from repro.util.retry import RetryPolicy
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.tables import format_table, format_kv
from repro.util.cdf import cumulative_distribution, normalized_rank_cdf
from repro.util.serialization import to_jsonable, dump_json, load_json

__all__ = [
    "ReproError",
    "InvalidNetworkError",
    "InvalidSessionError",
    "InfeasibleProblemError",
    "ConfigurationError",
    "ExponentialBackoff",
    "RetryPolicy",
    "ensure_rng",
    "spawn_rngs",
    "format_table",
    "format_kv",
    "cumulative_distribution",
    "normalized_rank_cdf",
    "to_jsonable",
    "dump_json",
    "load_json",
]
