"""Capped exponential backoff for idle polling loops.

The cluster worker, the asyncio report gatherer and the serve layer's
SSE tailer all poll a shared filesystem for new work.  Fixed-interval
polling burns CPU (and filesystem metadata traffic) on idle queues;
:class:`ExponentialBackoff` keeps the configured interval as the *floor*
— the first delay after any hit is exactly ``poll_seconds``, preserving
existing latency on busy queues — and doubles it on every consecutive
empty poll up to a cap, so an idle loop settles into long sleeps.

Callers ``reset()`` on any productive poll (a claimed task, a landed
report, a new event line), restoring the floor for the next idle
stretch.
"""

from __future__ import annotations

import random
import time
from typing import Optional

from repro.util.errors import ConfigurationError

DEFAULT_CAP_SECONDS = 2.0


class ExponentialBackoff:
    """Delays ``floor, 2*floor, 4*floor, ... , cap`` between empty polls.

    Parameters
    ----------
    floor:
        The busy-loop poll interval (the existing ``poll_seconds``
        semantics): the first delay after a reset is exactly this.
    cap:
        Upper bound on the delay.  Defaults to
        ``max(floor, DEFAULT_CAP_SECONDS)`` so a floor above the default
        cap degrades to fixed-interval polling rather than shrinking.
    factor:
        Growth multiplier per consecutive empty poll.
    jitter:
        Off by default (the historical deterministic ladder).  When on,
        each delay is *decorrelated jitter* — drawn uniformly from
        ``[floor, previous * factor]`` and capped — which de-synchronises
        fleets of retrying workers that would otherwise hammer a
        recovering store in lockstep.  Every delay still lies in
        ``[floor, cap]``, and :meth:`reset` restores the floor as the
        correlation state exactly as in the deterministic mode.
    rng:
        RNG for the jitter draws (a ``random.Random``); seed one for
        reproducible schedules.  A private instance is created when
        omitted.
    """

    def __init__(
        self,
        floor: float,
        cap: Optional[float] = None,
        factor: float = 2.0,
        jitter: bool = False,
        rng: Optional[random.Random] = None,
    ) -> None:
        if floor <= 0:
            raise ConfigurationError(f"backoff floor must be positive, got {floor}")
        if factor < 1.0:
            raise ConfigurationError(f"backoff factor must be >= 1, got {factor}")
        self.floor = float(floor)
        self.cap = max(float(cap), self.floor) if cap is not None else max(
            self.floor, DEFAULT_CAP_SECONDS
        )
        self.factor = float(factor)
        self.jitter = bool(jitter)
        self._rng = rng if rng is not None else random.Random()
        self._delay = self.floor

    def next_delay(self) -> float:
        """The delay to sleep now; grows the next one (capped)."""
        if self.jitter:
            delay = min(
                self.cap,
                self._rng.uniform(self.floor, max(self.floor, self._delay * self.factor)),
            )
            self._delay = delay
            return delay
        delay = self._delay
        self._delay = min(self._delay * self.factor, self.cap)
        return delay

    def peek(self) -> float:
        """The delay :meth:`next_delay` would return, without advancing.

        Under ``jitter`` the next delay is random; ``peek`` then reports
        the correlation state (the previous draw, or the floor right
        after a reset) rather than a prediction.
        """
        return self._delay

    def reset(self) -> None:
        """A productive poll happened: restore the floor."""
        self._delay = self.floor

    def sleep(self) -> float:
        """Sleep for :meth:`next_delay`; returns the slept delay.

        Synchronous callers only — asyncio loops award the delay to
        ``asyncio.sleep`` themselves.
        """
        delay = self.next_delay()
        time.sleep(delay)
        return delay
