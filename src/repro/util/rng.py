"""Random number generator helpers.

All stochastic components of the library (topology generators, session
placement, randomized rounding, online arrival orders) accept either a
seed or a :class:`numpy.random.Generator`.  Centralising the coercion
logic keeps experiments reproducible: the same seed always yields the
same topology, sessions, and rounding decisions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Used by experiments that repeat a randomized procedure (e.g. the
    100-trial averages for the randomized-rounding and online experiments
    in the paper) so each trial has its own independent stream while the
    whole experiment stays reproducible from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive child seeds from the generator itself.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]


def spawn_child_sequence(seed: SeedLike, *indices: int) -> np.random.SeedSequence:
    """Walk a ``SeedSequence`` spawn tree to the child at ``indices``.

    The documented mapping (reproducibility contract): one level down,
    child ``i`` is ``SeedSequence(seed).spawn(i + 1)[i]`` — i.e. the
    spawn child with ``spawn_key == (i,)`` — and deeper levels repeat
    the rule on the child.  Unlike additive ``seed + i`` derivations,
    spawn children never collide across nearby indices or across tree
    levels, which is exactly the defect this replaces in the experiment
    runner's online-cell seeding.
    """
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    for index in indices:
        index = int(index)
        if index < 0:
            raise ValueError(f"spawn indices must be non-negative, got {index}")
        # Construct the spawn child directly (numpy defines child i as
        # entropy=parent.entropy, spawn_key=parent.spawn_key + (i,)) —
        # bit-identical to ss.spawn(index + 1)[index] without allocating
        # the index intermediate children.
        ss = np.random.SeedSequence(
            entropy=ss.entropy, spawn_key=ss.spawn_key + (index,)
        )
    return ss


def spawn_child_seed(seed: SeedLike, *indices: int) -> int:
    """Integer child seed at ``indices`` of the spawn tree (JSON-friendly).

    ``spawn_child_sequence(...)`` reduced to one ``uint64`` word
    (``generate_state(1, np.uint64)[0]``) so it can ride in a
    declarative spec — e.g. :class:`repro.api.specs.ArrivalSpec.seed` —
    while keeping the spawn-tree derivation documented and collision
    resistant.
    """
    return int(spawn_child_sequence(seed, *indices).generate_state(1, np.uint64)[0])


def choice_weighted(
    rng: np.random.Generator, weights: Iterable[float], size: Optional[int] = None
):
    """Sample index/indices proportionally to non-negative ``weights``.

    A thin wrapper that normalises the weight vector and guards against the
    all-zero case (falls back to uniform), which occurs when a session ends
    up with zero flow on every tree.
    """
    w = np.asarray(list(weights), dtype=float)
    if w.size == 0:
        raise ValueError("cannot sample from an empty weight vector")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        p = np.full(w.size, 1.0 / w.size)
    else:
        p = w / total
    return rng.choice(w.size, size=size, p=p)
