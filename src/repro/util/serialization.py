"""JSON serialisation helpers for experiment results.

Experiment results contain numpy scalars/arrays and dataclasses; these
helpers convert them into plain JSON-compatible structures so that runs
can be archived and later diffed against the paper's reported numbers.

The module also provides the file-level primitives the persistent layers
(:mod:`repro.store`, :mod:`repro.cluster`) build on: atomic byte writes
(tmp file + rename, so concurrent writers of one path never tear each
other's output) and transparent gzip on a ``.gz`` suffix.
"""

from __future__ import annotations

import dataclasses
import gzip
import json
import os
import secrets
import typing
from pathlib import Path
from typing import Any, Optional, Type, TypeVar, Union

import numpy as np

from repro import faults

GZIP_MAGIC = b"\x1f\x8b"


def canonical_json(data: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    The single definition of the canonical form every content digest in
    the repo is computed over — spec ``canonical_key``s and store entry
    checksums must agree on it byte-for-byte.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))

T = TypeVar("T")


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serialisable builtins."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # A dataclass may customise its JSON shape (e.g. omit a default
        # field to keep digests stable) via __jsonable__, which returns
        # a plain field dict for this walker to finish converting.  The
        # hook applies at *every* nesting depth — an override of a
        # to_jsonable() entry-point method would silently not.
        custom = getattr(obj, "__jsonable__", None)
        if callable(custom):
            return to_jsonable(custom())
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, Path):
        return str(obj)
    raise TypeError(f"cannot serialise object of type {type(obj)!r} to JSON")


def from_jsonable(cls: Type[T], data: Any) -> T:
    """Reconstruct a typed value from :func:`to_jsonable` output.

    The inverse of :func:`to_jsonable` for the declarative spec layer:
    given a target type (typically a dataclass) and the plain-JSON
    structure, rebuild the typed object.  Reconstruction is driven by the
    dataclass field annotations and understands

    * nested dataclasses,
    * ``Optional[...]`` / ``Union[..., None]``,
    * ``Tuple[X, ...]`` / ``List[X]`` / ``Dict[K, V]`` (including nested
      element types),
    * ``numpy.ndarray`` fields (rebuilt from lists),
    * primitives (passed through with a constructor-level type check).

    Unknown keys in ``data`` are rejected so that a mistyped spec file
    fails loudly instead of being silently ignored.
    """
    return _from_jsonable(cls, data, path="$")


def _from_jsonable(tp: Any, data: Any, path: str) -> Any:
    origin = typing.get_origin(tp)
    args = typing.get_args(tp)

    if tp is Any:
        return data
    if origin is Union:
        if data is None and type(None) in args:
            return None
        last_error: Exception = TypeError(f"{path}: no Union arm matched {data!r}")
        for arm in args:
            if arm is type(None):
                continue
            try:
                return _from_jsonable(arm, data, path)
            except (TypeError, ValueError, KeyError) as exc:
                last_error = exc
        raise last_error
    if dataclasses.is_dataclass(tp) and isinstance(tp, type):
        if not isinstance(data, dict):
            raise TypeError(f"{path}: expected a mapping for {tp.__name__}, got {type(data).__name__}")
        hints = typing.get_type_hints(tp)
        field_names = {f.name for f in dataclasses.fields(tp)}
        unknown = set(data) - field_names
        if unknown:
            raise TypeError(
                f"{path}: unknown field(s) {sorted(unknown)} for {tp.__name__}"
            )
        kwargs = {
            f.name: _from_jsonable(hints[f.name], data[f.name], f"{path}.{f.name}")
            for f in dataclasses.fields(tp)
            if f.name in data and f.init
        }
        return tp(**kwargs)
    if origin in (list, tuple, set, frozenset):
        if not isinstance(data, (list, tuple)):
            raise TypeError(f"{path}: expected a sequence, got {type(data).__name__}")
        if origin is tuple and args and args[-1] is not Ellipsis:
            if len(args) != len(data):
                raise TypeError(
                    f"{path}: expected {len(args)} items, got {len(data)}"
                )
            return tuple(
                _from_jsonable(a, x, f"{path}[{i}]")
                for i, (a, x) in enumerate(zip(args, data))
            )
        element = args[0] if args else Any
        items = [
            _from_jsonable(element, x, f"{path}[{i}]") for i, x in enumerate(data)
        ]
        return origin(items)
    if origin is dict:
        if not isinstance(data, dict):
            raise TypeError(f"{path}: expected a mapping, got {type(data).__name__}")
        key_tp = args[0] if args else Any
        val_tp = args[1] if args else Any
        return {
            _coerce_key(key_tp, k): _from_jsonable(val_tp, v, f"{path}[{k!r}]")
            for k, v in data.items()
        }
    if isinstance(tp, type) and issubclass(tp, np.ndarray):
        return np.asarray(data)
    if tp is float:
        if isinstance(data, bool) or not isinstance(data, (int, float)):
            raise TypeError(f"{path}: expected a number, got {type(data).__name__}")
        return float(data)
    if tp is int:
        if isinstance(data, bool) or not isinstance(data, int):
            raise TypeError(f"{path}: expected an int, got {type(data).__name__}")
        return int(data)
    if tp is bool:
        if not isinstance(data, bool):
            raise TypeError(f"{path}: expected a bool, got {type(data).__name__}")
        return data
    if tp is str:
        if not isinstance(data, str):
            raise TypeError(f"{path}: expected a string, got {type(data).__name__}")
        return data
    if isinstance(tp, type) and issubclass(tp, Path):
        return Path(data)
    if tp is type(None):
        if data is not None:
            raise TypeError(f"{path}: expected null, got {type(data).__name__}")
        return None
    raise TypeError(f"{path}: cannot reconstruct values of type {tp!r}")


def _coerce_key(key_tp: Any, key: str) -> Any:
    """JSON object keys are strings; coerce back to the annotated key type."""
    if key_tp is int:
        return int(key)
    if key_tp is float:
        return float(key)
    return key


def fsync_directory(path: Union[str, Path]) -> None:
    """fsync a directory so a rename into it survives power loss.

    POSIX renames are atomic with respect to *readers* immediately, but
    the directory entry itself is only durable once the directory is
    fsynced.  Failures are swallowed: some filesystems refuse to open
    directories, and losing durability there is no worse than before.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    durable: bool = False,
    fault_point: Optional[str] = None,
) -> Path:
    """Write ``data`` to ``path`` atomically (tmp file in-dir + rename).

    ``os.replace`` is atomic on POSIX, so readers see either the old
    content or the new content, never a torn mix — and two concurrent
    writers of the same path each land a complete file (last one wins).

    ``durable=True`` additionally fdatasyncs the temp file before the
    rename and fsyncs the parent directory after it, upgrading the
    guarantee from crash-of-the-process to power-loss: a published file
    is on stable storage with its full content.

    ``fault_point`` names this write for :mod:`repro.faults`: the
    payload crosses ``{fault_point}.write`` (truncatable), the rename is
    preceded by ``{fault_point}.rename`` and followed by
    ``{fault_point}.publish`` — the three places a crash leaves
    observably different on-disk states.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fault_point is not None:
        data = faults.mangle(f"{fault_point}.write", data)
    # Not mkstemp: its hardwired 0600 mode would make published store
    # entries and queue tasks unreadable to cooperating processes under
    # other users.  Creating with mode 0666 lets the kernel apply the
    # umask atomically — no process-global umask probing needed.
    tmp_name = str(path.parent / f".{path.name}.{secrets.token_hex(8)}.tmp")
    fd = os.open(tmp_name, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            if durable:
                fh.flush()
                # fdatasync skips the metadata flush fsync forces; the
                # rename + directory fsync below publish the metadata.
                getattr(os, "fdatasync", os.fsync)(fh.fileno())
        if fault_point is not None:
            faults.point(f"{fault_point}.rename")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(path.parent)
    if fault_point is not None:
        faults.point(f"{fault_point}.publish")
    return path


def read_bytes(path: Union[str, Path]) -> bytes:
    """Read a file's bytes, transparently gunzipping gzip content."""
    raw = Path(path).read_bytes()
    if raw[:2] == GZIP_MAGIC:
        return gzip.decompress(raw)
    return raw


def dump_json(
    obj: Any, path: Union[str, Path], indent: int = 2, atomic: bool = False
) -> Path:
    """Serialise ``obj`` (via :func:`to_jsonable`) to ``path``.

    A ``.gz`` suffix gzips the payload; ``atomic=True`` routes the write
    through :func:`atomic_write_bytes` so concurrent writers never tear.
    """
    path = Path(path)
    text = json.dumps(to_jsonable(obj), indent=indent, sort_keys=True) + "\n"
    data = text.encode("utf-8")
    if path.suffix == ".gz":
        data = gzip.compress(data)
    if atomic:
        return atomic_write_bytes(path, data)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as fh:
        fh.write(data)
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load JSON content written by :func:`dump_json` (gzip-aware)."""
    return json.loads(read_bytes(path).decode("utf-8"))
