"""JSON serialisation helpers for experiment results.

Experiment results contain numpy scalars/arrays and dataclasses; these
helpers convert them into plain JSON-compatible structures so that runs
can be archived and later diffed against the paper's reported numbers.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Union

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serialisable builtins."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, Path):
        return str(obj)
    raise TypeError(f"cannot serialise object of type {type(obj)!r} to JSON")


def dump_json(obj: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Serialise ``obj`` (via :func:`to_jsonable`) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(to_jsonable(obj), fh, indent=indent, sort_keys=True)
        fh.write("\n")
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load JSON content written by :func:`dump_json`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
