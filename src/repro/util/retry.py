"""Unified retry policy for transient I/O failures.

Every layer that touches the shared filesystem — store reads, worker
claim loops, the serve collector, the relay tailer — used to have its
own ad-hoc stance on transient errors (usually "hope").  The
fault-injection harness makes those errors routine, so the stance is now
explicit and shared: :class:`RetryPolicy` wraps a callable with bounded,
backed-off retries and a single classification of what is worth
retrying.

Classification: an exception retries when it matches ``retryable``
*and not* ``non_retryable``.  The defaults treat I/O-flavoured errors
(``OSError``, ``ConnectionError``, ``TimeoutError``,
``InterruptedError``) as transient, but carve out the subclasses that
signal a *wrong world*, not a flaky one — a missing file will still be
missing on attempt three, and a permission error never self-heals.

Outcomes are counted in ``repro_retry_total{surface,outcome}``:
``retried`` per extra attempt scheduled, ``recovered`` when a retried
call eventually succeeds, ``exhausted`` when attempts run out (the final
error propagates), ``rejected`` when the error is classified
non-retryable (it propagates immediately).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from repro.obs import metrics as obs_metrics
from repro.util.backoff import ExponentialBackoff
from repro.util.errors import ConfigurationError

DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    OSError,
    ConnectionError,
    TimeoutError,
    InterruptedError,
)

DEFAULT_NON_RETRYABLE: Tuple[Type[BaseException], ...] = (
    FileNotFoundError,
    IsADirectoryError,
    NotADirectoryError,
    PermissionError,
)


def _retry_counter(surface: str, outcome: str):
    return obs_metrics.registry().counter(
        "repro_retry_total",
        "RetryPolicy attempt outcomes by surface",
        labels={"surface": surface, "outcome": outcome},
    )


@dataclass
class RetryPolicy:
    """Bounded retries with (optionally jittered) exponential backoff.

    ``max_attempts`` counts total tries, so ``1`` means no retry at all
    — handy for turning a policy off without unthreading it.  ``sleep``
    is injectable for tests (count delays instead of waiting them out).
    """

    max_attempts: int = 3
    floor: float = 0.05
    cap: float = 1.0
    factor: float = 2.0
    jitter: bool = True
    rng: Optional[random.Random] = None
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE
    non_retryable: Tuple[Type[BaseException], ...] = DEFAULT_NON_RETRYABLE
    sleep: Callable[[float], None] = time.sleep
    surface: str = "default"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry max_attempts must be >= 1, got {self.max_attempts}"
            )

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is transient under this policy's classification."""
        return isinstance(exc, self.retryable) and not isinstance(
            exc, self.non_retryable
        )

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn(*args, **kwargs)``, retrying transient failures.

        Returns the first successful result; re-raises the last error
        when attempts are exhausted or the error is non-retryable.
        """
        backoff = ExponentialBackoff(
            self.floor, self.cap, self.factor, jitter=self.jitter, rng=self.rng
        )
        attempt = 0
        while True:
            attempt += 1
            try:
                result = fn(*args, **kwargs)
            except Exception as exc:
                if not self.is_retryable(exc):
                    _retry_counter(self.surface, "rejected").inc()
                    raise
                if attempt >= self.max_attempts:
                    _retry_counter(self.surface, "exhausted").inc()
                    raise
                _retry_counter(self.surface, "retried").inc()
                self.sleep(backoff.next_delay())
                continue
            if attempt > 1:
                _retry_counter(self.surface, "recovered").inc()
            return result

    def wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """A callable that routes every invocation through :meth:`call`."""

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            return self.call(fn, *args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        return wrapped
