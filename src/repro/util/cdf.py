"""Cumulative-distribution helpers used for the paper's figures.

Figures 2, 3, 7, 8, 17 plot the *accumulative rate distribution versus
normalized tree rank*: trees are sorted by decreasing rate, and the y
value at normalized rank x is the fraction of the total session rate
carried by the top x fraction of trees.  Figures 4, 9, 14 plot the link
utilization ratio against normalized edge rank in the same spirit (but
without accumulation).  These helpers compute exactly those series.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def cumulative_distribution(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(normalized_rank, cumulative_fraction)`` for ``values``.

    Values are sorted in decreasing order; the cumulative fraction at rank
    ``i`` is ``sum(values[:i+1]) / sum(values)``.  Ranks are normalised to
    ``(0, 1]``.  A zero total yields an all-zero cumulative curve.
    """
    v = np.asarray(values, dtype=float)
    if v.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if v.size == 0:
        return np.array([]), np.array([])
    if np.any(v < 0):
        raise ValueError("values must be non-negative")
    order = np.argsort(v)[::-1]
    sorted_v = v[order]
    total = sorted_v.sum()
    cum = np.cumsum(sorted_v)
    frac = cum / total if total > 0 else np.zeros_like(cum)
    ranks = np.arange(1, v.size + 1, dtype=float) / v.size
    return ranks, frac


def normalized_rank_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(normalized_rank, sorted_value)`` with values sorted descending.

    This is the presentation used by the link-utilization figures: the
    x axis is the normalized edge rank and the y axis is the raw
    utilization ratio of the edge at that rank (no accumulation).
    """
    v = np.asarray(values, dtype=float)
    if v.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if v.size == 0:
        return np.array([]), np.array([])
    sorted_v = np.sort(v)[::-1]
    ranks = np.arange(1, v.size + 1, dtype=float) / v.size
    return ranks, sorted_v


def fraction_of_mass_in_top(values: Sequence[float], top_fraction: float) -> float:
    """Fraction of total mass carried by the top ``top_fraction`` of entries.

    Used to quantify the paper's "asymmetric rate distribution"
    observation (e.g. "90% of the throughput is concentrated in less than
    10% of the trees").
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must lie in (0, 1]")
    ranks, frac = cumulative_distribution(values)
    if ranks.size == 0:
        return 0.0
    k = max(1, int(np.ceil(top_fraction * ranks.size)))
    return float(frac[k - 1])
