"""Plain-text table rendering for experiment reports.

The paper reports its evaluation as tables (Tables II, IV, VII, VIII) and
gnuplot figures.  The experiment harness renders the same rows as ASCII
tables so results can be compared side by side in a terminal or in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _fmt_cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Floats are rounded to ``precision`` decimal places; every column is
    padded to the width of its widest cell.
    """
    str_rows = [[_fmt_cell(v, precision) for v in row] for row in rows]
    str_headers = [str(h) for h in headers]
    ncols = len(str_headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(
                f"row has {len(r)} cells but table has {ncols} columns: {r}"
            )
    widths = [
        max(len(str_headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(str_headers[c])
        for c in range(ncols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(str_headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_kv(mapping: Mapping[str, Any], precision: int = 4, title: str | None = None) -> str:
    """Render a mapping as aligned ``key : value`` lines."""
    keys = [str(k) for k in mapping]
    width = max((len(k) for k in keys), default=0)
    lines = []
    if title:
        lines.append(title)
    for k, v in mapping.items():
        lines.append(f"{str(k).ljust(width)} : {_fmt_cell(v, precision)}")
    return "\n".join(lines)
