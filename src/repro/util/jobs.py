"""Process-pool worker-count plumbing shared across the library.

Every parallel facility in the repo — the experiment sweeps, the batch
solve service (``repro.api.solve_many``), and the MaxConcurrentFlow
pre-scaling step — resolves its worker count through this module so that
one ``--jobs`` flag / ``REPRO_JOBS`` environment variable governs them
all.  Precedence: an explicitly passed ``jobs`` value, then the value
installed by :func:`configure_jobs` (the CLI flag), then ``REPRO_JOBS``,
then 1 (serial).  ``0`` always means "all CPU cores".
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional

from repro.util.errors import ConfigurationError

JOBS_ENV_VAR = "REPRO_JOBS"

_configured_jobs: Optional[int] = None


def configure_jobs(jobs: Optional[int]) -> Optional[int]:
    """Set the process-wide default worker count for parallel runs.

    This is the programmatic face of the ``--jobs`` CLI knob: the section
    CLIs and ``python -m repro.api`` call it once at startup and every
    sweep in the process picks it up.  A configured value takes
    precedence over the ``REPRO_JOBS`` environment variable — an explicit
    flag must win over ambient environment.  ``0`` means "all CPU
    cores"; ``None`` clears the configured value.  Returns the previous
    configured value (``None`` if unset), suitable for restoring.
    """
    global _configured_jobs
    previous = _configured_jobs
    _configured_jobs = None if jobs is None else _validate_jobs(jobs)
    return previous


@contextlib.contextmanager
def jobs_context(jobs: Optional[int]) -> Iterator[None]:
    """Scope :func:`configure_jobs` to a ``with`` block.

    The CLI entry points (``python -m repro.api``, ``python -m
    repro.cluster``) install their ``--jobs`` flag process-wide for the
    duration of one command and restore the previous value afterwards,
    so in-process callers of their ``main()`` functions are unaffected.
    ``None`` leaves the configuration untouched.
    """
    if jobs is None:
        yield
        return
    previous = configure_jobs(jobs)
    try:
        yield
    finally:
        configure_jobs(previous)


def default_jobs() -> int:
    """Default parallelism.

    Precedence: :func:`configure_jobs` value (the CLI flag), then the
    ``REPRO_JOBS`` env var, then 1 (serial).
    """
    if _configured_jobs is not None:
        return _configured_jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env is not None:
        try:
            return _validate_jobs(int(env))
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    return 1


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``--jobs`` value to a concrete worker count (``>= 1``).

    ``None`` falls back to :func:`default_jobs`; ``0`` means "all CPU
    cores"; negative values are rejected.
    """
    jobs = default_jobs() if jobs is None else _validate_jobs(jobs)
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _validate_jobs(jobs: int) -> int:
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    return jobs
