"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the library can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidNetworkError(ReproError):
    """A physical network failed validation.

    Raised for non-positive capacities, self-loops, disconnected graphs
    where connectivity is required, or inconsistent edge indexing.
    """


class InvalidSessionError(ReproError):
    """An overlay session definition is invalid.

    Raised for sessions with fewer than two members, members that are not
    vertices of the physical network, duplicate members, or non-positive
    demands.
    """


class InfeasibleProblemError(ReproError):
    """A flow problem instance admits no feasible solution.

    For example a maximum concurrent flow instance in which some session's
    members are disconnected in the physical network.
    """


class ConfigurationError(ReproError):
    """An algorithm or experiment was configured with invalid parameters.

    Raised for approximation parameters outside ``(0, 1)``, non-positive
    tree limits, unknown routing model names, and similar user errors.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm exceeded its iteration budget.

    The FPTAS solvers have provable iteration bounds; exceeding the
    configured safety factor over that bound indicates a bug or a
    pathological instance and is reported explicitly rather than looping
    forever.
    """
