"""``python -m repro.obs`` — metrics dump and trace tooling.

Subcommands::

    dump                  print this process's metrics registry as JSON
                          (or Prometheus text with --format prom)
    merge OUT IN [IN...]  stitch per-process trace files into one
                          Perfetto-loadable trace with labelled lanes
    summary TRACE         aggregate a trace into a top-spans table

``dump`` is mostly useful under ``REPRO_METRICS`` experiments and as a
library example — long-lived processes expose the same registry over
``GET /metrics`` on the serve layer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.metrics import registry
from repro.obs.tracing import load_trace, merge_traces, summarize_trace


def _cmd_dump(args: argparse.Namespace) -> int:
    reg = registry()
    if args.format == "prom":
        sys.stdout.write(reg.render_prometheus())
    else:
        print(reg.render_json())
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    merged = merge_traces(args.inputs)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(merged, handle)
    spans = sum(1 for e in merged["traceEvents"] if e.get("ph") == "X")
    print(
        f"merged {len(args.inputs)} trace(s) -> {args.output} "
        f"({spans} spans)"
    )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    payload = load_trace(args.trace)
    rows = summarize_trace(payload)[: args.top]
    if not rows:
        print("no spans found")
        return 0
    from repro.util.tables import format_table

    print(
        format_table(
            ["span", "count", "total_ms", "mean_ms", "max_ms"],
            [
                [r["span"], r["count"], r["total_ms"], r["mean_ms"], r["max_ms"]]
                for r in rows
            ],
            precision=3,
            title=f"top spans: {args.trace}",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability tooling: metrics dump, trace merge/summary",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser("dump", help="print the metrics registry")
    dump.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="output format (default: json)",
    )
    dump.set_defaults(func=_cmd_dump)

    merge = sub.add_parser("merge", help="stitch trace files into one")
    merge.add_argument("output", help="merged trace output path")
    merge.add_argument("inputs", nargs="+", help="input trace files")
    merge.set_defaults(func=_cmd_merge)

    summary = sub.add_parser("summary", help="top-spans table for a trace")
    summary.add_argument("trace", help="trace file to summarize")
    summary.add_argument(
        "--top", type=int, default=20, help="rows to print (default: 20)"
    )
    summary.set_defaults(func=_cmd_summary)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
