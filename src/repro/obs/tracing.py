"""Hierarchical wall-clock spans as Chrome trace-event JSON (stdlib only).

A :class:`Tracer` collects *complete* events (``ph: "X"``) — one per
span, with microsecond ``ts``/``dur`` — in the Chrome trace-event
format, so the output loads directly in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``.  Nesting is positional: a span whose interval
sits inside another span's interval on the same pid/tid renders as its
child, which is exactly how ``solve`` → ``build_instance`` →
``engine.step`` → ``oracle_round`` stack up.

Tracing is opt-in and thread-local.  Call sites use::

    with maybe_span("engine.step", step=3):
        ...

When no tracer is active on the thread (the default), ``maybe_span``
returns a shared no-op context manager — the cost is one function call
and one attribute check, which the ``obs_overhead`` BENCH section pins
below 3% of an engine step.  Activation::

    tracer = Tracer()
    with tracer.activate():
        solve(spec)
    tracer.save("out.trace.json")

or, for the common trace-to-file case, ``with trace_to(path): ...``.
Multi-process traces (cluster workers write one file per task) are
stitched by ``python -m repro.obs merge``, which keys lanes on the
pid/tid each tracer stamped at span time.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, IO, List, Optional, Union

TRACE_SCHEMA = "chrome-trace-events"


class _NullSpan:
    """The shared no-op span handed out when tracing is inactive."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **args: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One open span; closing it appends a complete event to its tracer."""

    __slots__ = ("_tracer", "name", "args", "_start_us", "_tid")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._tid = threading.get_ident()
        self._start_us = time.perf_counter_ns() / 1000.0

    def set(self, **args: Any) -> None:
        """Attach extra key/values to the span (visible in the viewer)."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end_us = time.perf_counter_ns() / 1000.0
        event: Dict[str, Any] = {
            "name": self.name,
            "cat": "repro",
            "ph": "X",
            "ts": self._start_us,
            "dur": end_us - self._start_us,
            "pid": self._tracer.pid,
            "tid": self._tid,
        }
        if self.args:
            event["args"] = self.args
        self._tracer._append(event)


class Tracer:
    """A thread-safe collector of Chrome trace events for one process."""

    def __init__(self, pid: Optional[int] = None, process_name: Optional[str] = None):
        self.pid = os.getpid() if pid is None else int(pid)
        self.process_name = process_name
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    def _append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    def span(self, name: str, **args: Any) -> Span:
        """Open a span; use as a context manager."""
        return Span(self, name, dict(args))

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def activate(self) -> "_Activation":
        """Install this tracer thread-locally (restores the prior one)."""
        return _Activation(self)

    def to_jsonable(self) -> Dict[str, Any]:
        events = self.events
        if self.process_name:
            events.insert(
                0,
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": self.pid,
                    "tid": 0,
                    "args": {"name": self.process_name},
                },
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save(self, path_or_file: Union[str, "os.PathLike[str]", IO[str]]) -> None:
        """Write the trace as Perfetto-loadable JSON."""
        payload = self.to_jsonable()
        if hasattr(path_or_file, "write"):
            json.dump(payload, path_or_file)  # type: ignore[arg-type]
            return
        path = os.fspath(path_or_file)  # type: ignore[arg-type]
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)


# ----------------------------------------------------------------------
# thread-local activation
# ----------------------------------------------------------------------
_ACTIVE = threading.local()


class _Activation:
    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = getattr(_ACTIVE, "tracer", None)
        _ACTIVE.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc_info: Any) -> None:
        _ACTIVE.tracer = self._previous


def current_tracer() -> Optional[Tracer]:
    """The tracer active on this thread, or ``None``."""
    return getattr(_ACTIVE, "tracer", None)


def maybe_span(name: str, **args: Any) -> Union[Span, _NullSpan]:
    """A span on the active tracer, or the shared no-op when inactive.

    This is the only tracing call that sits on hot paths, so the
    inactive branch does no allocation and takes no locks.
    """
    tracer = getattr(_ACTIVE, "tracer", None)
    if tracer is None:
        return NULL_SPAN
    return Span(tracer, name, dict(args))


class trace_to:
    """Trace the block to ``path`` (activates a fresh tracer, saves on exit).

    ::

        with trace_to("run.trace.json"):
            solve(spec)
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"],
                 process_name: Optional[str] = None) -> None:
        self.path = path
        self.tracer = Tracer(process_name=process_name)
        self._activation: Optional[_Activation] = None

    def __enter__(self) -> Tracer:
        self._activation = self.tracer.activate()
        self._activation.__enter__()
        return self.tracer

    def __exit__(self, *exc_info: Any) -> None:
        if self._activation is not None:
            self._activation.__exit__(*exc_info)
        self.tracer.save(self.path)


# ----------------------------------------------------------------------
# multi-process stitching + summaries (python -m repro.obs)
# ----------------------------------------------------------------------
def load_trace(path: Union[str, "os.PathLike[str]"]) -> Dict[str, Any]:
    """Load a trace file, accepting both the object and bare-list forms."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, list):
        payload = {"traceEvents": payload}
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace-event file")
    return payload


def merge_traces(
    paths: List[str], label_lanes: bool = True
) -> Dict[str, Any]:
    """Stitch per-process trace files into one, labelling pid/tid lanes.

    Each input keeps its own pid (workers stamp ``os.getpid()`` at span
    time), so runs land in separate Perfetto process lanes.  When two
    inputs collide on a pid (recycled pids across hosts), the later one
    is re-homed to a fresh synthetic pid.
    """
    merged: List[Dict[str, Any]] = []
    seen_pids: Dict[int, str] = {}
    next_synthetic = 1_000_000
    for path in paths:
        payload = load_trace(path)
        events = payload["traceEvents"]
        pids = {e.get("pid", 0) for e in events}
        remap: Dict[int, int] = {}
        for pid in pids:
            owner = seen_pids.get(pid)
            if owner is not None and owner != path:
                remap[pid] = next_synthetic
                next_synthetic += 1
            else:
                seen_pids[pid] = path
        for event in events:
            if remap:
                pid = event.get("pid", 0)
                if pid in remap:
                    event = dict(event, pid=remap[pid])
            merged.append(event)
        if label_lanes:
            label = os.path.basename(os.fspath(path))
            for pid in pids:
                final_pid = remap.get(pid, pid)
                seen_pids.setdefault(final_pid, path)
                merged.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": final_pid,
                        "tid": 0,
                        "args": {"name": label},
                    }
                )
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


def summarize_trace(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Aggregate complete events by span name: count / total / mean / max.

    Returns rows sorted by total duration, descending.  Durations are in
    milliseconds.
    """
    stats: Dict[str, Dict[str, float]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        name = str(event.get("name", "?"))
        dur_ms = float(event.get("dur", 0.0)) / 1000.0
        row = stats.setdefault(name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
        row["count"] += 1
        row["total_ms"] += dur_ms
        row["max_ms"] = max(row["max_ms"], dur_ms)
    rows = []
    for name, row in stats.items():
        count = int(row["count"])
        rows.append(
            {
                "span": name,
                "count": count,
                "total_ms": row["total_ms"],
                "mean_ms": row["total_ms"] / count if count else 0.0,
                "max_ms": row["max_ms"],
            }
        )
    rows.sort(key=lambda r: r["total_ms"], reverse=True)
    return rows
