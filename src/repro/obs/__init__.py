"""repro.obs — cross-subsystem observability: metrics and trace spans.

Two halves, both stdlib-only and import-safe from every layer:

* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  of counters/gauges/histograms that store, queue, engine, solve and
  serve instruments feed; rendered as Prometheus text on the serve
  layer's ``GET /metrics`` and as JSON by ``python -m repro.obs dump``.
  ``REPRO_METRICS=0`` disables every instrument.
* :mod:`repro.obs.tracing` — opt-in hierarchical wall-clock spans
  (``solve`` → ``build_instance`` → ``engine.step`` → ``oracle_round``)
  written as Chrome trace-event JSON for Perfetto; ``python -m
  repro.obs merge`` stitches multi-process traces, ``summary`` prints a
  top-spans table.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS_ENV_VAR,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    metrics_enabled,
    registry,
    reset_registry,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    current_tracer,
    load_trace,
    maybe_span,
    merge_traces,
    summarize_trace,
    trace_to,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "METRICS_ENV_VAR",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "configure_metrics",
    "metrics_enabled",
    "registry",
    "reset_registry",
    "Span",
    "Tracer",
    "current_tracer",
    "load_trace",
    "maybe_span",
    "merge_traces",
    "summarize_trace",
    "trace_to",
]
