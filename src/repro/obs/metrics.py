"""A process-wide, thread-safe metrics registry (stdlib only).

Every subsystem answers its aggregate questions — "what is the store hit
rate?", "what is the p95 claim→complete latency?", "how many oracle
rounds ran batched?" — through one :class:`MetricsRegistry` of named
instruments:

* :class:`Counter` — monotonically increasing totals (hits, sheds, puts),
* :class:`Gauge` — last-write-wins values (ledger columns, queue depth),
* :class:`Histogram` — fixed-bucket latency distributions (put seconds,
  claim→complete seconds), Prometheus-style cumulative buckets.

Instruments are resolved by ``(name, labels)`` — repeated lookups return
the same object — and every mutation is lock-protected, so serve worker
threads, HTTP handler threads and queue pollers share one registry
without torn counts.  Two read surfaces:

* :meth:`MetricsRegistry.render_prometheus` — the text exposition format
  (``GET /metrics`` on the serve layer),
* :meth:`MetricsRegistry.to_jsonable` — plain JSON
  (``python -m repro.obs dump``).

The ``REPRO_METRICS=0`` environment kill switch makes every instrument a
shared no-op singleton: call sites keep calling ``.inc()``/``.observe()``
but nothing is recorded and nothing is locked.  The process-wide
registry is reached through :func:`registry`; tests use
:func:`reset_registry` / :func:`configure_metrics` for isolation.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

METRICS_ENV_VAR = "REPRO_METRICS"

# Latency buckets (seconds): spans sub-millisecond store puts up to
# multi-minute solves, Prometheus-style cumulative with a +Inf tail.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)

LabelsLike = Optional[Mapping[str, str]]
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: LabelsLike) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render without a trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0; negative increments are ignored)."""
        if amount < 0:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins value that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket distribution with Prometheus cumulative semantics.

    ``observe(v)`` lands in every bucket whose upper bound is >= ``v``
    (rendered cumulatively at read time; stored per-bucket here), plus
    the running ``sum`` and ``count``.
    """

    __slots__ = ("_lock", "buckets", "_bucket_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self.buckets = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative bucket counts keyed by upper bound, plus sum/count."""
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
            acc = self._sum
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            cumulative[repr(float(bound))] = running
        cumulative["+Inf"] = total
        return {"buckets": cumulative, "sum": acc, "count": total}

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket bounds (upper-bound estimate)."""
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
        if total == 0:
            return 0.0
        target = q * total
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            if running >= target:
                return float(bound)
        return float(self.buckets[-1])


class _NullInstrument:
    """The shared no-op instrument the kill switch hands out."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()

_TYPES = ("counter", "gauge", "histogram")


class _Family:
    """One named metric family: a type, help text, and per-label samples."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: Dict[_LabelKey, Any] = {}


class MetricsRegistry:
    """A name → instrument table shared by every subsystem in a process.

    ``enabled=False`` turns every lookup into :data:`NULL_INSTRUMENT`:
    the registry then holds nothing, renders empty, and costs one
    attribute check per call site.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    # ------------------------------------------------------------------
    # instrument resolution
    # ------------------------------------------------------------------
    def _instrument(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: LabelsLike,
        factory,
    ):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is registered as a {family.kind}, "
                    f"not a {kind}"
                )
            sample = family.samples.get(key)
            if sample is None:
                sample = factory()
                family.samples[key] = sample
            return sample

    def counter(self, name: str, help: str = "", labels: LabelsLike = None) -> Counter:
        """The counter registered under ``(name, labels)`` (created once)."""
        return self._instrument("counter", name, help, labels, Counter)

    def gauge(self, name: str, help: str = "", labels: LabelsLike = None) -> Gauge:
        """The gauge registered under ``(name, labels)`` (created once)."""
        return self._instrument("gauge", name, help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: LabelsLike = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """The histogram registered under ``(name, labels)`` (created once)."""
        return self._instrument(
            "histogram", name, help, labels, lambda: Histogram(buckets)
        )

    # ------------------------------------------------------------------
    # read surfaces
    # ------------------------------------------------------------------
    def _snapshot_families(self) -> List[_Family]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self._snapshot_families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.samples):
                sample = family.samples[key]
                if family.kind == "histogram":
                    snap = sample.snapshot()
                    for bound, count in snap["buckets"].items():
                        label_str = _render_labels(key, [("le", bound)])
                        lines.append(f"{family.name}_bucket{label_str} {count}")
                    label_str = _render_labels(key)
                    lines.append(
                        f"{family.name}_sum{label_str} {_format_value(snap['sum'])}"
                    )
                    lines.append(f"{family.name}_count{label_str} {snap['count']}")
                else:
                    label_str = _render_labels(key)
                    lines.append(
                        f"{family.name}{label_str} {_format_value(sample.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON registry dump (``python -m repro.obs dump``)."""
        out: Dict[str, Any] = {"enabled": self.enabled, "metrics": {}}
        for family in self._snapshot_families():
            samples = []
            for key in sorted(family.samples):
                sample = family.samples[key]
                entry: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry.update(sample.snapshot())
                else:
                    entry["value"] = sample.value
                samples.append(entry)
            out["metrics"][family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def render_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_jsonable(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# the process-wide registry
# ----------------------------------------------------------------------
_GLOBAL_LOCK = threading.Lock()
_GLOBAL: Optional[MetricsRegistry] = None


def _env_enabled() -> bool:
    return os.environ.get(METRICS_ENV_VAR, "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def registry() -> MetricsRegistry:
    """The process-wide registry (created on first use, honours the env)."""
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                _GLOBAL = MetricsRegistry(enabled=_env_enabled())
    return _GLOBAL


def metrics_enabled() -> bool:
    """Whether the process-wide registry records anything."""
    return registry().enabled


def configure_metrics(enabled: Union[bool, None] = None) -> MetricsRegistry:
    """Replace the process-wide registry (``None`` = re-read the env).

    Returns the fresh registry.  Used by tests and by the overhead
    benchmark to compare enabled/disabled arms in one process.
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = MetricsRegistry(
            enabled=_env_enabled() if enabled is None else bool(enabled)
        )
        return _GLOBAL


def reset_registry() -> MetricsRegistry:
    """Drop all recorded samples (a fresh registry with the same setting)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        enabled = _GLOBAL.enabled if _GLOBAL is not None else _env_enabled()
        _GLOBAL = MetricsRegistry(enabled=enabled)
        return _GLOBAL
