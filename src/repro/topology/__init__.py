"""Physical network topologies.

The paper evaluates its algorithms on router-level topologies produced by
the BRITE generator (Waxman model for the flat 100-node topology of
Sections III–V, and a two-level AS/router hierarchy for the sweeps of
Section VI).  BRITE is an external tool, so this subpackage implements the
same generative models directly:

* :func:`waxman_topology` — the classic Waxman random graph used for the
  flat router-level topology,
* :func:`barabasi_albert_topology` — BRITE's alternative preferential
  attachment model,
* :func:`two_level_topology` — the AS-level + router-level hierarchy used
  in the Section VI evaluation,
* :class:`PhysicalNetwork` — the capacity-annotated undirected graph every
  other subsystem operates on.
"""

from repro.topology.network import PhysicalNetwork
from repro.topology.waxman import waxman_topology, WaxmanParameters
from repro.topology.barabasi import barabasi_albert_topology
from repro.topology.hierarchical import two_level_topology, TwoLevelParameters
from repro.topology.generators import (
    grid_topology,
    ring_topology,
    random_regular_topology,
    complete_topology,
    paper_flat_topology,
    paper_two_level_topology,
)

__all__ = [
    "PhysicalNetwork",
    "waxman_topology",
    "WaxmanParameters",
    "barabasi_albert_topology",
    "two_level_topology",
    "TwoLevelParameters",
    "grid_topology",
    "ring_topology",
    "random_regular_topology",
    "complete_topology",
    "paper_flat_topology",
    "paper_two_level_topology",
]
