"""Two-level (AS-level + router-level) hierarchical topologies.

Section VI of the paper evaluates the algorithms on a topology built by
BRITE's top-down hierarchical mode: a 10-node AS-level topology where each
AS is expanded into a 100-node router-level topology, with inter-AS links
connecting border routers.  This module reproduces that construction:

1. generate an AS-level Waxman graph,
2. generate an independent router-level Waxman graph per AS,
3. for every AS-level edge, connect a randomly chosen border router of
   one AS to a randomly chosen border router of the other.

Router-level link capacities and inter-AS link capacities are
configurable; the paper uses a uniform capacity of 100 for all links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.topology.network import PhysicalNetwork
from repro.topology.waxman import WaxmanParameters, waxman_topology
from repro.util.errors import ConfigurationError
from repro.util.rng import SeedLike, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class TwoLevelParameters:
    """Parameters of the two-level hierarchical generator.

    Attributes
    ----------
    num_ases:
        Number of AS-level nodes.
    routers_per_as:
        Router-level nodes inside each AS.
    intra_capacity:
        Capacity of router-level (intra-AS) links.
    inter_capacity:
        Capacity of inter-AS links.
    as_waxman / router_waxman:
        Waxman parameters for each level.
    inter_as_links_per_edge:
        Number of border-router pairs connected per AS-level edge.
    """

    num_ases: int = 10
    routers_per_as: int = 100
    intra_capacity: float = 100.0
    inter_capacity: float = 100.0
    as_waxman: WaxmanParameters = WaxmanParameters(alpha=0.3, beta=0.3)
    router_waxman: WaxmanParameters = WaxmanParameters()
    inter_as_links_per_edge: int = 1

    def validate(self) -> None:
        if self.num_ases < 1:
            raise ConfigurationError(f"num_ases must be >= 1, got {self.num_ases}")
        if self.routers_per_as < 2:
            raise ConfigurationError(
                f"routers_per_as must be >= 2, got {self.routers_per_as}"
            )
        if self.intra_capacity <= 0 or self.inter_capacity <= 0:
            raise ConfigurationError("capacities must be positive")
        if self.inter_as_links_per_edge < 1:
            raise ConfigurationError(
                "inter_as_links_per_edge must be >= 1, got "
                f"{self.inter_as_links_per_edge}"
            )
        self.as_waxman.validate()
        self.router_waxman.validate()


def two_level_topology(
    parameters: Optional[TwoLevelParameters] = None,
    seed: SeedLike = None,
) -> PhysicalNetwork:
    """Generate a two-level AS/router hierarchical topology.

    Returns a :class:`PhysicalNetwork` whose ``node_levels`` attribute maps
    each router to the index of its AS, which experiments use to place
    session members across ASes as the paper assumes.
    """
    params = parameters or TwoLevelParameters()
    params.validate()
    rng = ensure_rng(seed)

    if params.num_ases == 1:
        inner = waxman_topology(
            params.routers_per_as,
            capacity=params.intra_capacity,
            parameters=params.router_waxman,
            seed=rng,
        )
        levels = np.zeros(inner.num_nodes, dtype=np.int64)
        edges = [
            (int(u), int(v), float(c))
            for (u, v), c in zip(inner.edge_endpoints, inner.capacities)
        ]
        return PhysicalNetwork(
            inner.num_nodes, edges, node_positions=inner.node_positions, node_levels=levels
        )

    as_graph = waxman_topology(
        params.num_ases,
        capacity=params.inter_capacity,
        parameters=params.as_waxman,
        seed=rng,
    )

    router_rngs = spawn_rngs(rng, params.num_ases + 1)
    link_rng = router_rngs[-1]

    total_nodes = params.num_ases * params.routers_per_as
    levels = np.empty(total_nodes, dtype=np.int64)
    all_edges = []
    for as_index in range(params.num_ases):
        offset = as_index * params.routers_per_as
        inner = waxman_topology(
            params.routers_per_as,
            capacity=params.intra_capacity,
            parameters=params.router_waxman,
            seed=router_rngs[as_index],
        )
        levels[offset : offset + params.routers_per_as] = as_index
        for (u, v), cap in zip(inner.edge_endpoints, inner.capacities):
            all_edges.append((offset + int(u), offset + int(v), float(cap)))

    # Inter-AS links: for each AS-level edge, connect border routers.
    for a, b in as_graph.edges():
        for _ in range(params.inter_as_links_per_edge):
            ra = int(link_rng.integers(0, params.routers_per_as)) + a * params.routers_per_as
            rb = int(link_rng.integers(0, params.routers_per_as)) + b * params.routers_per_as
            edge = (min(ra, rb), max(ra, rb), params.inter_capacity)
            if (edge[0], edge[1]) not in {(e[0], e[1]) for e in all_edges}:
                all_edges.append(edge)

    return PhysicalNetwork(total_nodes, all_edges, node_levels=levels)
