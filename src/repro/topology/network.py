"""The capacity-annotated physical network.

:class:`PhysicalNetwork` is the substrate every algorithm in the library
operates on: an undirected graph ``G = (V, E)`` with a capacity ``c_e`` on
each edge (paper Section II).  Edges are stored with stable integer
indices so that the flow algorithms can keep per-edge state (length
functions, congestion, flow) in flat NumPy arrays and update them
vectorised, which is what makes the FPTAS loops tractable in Python.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import InvalidNetworkError


class PhysicalNetwork:
    """Undirected capacitated graph with integer-indexed edges.

    Parameters
    ----------
    num_nodes:
        Number of vertices; vertices are the integers ``0 .. num_nodes-1``.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, capacity)`` tuples.  Parallel
        edges are rejected; the graph is simple and undirected.
    default_capacity:
        Capacity assigned to edges given without an explicit capacity.
    node_positions:
        Optional ``(num_nodes, 2)`` coordinates (kept for Waxman-generated
        topologies; useful for distance-aware experiments and plotting).
    node_levels:
        Optional per-node level labels for hierarchical topologies
        (0 = AS/backbone router, 1 = stub router).
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Tuple],
        default_capacity: float = 1.0,
        node_positions: Optional[np.ndarray] = None,
        node_levels: Optional[Sequence[int]] = None,
    ) -> None:
        if num_nodes <= 0:
            raise InvalidNetworkError(f"num_nodes must be positive, got {num_nodes}")
        if default_capacity <= 0:
            raise InvalidNetworkError(
                f"default_capacity must be positive, got {default_capacity}"
            )
        self._num_nodes = int(num_nodes)

        endpoints: List[Tuple[int, int]] = []
        capacities: List[float] = []
        index_of: Dict[Tuple[int, int], int] = {}
        for item in edges:
            if len(item) == 2:
                u, v = item
                cap = default_capacity
            elif len(item) == 3:
                u, v, cap = item
            else:
                raise InvalidNetworkError(f"edge tuple must have 2 or 3 items, got {item!r}")
            u, v = int(u), int(v)
            cap = float(cap)
            if u == v:
                raise InvalidNetworkError(f"self-loop on node {u} is not allowed")
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise InvalidNetworkError(
                    f"edge ({u}, {v}) references a node outside 0..{num_nodes - 1}"
                )
            if cap <= 0:
                raise InvalidNetworkError(f"edge ({u}, {v}) has non-positive capacity {cap}")
            key = (min(u, v), max(u, v))
            if key in index_of:
                raise InvalidNetworkError(f"duplicate edge ({u}, {v})")
            index_of[key] = len(endpoints)
            endpoints.append(key)
            capacities.append(cap)

        if not endpoints:
            raise InvalidNetworkError("a physical network must have at least one edge")

        self._edge_endpoints = np.asarray(endpoints, dtype=np.int64)
        self._capacities = np.asarray(capacities, dtype=float)
        self._edge_index = index_of

        if node_positions is not None:
            pos = np.asarray(node_positions, dtype=float)
            if pos.shape != (num_nodes, 2):
                raise InvalidNetworkError(
                    f"node_positions must have shape ({num_nodes}, 2), got {pos.shape}"
                )
            self._positions: Optional[np.ndarray] = pos
        else:
            self._positions = None

        if node_levels is not None:
            levels = np.asarray(node_levels, dtype=np.int64)
            if levels.shape != (num_nodes,):
                raise InvalidNetworkError(
                    f"node_levels must have shape ({num_nodes},), got {levels.shape}"
                )
            self._levels: Optional[np.ndarray] = levels
        else:
            self._levels = None

        # Adjacency as (neighbor, edge_index) lists, built once.
        adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(num_nodes)]
        for eid, (u, v) in enumerate(endpoints):
            adjacency[u].append((v, eid))
            adjacency[v].append((u, eid))
        self._adjacency = [tuple(neigh) for neigh in adjacency]

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of vertices."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._edge_endpoints.shape[0])

    @property
    def capacities(self) -> np.ndarray:
        """Read-only view of the per-edge capacity vector ``c_e``."""
        view = self._capacities.view()
        view.flags.writeable = False
        return view

    @property
    def edge_endpoints(self) -> np.ndarray:
        """``(num_edges, 2)`` array of edge endpoints with ``u < v``."""
        view = self._edge_endpoints.view()
        view.flags.writeable = False
        return view

    @property
    def node_positions(self) -> Optional[np.ndarray]:
        """Node coordinates if the generator provided them, else ``None``."""
        return None if self._positions is None else self._positions.copy()

    @property
    def node_levels(self) -> Optional[np.ndarray]:
        """Per-node hierarchy levels if provided, else ``None``."""
        return None if self._levels is None else self._levels.copy()

    def nodes(self) -> range:
        """Iterate over vertex identifiers."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` tuples with ``u < v``."""
        for u, v in self._edge_endpoints:
            yield int(u), int(v)

    def edge_id(self, u: int, v: int) -> int:
        """Return the integer index of edge ``(u, v)``.

        Raises :class:`InvalidNetworkError` if the edge does not exist.
        """
        key = (min(int(u), int(v)), max(int(u), int(v)))
        try:
            return self._edge_index[key]
        except KeyError as exc:
            raise InvalidNetworkError(f"edge ({u}, {v}) does not exist") from exc

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        key = (min(int(u), int(v)), max(int(u), int(v)))
        return key in self._edge_index

    def capacity(self, u: int, v: int) -> float:
        """Capacity of edge ``(u, v)``."""
        return float(self._capacities[self.edge_id(u, v)])

    def neighbors(self, u: int) -> Tuple[Tuple[int, int], ...]:
        """Neighbours of ``u`` as ``(neighbor, edge_index)`` pairs."""
        if not (0 <= u < self._num_nodes):
            raise InvalidNetworkError(f"node {u} outside 0..{self._num_nodes - 1}")
        return self._adjacency[u]

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        return len(self.neighbors(u))

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an integer array."""
        return np.asarray([len(a) for a in self._adjacency], dtype=np.int64)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the graph is connected (BFS from vertex 0)."""
        seen = np.zeros(self._num_nodes, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v, _eid in self._adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._num_nodes

    def connected_component(self, start: int) -> List[int]:
        """Vertices reachable from ``start`` (including ``start``)."""
        seen = np.zeros(self._num_nodes, dtype=bool)
        stack = [start]
        seen[start] = True
        out = [start]
        while stack:
            u = stack.pop()
            for v, _eid in self._adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    out.append(v)
                    stack.append(v)
        return sorted(out)

    def validate(self) -> None:
        """Re-run structural validation; raises on inconsistency."""
        if self._capacities.min() <= 0:
            raise InvalidNetworkError("all capacities must be positive")
        if self._edge_endpoints.shape[0] != self._capacities.shape[0]:
            raise InvalidNetworkError("edge/capacity length mismatch")

    # ------------------------------------------------------------------
    # conversions and derived structures
    # ------------------------------------------------------------------
    def _csr_structure(self):
        """Cached CSR adjacency *structure*: ``(indptr, indices, perm)``.

        The sparsity pattern of the weighted adjacency matrix depends only
        on the (immutable) edge set, so the expensive part of the old
        per-call ``coo_matrix(...).tocsr()`` conversion — the row/column
        sort — is paid exactly once.  ``perm`` maps each CSR data slot to
        the edge index whose weight it holds, so re-weighting the matrix
        is a single fancy-index gather into ``.data``.
        """
        cached = getattr(self, "_csr_cache", None)
        if cached is not None:
            return cached
        from scipy.sparse import coo_matrix

        u = self._edge_endpoints[:, 0]
        v = self._edge_endpoints[:, 1]
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        # Seed the conversion with each entry's COO position: the graph is
        # simple (no duplicates to sum), so after ``tocsr`` the data array
        # holds the position permutation, and position ``p`` carries the
        # weight of edge ``p % num_edges`` (data was ``[w, w]`` stacked).
        positions = np.arange(rows.shape[0], dtype=np.int64)
        template = coo_matrix(
            (positions, (rows, cols)), shape=(self._num_nodes, self._num_nodes)
        ).tocsr()
        perm = template.data % self.num_edges
        self._csr_cache = (template.indptr, template.indices, perm)
        return self._csr_cache

    def _csr_weights(self, weights: Optional[np.ndarray]) -> np.ndarray:
        """Validated per-edge weight vector (all-ones for ``None``)."""
        if weights is None:
            return np.ones(self.num_edges, dtype=float)
        w = np.asarray(weights, dtype=float)
        if w.shape != (self.num_edges,):
            raise InvalidNetworkError(
                f"weights must have shape ({self.num_edges},), got {w.shape}"
            )
        return w

    def adjacency_matrix(self, weights: Optional[np.ndarray] = None):
        """Sparse symmetric adjacency matrix (CSR).

        Built from the cached structure (:meth:`_csr_structure`), so only
        the data array is computed per call; the result is bit-identical
        to a from-scratch ``coo_matrix(...).tocsr()`` conversion.  Each
        call returns a fresh matrix with its own index arrays — callers
        may mutate it freely.

        Parameters
        ----------
        weights:
            Optional per-edge weights; defaults to all-ones (hop metric).
        """
        from scipy.sparse import csr_matrix

        w = self._csr_weights(weights)
        indptr, indices, perm = self._csr_structure()
        return csr_matrix(
            (w[perm], indices.copy(), indptr.copy()),
            shape=(self._num_nodes, self._num_nodes),
        )

    def csr_adjacency_inplace(self, weights: Optional[np.ndarray] = None):
        """Shared scratch CSR adjacency, re-weighted in place (hot path).

        Returns the same matrix object on every call with its ``.data``
        refreshed from ``weights`` — zero allocations beyond the first
        call, no conversion, no sort.  The matrix is *invalidated by the
        next call*: callers must consume it immediately (the Dijkstra
        wrappers do) and never hand it out or mutate its structure.
        """
        from scipy.sparse import csr_matrix

        w = self._csr_weights(weights)
        indptr, indices, perm = self._csr_structure()
        scratch = getattr(self, "_csr_scratch", None)
        if scratch is None:
            scratch = csr_matrix(
                (w[perm], indices, indptr),
                shape=(self._num_nodes, self._num_nodes),
            )
            self._csr_scratch = scratch
        else:
            np.take(w, perm, out=scratch.data)
        return scratch

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with ``capacity`` attributes."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._num_nodes))
        for eid, (u, v) in enumerate(self._edge_endpoints):
            g.add_edge(int(u), int(v), capacity=float(self._capacities[eid]), index=eid)
        return g

    @classmethod
    def from_networkx(cls, graph, default_capacity: float = 1.0) -> "PhysicalNetwork":
        """Build a network from a networkx graph.

        Node labels are relabelled to ``0..n-1`` in sorted order; edge
        ``capacity`` attributes are honoured when present.
        """
        nodes = sorted(graph.nodes())
        relabel = {node: i for i, node in enumerate(nodes)}
        edges = []
        for u, v, data in graph.edges(data=True):
            cap = float(data.get("capacity", default_capacity))
            edges.append((relabel[u], relabel[v], cap))
        return cls(len(nodes), edges, default_capacity=default_capacity)

    def with_capacities(self, capacities: Sequence[float]) -> "PhysicalNetwork":
        """Return a copy of this network with a new capacity vector."""
        caps = np.asarray(capacities, dtype=float)
        if caps.shape != (self.num_edges,):
            raise InvalidNetworkError(
                f"capacities must have shape ({self.num_edges},), got {caps.shape}"
            )
        edges = [
            (int(u), int(v), float(c))
            for (u, v), c in zip(self._edge_endpoints, caps)
        ]
        return PhysicalNetwork(
            self._num_nodes,
            edges,
            node_positions=self._positions,
            node_levels=self._levels,
        )

    def with_uniform_capacity(self, capacity: float) -> "PhysicalNetwork":
        """Return a copy with every edge capacity set to ``capacity``."""
        return self.with_capacities(np.full(self.num_edges, float(capacity)))

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PhysicalNetwork(num_nodes={self._num_nodes}, "
            f"num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhysicalNetwork):
            return NotImplemented
        if self._num_nodes != other._num_nodes or self.num_edges != other.num_edges:
            return False
        mine = sorted(
            (int(u), int(v), float(c))
            for (u, v), c in zip(self._edge_endpoints, self._capacities)
        )
        theirs = sorted(
            (int(u), int(v), float(c))
            for (u, v), c in zip(other._edge_endpoints, other._capacities)
        )
        return all(
            a[0] == b[0] and a[1] == b[1] and abs(a[2] - b[2]) < 1e-9
            for a, b in zip(mine, theirs)
        )

    def __hash__(self) -> int:
        return hash((self._num_nodes, self.num_edges))
