"""Waxman random topology generator.

The paper's flat 100-node router-level topology (Sections III–V) is
produced by the BRITE generator's Waxman model.  The Waxman model places
``n`` nodes uniformly in a square and connects each pair ``(u, v)`` with
probability ``alpha * exp(-d(u, v) / (beta * L))`` where ``d`` is the
Euclidean distance and ``L`` the maximum possible distance.  BRITE
additionally guarantees connectivity by incrementally attaching each new
node to at least ``m`` existing nodes; we reproduce both behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class WaxmanParameters:
    """Parameters of the Waxman model.

    Attributes
    ----------
    alpha:
        Overall edge density knob (BRITE default 0.15).
    beta:
        Distance sensitivity; larger values favour long edges
        (BRITE default 0.2).
    domain_size:
        Side length of the placement square.
    min_attachment:
        Minimum number of edges each incrementally-placed node creates to
        previously placed nodes (BRITE's ``m``); guarantees connectivity
        when >= 1.
    """

    alpha: float = 0.15
    beta: float = 0.2
    domain_size: float = 1000.0
    min_attachment: int = 2

    def validate(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.beta <= 0:
            raise ConfigurationError(f"beta must be positive, got {self.beta}")
        if self.domain_size <= 0:
            raise ConfigurationError(f"domain_size must be positive, got {self.domain_size}")
        if self.min_attachment < 1:
            raise ConfigurationError(
                f"min_attachment must be >= 1, got {self.min_attachment}"
            )


def waxman_topology(
    num_nodes: int,
    capacity: float = 100.0,
    parameters: Optional[WaxmanParameters] = None,
    seed: SeedLike = None,
) -> PhysicalNetwork:
    """Generate a connected Waxman topology.

    Parameters
    ----------
    num_nodes:
        Number of routers.
    capacity:
        Uniform link capacity (the paper uses 100 everywhere).
    parameters:
        Waxman model parameters; defaults follow BRITE's defaults.
    seed:
        RNG seed for reproducibility.

    Returns
    -------
    PhysicalNetwork
        A connected topology with node positions recorded.
    """
    if num_nodes < 2:
        raise ConfigurationError(f"num_nodes must be >= 2, got {num_nodes}")
    params = parameters or WaxmanParameters()
    params.validate()
    rng = ensure_rng(seed)

    positions = rng.uniform(0.0, params.domain_size, size=(num_nodes, 2))
    max_dist = params.domain_size * np.sqrt(2.0)

    # Pairwise distances (vectorised).
    diff = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    prob = params.alpha * np.exp(-dist / (params.beta * max_dist))

    edges = set()
    # Incremental attachment pass: node i (i >= 1) connects to
    # min_attachment previously-placed nodes chosen proportionally to the
    # Waxman probability, guaranteeing connectivity like BRITE does.
    for i in range(1, num_nodes):
        weights = prob[i, :i].copy()
        if weights.sum() <= 0:
            weights = np.ones(i)
        m = min(params.min_attachment, i)
        targets = rng.choice(i, size=m, replace=False, p=weights / weights.sum())
        for t in np.atleast_1d(targets):
            edges.add((min(i, int(t)), max(i, int(t))))

    # Probabilistic pass over all remaining pairs.
    upper_u, upper_v = np.triu_indices(num_nodes, k=1)
    coins = rng.uniform(size=upper_u.shape[0])
    accept = coins < prob[upper_u, upper_v]
    for u, v in zip(upper_u[accept], upper_v[accept]):
        edges.add((int(u), int(v)))

    edge_list = [(u, v, capacity) for (u, v) in sorted(edges)]
    return PhysicalNetwork(
        num_nodes, edge_list, default_capacity=capacity, node_positions=positions
    )
