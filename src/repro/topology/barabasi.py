"""Barabási–Albert preferential-attachment topology generator.

BRITE offers the BA model as the alternative to Waxman; we include it so
the sensitivity of the paper's findings to the topology model can be
explored (the paper notes its conclusions persist on different
topologies).
"""

from __future__ import annotations

import numpy as np

from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.rng import SeedLike, ensure_rng


def barabasi_albert_topology(
    num_nodes: int,
    attachment: int = 2,
    capacity: float = 100.0,
    seed: SeedLike = None,
) -> PhysicalNetwork:
    """Generate a Barabási–Albert preferential attachment topology.

    The construction starts from a clique on ``attachment + 1`` nodes; each
    subsequent node attaches to ``attachment`` distinct existing nodes with
    probability proportional to their current degree.

    Parameters
    ----------
    num_nodes:
        Total number of routers.
    attachment:
        Edges added per new node (``m`` in the BA model).
    capacity:
        Uniform link capacity.
    seed:
        RNG seed.
    """
    if attachment < 1:
        raise ConfigurationError(f"attachment must be >= 1, got {attachment}")
    if num_nodes <= attachment:
        raise ConfigurationError(
            f"num_nodes must exceed attachment ({attachment}), got {num_nodes}"
        )
    rng = ensure_rng(seed)

    edges = set()
    degrees = np.zeros(num_nodes, dtype=float)

    seed_size = attachment + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            edges.add((u, v))
            degrees[u] += 1
            degrees[v] += 1

    for new in range(seed_size, num_nodes):
        existing = degrees[:new]
        probs = existing / existing.sum()
        targets = rng.choice(new, size=attachment, replace=False, p=probs)
        for t in np.atleast_1d(targets):
            t = int(t)
            edges.add((min(new, t), max(new, t)))
            degrees[new] += 1
            degrees[t] += 1

    edge_list = [(u, v, capacity) for (u, v) in sorted(edges)]
    return PhysicalNetwork(num_nodes, edge_list, default_capacity=capacity)
