"""Convenience topology constructors.

Besides the Waxman/BA/hierarchical models, the test suite and examples use
a handful of deterministic topologies (grids, rings, complete graphs,
random-regular graphs) whose optimal flow values can be reasoned about by
hand.  The two ``paper_*`` helpers build the exact evaluation topologies
of the paper at configurable scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.topology.hierarchical import TwoLevelParameters, two_level_topology
from repro.topology.network import PhysicalNetwork
from repro.topology.waxman import WaxmanParameters, waxman_topology
from repro.util.errors import ConfigurationError
from repro.util.rng import SeedLike, ensure_rng


def grid_topology(rows: int, cols: int, capacity: float = 100.0) -> PhysicalNetwork:
    """A ``rows x cols`` 4-neighbour grid with uniform capacity."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ConfigurationError(f"grid must have at least 2 nodes, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1, capacity))
            if r + 1 < rows:
                edges.append((node, node + cols, capacity))
    return PhysicalNetwork(rows * cols, edges, default_capacity=capacity)


def ring_topology(num_nodes: int, capacity: float = 100.0) -> PhysicalNetwork:
    """A cycle on ``num_nodes`` vertices with uniform capacity."""
    if num_nodes < 3:
        raise ConfigurationError(f"a ring needs >= 3 nodes, got {num_nodes}")
    edges = [(i, (i + 1) % num_nodes, capacity) for i in range(num_nodes)]
    return PhysicalNetwork(num_nodes, edges, default_capacity=capacity)


def complete_topology(num_nodes: int, capacity: float = 100.0) -> PhysicalNetwork:
    """A complete graph on ``num_nodes`` vertices with uniform capacity."""
    if num_nodes < 2:
        raise ConfigurationError(f"a complete graph needs >= 2 nodes, got {num_nodes}")
    edges = [
        (u, v, capacity) for u in range(num_nodes) for v in range(u + 1, num_nodes)
    ]
    return PhysicalNetwork(num_nodes, edges, default_capacity=capacity)


def random_regular_topology(
    num_nodes: int,
    degree: int = 4,
    capacity: float = 100.0,
    seed: SeedLike = None,
    max_attempts: int = 100,
) -> PhysicalNetwork:
    """A connected random ``degree``-regular graph (configuration model).

    Retries until a simple connected graph is produced, up to
    ``max_attempts`` times.
    """
    if degree < 2:
        raise ConfigurationError(f"degree must be >= 2, got {degree}")
    if num_nodes <= degree:
        raise ConfigurationError(
            f"num_nodes must exceed degree ({degree}), got {num_nodes}"
        )
    if (num_nodes * degree) % 2 != 0:
        raise ConfigurationError("num_nodes * degree must be even")
    rng = ensure_rng(seed)

    for _attempt in range(max_attempts):
        stubs = np.repeat(np.arange(num_nodes), degree)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edge_set = set()
        ok = True
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v:
                ok = False
                break
            key = (min(u, v), max(u, v))
            if key in edge_set:
                ok = False
                break
            edge_set.add(key)
        if not ok:
            continue
        net = PhysicalNetwork(
            num_nodes, [(u, v, capacity) for u, v in sorted(edge_set)],
            default_capacity=capacity,
        )
        if net.is_connected():
            return net
    raise ConfigurationError(
        f"failed to generate a connected {degree}-regular graph on "
        f"{num_nodes} nodes after {max_attempts} attempts"
    )


def paper_flat_topology(
    num_nodes: int = 100,
    capacity: float = 100.0,
    seed: SeedLike = 2004,
    parameters: Optional[WaxmanParameters] = None,
) -> PhysicalNetwork:
    """The flat 100-node Waxman router topology of the paper's Sections III-V.

    All edges have capacity 100 as in the paper.  ``seed`` defaults to a
    fixed value so that every experiment module operates on the same
    topology unless told otherwise.
    """
    return waxman_topology(num_nodes, capacity=capacity, parameters=parameters, seed=seed)


def paper_two_level_topology(
    num_ases: int = 10,
    routers_per_as: int = 100,
    capacity: float = 100.0,
    seed: SeedLike = 2004,
) -> PhysicalNetwork:
    """The two-level 10x100 topology of the paper's Section VI evaluation.

    At quick scale, experiments shrink ``num_ases``/``routers_per_as`` so
    the sweeps finish in seconds; the construction is identical.
    """
    params = TwoLevelParameters(
        num_ases=num_ases,
        routers_per_as=routers_per_as,
        intra_capacity=capacity,
        inter_capacity=capacity,
    )
    return two_level_topology(params, seed=seed)
