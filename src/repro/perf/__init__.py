"""Performance measurement and trajectory records.

The repo's perf trajectory is tracked through ``BENCH_core.json``, a
small machine-readable record of the oracle hot path's throughput
(oracle calls/sec and wall time under fixed versus dynamic routing, the
tree-memoization speedup, the sparse tree-length / length-multiply /
oracle-batch ablations, the dynamic one-Dijkstra fast path + union
front, and the measured Prim crossover).  Every
write *appends* a compact entry to the record's ``history`` list, so the
file is a run-over-run trajectory rather than a snapshot.
``benchmarks/bench_core_ops.py`` emits it at quick scale; a
``bench_smoke``-marked test exercises the writer at tiny scale inside
the tier-1 suite.
"""

from repro.perf.record import (
    BENCH_SCHEMA,
    QUICK_PROFILE,
    TINY_PROFILE,
    PerfProfile,
    build_perf_instance,
    measure_core_perf,
    profile_for_scale,
    write_core_perf_record,
)

__all__ = [
    "BENCH_SCHEMA",
    "PerfProfile",
    "QUICK_PROFILE",
    "TINY_PROFILE",
    "build_perf_instance",
    "measure_core_perf",
    "profile_for_scale",
    "write_core_perf_record",
]
