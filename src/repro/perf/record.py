"""The ``BENCH_core.json`` perf record for the oracle hot path.

Measures the cost that dominates every algorithm in the paper — the
minimum-overlay-spanning-tree oracle — on a deterministic flat-Waxman
instance, and writes a JSON record so the perf trajectory is tracked
from one PR to the next:

* MaxFlow wall time and oracle calls/sec under **fixed IP routing**,
  with tree memoization on and off (the ablation for the oracle's tree
  cache; the ``speedup`` field is their ratio),
* MaxFlow wall time and oracle calls/sec under **dynamic routing**
  (Dijkstra-dominated, so memoization matters less — recorded to keep
  the fixed/dynamic cost ratio visible),
* the **tree-length evaluation** ablation: the sparse incidence mat-vec
  over the tree's physical edges (:meth:`OverlayTree.length`) versus the
  dense full-``|E|`` dot product it replaced, plus the dense/sparse
  **crossover sweep** backing ``SPARSE_LENGTH_MIN_EDGES`` and the
  **ledger round** arm (one :meth:`TreeLedger.lengths_for` call under
  the best available kernel backend for a whole round versus the
  per-tree ``length`` loop),
* the **ledger kernel** ablation: the three ledger hot ops — round
  lengths, the ``edge_values`` scatter, and the all-columns
  ``lengths_for_all`` kernel — timed on the ``numpy`` backend versus
  the best available backend (``numba`` when importable, else the
  pure-NumPy ``ordered`` backend; the ``backend`` field records which),
* the **length-update batching** ablation: one
  :meth:`LengthFunction.multiply_batch` call over an accumulated batch
  of (edge, factor) updates versus the per-step ``multiply`` loop it
  coalesces, plus the ``assume_unique`` fast-path arm (skipping the
  duplicate-safe ``np.multiply.at`` accumulation when the engine can
  prove ids are unique),
* the **engine step** ablation: wall time of full
  :meth:`~repro.core.engine.PhaseEngine.step` calls — oracle round,
  routing decision and length update — with the stacked-tree path
  (``TreeLedger`` columns + batched front, the default) versus the
  per-tree per-oracle loop (``stacked_trees=False, batch_oracle=False``),
  under both routing models at a larger scale than the solver profiles,
* the **oracle batching** ablation: one
  :class:`~repro.core.engine.BatchedOracleFront` round (a stacked
  incidence mat-vec answering every session's tree query at once — the
  engine's per-iteration all-session scan) versus the per-oracle query
  loop it replaces,
* the **dynamic oracle fast path**: MaxFlow under dynamic routing with
  the one-Dijkstra retained-query oracle and the union-Dijkstra front
  (the default) versus the pre-change multi-Dijkstra pipeline
  (``configure_dynamic_fastpath(False)``), plus a front-level ablation
  (one union-of-members Dijkstra per all-session round versus one
  Dijkstra per oracle),
* the **Prim crossover**: plain-Python versus vectorised-NumPy Prim at
  several member counts, locating the measured crossover that sets
  ``repro.overlay.mst._PYTHON_PRIM_LIMIT``,
* the **observability overhead** ablation: full engine steps with the
  ``repro.obs`` metrics registry disabled, enabled, and with a live
  trace-span :class:`~repro.obs.tracing.Tracer` active (interleaved
  min-of-reps — the bound backing the "metrics on by default" claim is
  the enabled-vs-disabled delta), plus the trace bit-identity check
  (a traced MaxFlow solve must produce the identical solution),
* the **durability** cost: fsync'd store puts (``durable=True``, the
  default) versus volatile puts on bare ``ReportStore.put`` calls and on
  the realistic cold solve-and-persist cycle the cluster workers run
  (the <10% guard lives on the cycle — solving dominates, as it does in
  production — while the bare-put arm keeps the raw fsync cost honest),
  plus the disabled :func:`repro.faults.point` ns/call pinning the
  fault-injection seams' zero-overhead-when-disabled claim.

The record is a *trajectory*, not a snapshot: every run appends a
compact entry to the ``history`` list (the latest run's full sections
stay top-level), so ``BENCH_core.json`` accumulates one entry per PR /
benchmark invocation instead of overwriting the past.

Measurements use fresh routing models per run so no caches leak between
the memoized and unmemoized arms.  Run as a module for a CLI::

    python -m repro.perf.record --scale quick --output BENCH_core.json
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.overlay.oracle import MinimumOverlayTreeOracle
from repro.overlay.session import Session, random_session
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.generators import paper_flat_topology
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng
from repro.util.serialization import dump_json

BENCH_SCHEMA = "BENCH_core/v9"
_KNOWN_SCHEMAS = (
    "BENCH_core/v1",
    "BENCH_core/v2",
    "BENCH_core/v3",
    "BENCH_core/v4",
    "BENCH_core/v5",
    "BENCH_core/v6",
    "BENCH_core/v7",
    "BENCH_core/v8",
    BENCH_SCHEMA,
)


def _best_kernel_backend() -> str:
    """The fastest available kernel backend name for the bench arms.

    ``numba`` when importable, else the pure-NumPy ``ordered`` backend —
    the compiled arm of the ``ledger_kernel`` section always records
    which backend actually ran (``backend`` field), so trajectories
    from numba-less environments stay honestly labelled.
    """
    try:
        import numba  # noqa: F401
    except ImportError:
        return "ordered"
    return "numba"


@dataclass(frozen=True)
class PerfProfile:
    """Instance parameters for one perf-record scale."""

    name: str
    num_nodes: int
    session_sizes: Tuple[int, ...]
    fixed_ratio: float
    dynamic_ratio: float
    # The tree-length ablation runs on its own, larger topology: the
    # sparse evaluation only engages above
    # ``overlay.tree.SPARSE_LENGTH_MIN_EDGES`` physical edges, which the
    # solver-profile instances sit below by design (they must solve in
    # seconds).
    length_bench_nodes: int = 600
    length_evals: int = 20000
    # The dense/sparse crossover sweep: node counts whose edge counts
    # bracket ``SPARSE_LENGTH_MIN_EDGES``, and how often each point's
    # raw dense/gathered dot is repeated.
    crossover_nodes: Tuple[int, ...] = (160, 240, 320, 480, 640)
    crossover_evals: int = 3000
    # The ledger-round arm: how many trees one round evaluates and how
    # many rounds to time.
    ledger_trees: int = 8
    ledger_rounds: int = 2000
    # The multiply-batch ablation: how many accumulated (edge, factor)
    # updates one batched call replaces, and how often to repeat the
    # whole comparison for a stable timing.
    multiply_updates: int = 512
    multiply_edges_per_update: int = 24
    multiply_reps: int = 50
    # The assume_unique fast-path arm: size of the duplicate-free batch
    # both multiply_batch variants apply.
    multiply_unique_ids: int = 1024
    # The oracle-batch ablation: a many-session instance (the batched
    # front's win grows with the session count) and how many all-session
    # query rounds to time.
    batch_nodes: int = 200
    batch_sessions: Tuple[int, ...] = (8, 6, 7, 8, 6, 7, 8, 6)
    batch_rounds: int = 300
    # The dynamic-front ablation reuses the batch instance under dynamic
    # routing; Dijkstra rounds cost more than mat-vecs, so it times
    # fewer of them.
    dynamic_front_rounds: int = 120
    # The Prim-crossover sweep: member counts to time both variants at
    # (the per-size repetition count is derived from the size).
    prim_sizes: Tuple[int, ...] = (8, 16, 32, 64, 96, 128, 192)
    prim_reps: int = 2000
    # The engine-step ablation: a larger instance than the solver
    # profiles (its edge count sits in the sparse/ledger regime), timed
    # as a bounded number of full engine steps per arm.  The dynamic arm
    # uses fewer sessions and steps — Dijkstra rounds cost more than
    # incidence mat-vecs.
    engine_nodes: int = 320
    engine_fixed_sessions: Tuple[int, ...] = (6, 5, 4) * 8
    engine_dynamic_sessions: Tuple[int, ...] = (6, 5, 4) * 4
    engine_fixed_steps: int = 600
    engine_dynamic_steps: int = 150
    engine_epsilon: float = 0.05
    engine_warm_steps: int = 16
    # The observability-overhead ablation: engine steps per timed arm
    # and interleaved repetitions (each arm keeps its best-of-reps, so
    # adjacent arms see the same machine noise).
    obs_steps: int = 400
    obs_reps: int = 3
    # The durability arms: bare puts per store variant, interleaved
    # solve-and-persist repetitions (best-of), and how many disabled
    # fault-point crossings to time for the ns/call figure.
    durability_puts: int = 200
    durability_reps: int = 4
    fault_point_calls: int = 200000
    seed: int = 2004


# "tiny" must stay sub-seconds: it runs inside the tier-1 test suite
# (the bench_smoke marker).  "quick" is the benchmark-suite default.
TINY_PROFILE = PerfProfile(
    name="tiny",
    num_nodes=24,
    session_sizes=(4, 3),
    fixed_ratio=0.80,
    dynamic_ratio=0.75,
    length_bench_nodes=400,
    length_evals=2000,
    crossover_nodes=(160, 320),
    crossover_evals=300,
    ledger_trees=6,
    ledger_rounds=200,
    multiply_updates=128,
    multiply_reps=5,
    multiply_unique_ids=256,
    batch_nodes=80,
    batch_sessions=(5, 4, 5, 4),
    batch_rounds=40,
    dynamic_front_rounds=20,
    prim_sizes=(8, 32, 96),
    prim_reps=200,
    engine_nodes=120,
    engine_fixed_sessions=(4, 3) * 3,
    engine_dynamic_sessions=(4, 3) * 2,
    engine_fixed_steps=60,
    engine_dynamic_steps=20,
    engine_warm_steps=8,
    obs_steps=50,
    obs_reps=2,
    durability_puts=60,
    durability_reps=4,
    fault_point_calls=50000,
)
QUICK_PROFILE = PerfProfile(
    name="quick",
    num_nodes=48,
    session_sizes=(6, 4),
    fixed_ratio=0.90,
    dynamic_ratio=0.80,
    length_bench_nodes=600,
    length_evals=20000,
)


def profile_for_scale(scale: str) -> PerfProfile:
    """Resolve a perf profile from a scale name."""
    if scale == "tiny":
        return TINY_PROFILE
    if scale == "quick":
        return QUICK_PROFILE
    raise ConfigurationError(f"unknown perf scale {scale!r}; use 'tiny' or 'quick'")


def build_perf_instance(profile: PerfProfile) -> Tuple[PhysicalNetwork, List[Session]]:
    """The deterministic network + sessions a perf profile measures on.

    Public so the benchmark suite can run ablations on exactly the
    instance the BENCH_core record describes.
    """
    network = paper_flat_topology(
        num_nodes=profile.num_nodes, capacity=100.0, seed=profile.seed
    )
    rng = ensure_rng(profile.seed + 1)
    sessions = [
        random_session(
            network, size, demand=100.0, seed=rng, name=f"session-{index + 1}"
        )
        for index, size in enumerate(profile.session_sizes)
    ]
    return network, sessions


def _timed_maxflow(
    network: PhysicalNetwork,
    sessions: List[Session],
    routing_kind: str,
    ratio: float,
    memoize: bool,
) -> Dict[str, float]:
    routing = (
        FixedIPRouting(network) if routing_kind == "fixed" else DynamicRouting(network)
    )
    solver = MaxFlow(
        sessions,
        routing,
        MaxFlowConfig(approximation_ratio=ratio, memoize=memoize),
    )
    start = time.perf_counter()
    solution = solver.solve()
    seconds = time.perf_counter() - start
    hits = sum(o.cache_hits for o in solver.oracles)
    misses = sum(o.cache_misses for o in solver.oracles)
    return {
        "seconds": seconds,
        "oracle_calls": float(solution.oracle_calls),
        "calls_per_sec": solution.oracle_calls / seconds if seconds > 0 else 0.0,
        "cache_hits": float(hits),
        "cache_misses": float(misses),
        "overall_throughput": solution.overall_throughput,
    }


def _timed_tree_length(profile: PerfProfile) -> Dict[str, float]:
    """Ablation: sparse incidence mat-vec tree length vs the dense dot.

    ``OverlayTree.length`` gathers the tree's physical-edge lengths and
    dots them with the precomputed usage values; the dense arm is the
    full-``|E|`` product it replaced.  Both arms evaluate the same tree
    under the same length vector, so the speedup isolates the sparse
    evaluation itself.  Measured on the profile's dedicated
    ``length_bench_nodes`` topology — large enough (``>=
    SPARSE_LENGTH_MIN_EDGES`` edges) for the sparse path to engage.
    """
    network = paper_flat_topology(
        num_nodes=profile.length_bench_nodes, capacity=100.0, seed=profile.seed
    )
    session = random_session(network, 6, demand=100.0, seed=profile.seed + 2)
    oracle = MinimumOverlayTreeOracle(session, FixedIPRouting(network))
    tree = oracle.minimum_tree(np.ones(network.num_edges)).tree
    iterations = profile.length_evals
    lengths = ensure_rng(0).uniform(0.1, 1.0, network.num_edges)
    dense_usage = tree.edge_usage

    start = time.perf_counter()
    for _ in range(iterations):
        tree.length(lengths)
    sparse_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iterations):
        float(np.dot(dense_usage, lengths))
    dense_seconds = time.perf_counter() - start

    return {
        "iterations": float(iterations),
        "physical_edges": float(tree.physical_edges.size),
        "num_edges": float(network.num_edges),
        "sparse_seconds": sparse_seconds,
        "dense_seconds": dense_seconds,
        "sparse_evals_per_sec": iterations / sparse_seconds if sparse_seconds > 0 else 0.0,
        "dense_evals_per_sec": iterations / dense_seconds if dense_seconds > 0 else 0.0,
        "sparse_speedup": dense_seconds / sparse_seconds if sparse_seconds > 0 else 0.0,
        "crossover": _timed_length_crossover(profile),
        "ledger": _timed_ledger_round(profile),
    }


def _timed_length_crossover(profile: PerfProfile) -> Dict[str, object]:
    """The dense/sparse tree-length crossover sweep.

    Times the two raw evaluations behind :meth:`OverlayTree.length` —
    the dense full-``|E|`` dot and the gathered footprint dot — on
    instances whose edge counts bracket ``SPARSE_LENGTH_MIN_EDGES``, and
    reports the first measured edge count where the gather wins.  This
    is the re-measurement backing the constant now that engine rounds in
    the sparse regime are served through the shared
    :class:`~repro.core.engine.TreeLedger` (the per-tree branch remains
    for loop-mode ablations and standalone callers).
    """
    from repro.overlay.tree import SPARSE_LENGTH_MIN_EDGES

    edge_counts: List[float] = []
    dense_us: List[float] = []
    sparse_us: List[float] = []
    crossover = 0.0
    reps = profile.crossover_evals
    for nodes in profile.crossover_nodes:
        network = paper_flat_topology(
            num_nodes=nodes, capacity=100.0, seed=profile.seed
        )
        session = random_session(network, 6, demand=100.0, seed=profile.seed + 2)
        oracle = MinimumOverlayTreeOracle(session, FixedIPRouting(network))
        tree = oracle.minimum_tree(np.ones(network.num_edges)).tree
        lengths = ensure_rng(0).uniform(0.1, 1.0, network.num_edges)
        usage = tree.edge_usage
        rows = tree.physical_edges
        values = tree.usage_values

        start = time.perf_counter()
        for _ in range(reps):
            float(np.dot(usage, lengths))
        dense_seconds = (time.perf_counter() - start) / reps

        start = time.perf_counter()
        for _ in range(reps):
            float(np.dot(values, lengths[rows]))
        sparse_seconds = (time.perf_counter() - start) / reps

        edge_counts.append(float(network.num_edges))
        dense_us.append(dense_seconds * 1e6)
        sparse_us.append(sparse_seconds * 1e6)
        if crossover == 0.0 and sparse_seconds < dense_seconds:
            crossover = float(network.num_edges)
    return {
        "num_edges": edge_counts,
        "dense_us_per_eval": dense_us,
        "sparse_us_per_eval": sparse_us,
        # First measured edge count where the gather won; 0.0 when dense
        # won everywhere (the crossover then sits above the sweep).
        "measured_crossover": crossover,
        "configured_min_edges": float(SPARSE_LENGTH_MIN_EDGES),
    }


def _timed_ledger_round(profile: PerfProfile) -> Dict[str, float]:
    """Ablation: one ledger round versus the per-tree ``length`` loop.

    Both arms evaluate the same trees under the same length vector — the
    work of one engine query round.  The ledger arm is one
    :meth:`~repro.core.engine.TreeLedger.lengths_for` call under the
    best available kernel backend (``numba`` when importable, else the
    pure-NumPy ``ordered`` backend — the ``backend`` field records
    which); the loop arm calls :meth:`OverlayTree.length` per tree under
    the default ``numpy`` backend.  The historical per-column-BLAS-dots
    path stays recorded as ``numpy_ledger_seconds``.  Per-backend
    bit-identity is asserted in ``tests/test_tree_ledger.py`` and
    ``tests/test_kernel_backends.py``; here we only time.  Measured on
    the ``length_bench_nodes`` topology, large enough for the
    sparse/ledger regime to engage.
    """
    from repro.core.engine import TreeLedger, resolve_kernel_backend, use_kernel_backend

    network = paper_flat_topology(
        num_nodes=profile.length_bench_nodes, capacity=100.0, seed=profile.seed
    )
    rng = ensure_rng(profile.seed + 8)
    routing = FixedIPRouting(network)
    ledger = TreeLedger(network.num_edges)
    trees = []
    for _ in range(profile.ledger_trees):
        session = random_session(network, 6, demand=100.0, seed=rng)
        oracle = MinimumOverlayTreeOracle(session, routing)
        oracle.attach_ledger(ledger)
        trees.append(oracle.select_tree(rng.uniform(0.1, 1.0, network.num_edges)))
    columns = [ledger.register(tree) for tree in trees]
    lengths = ensure_rng(1).uniform(0.1, 1.0, network.num_edges)
    rounds = profile.ledger_rounds
    backend = resolve_kernel_backend(_best_kernel_backend())
    backend.warmup()

    with use_kernel_backend(backend):
        start = time.perf_counter()
        for _ in range(rounds):
            ledger.lengths_for(columns, lengths)
        ledger_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        ledger.lengths_for(columns, lengths)
    numpy_ledger_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        [tree.length(lengths) for tree in trees]
    loop_seconds = time.perf_counter() - start

    return {
        "trees": float(len(trees)),
        "rounds": float(rounds),
        "num_edges": float(network.num_edges),
        "backend": backend.name,
        "ledger_seconds": ledger_seconds,
        "numpy_ledger_seconds": numpy_ledger_seconds,
        "loop_seconds": loop_seconds,
        "ledger_rounds_per_sec": rounds / ledger_seconds if ledger_seconds > 0 else 0.0,
        "loop_rounds_per_sec": rounds / loop_seconds if loop_seconds > 0 else 0.0,
        "ledger_round_speedup": loop_seconds / ledger_seconds if ledger_seconds > 0 else 0.0,
        "numpy_ledger_round_speedup": (
            loop_seconds / numpy_ledger_seconds if numpy_ledger_seconds > 0 else 0.0
        ),
    }


def _timed_ledger_kernel(profile: PerfProfile) -> Dict[str, object]:
    """The kernel-backend ablation over the three ledger hot ops.

    Times the ``numpy`` backend (the historical code paths: per-column
    BLAS dots, ``np.add.at`` scatter, padded bucketed 2-D all-columns
    kernel) against the best available backend (``numba`` when
    importable, else the pure-NumPy ``ordered`` backend; the ``backend``
    field records which) on the same ledger the ``tree_length.ledger``
    section measures:

    * ``round_lengths`` — one engine round's
      :meth:`~repro.core.engine.TreeLedger.lengths_for` call,
    * ``scatter`` — the flow-extraction
      :meth:`~repro.core.engine.TreeLedger.edge_values` scatter,
    * ``lengths_for_all`` — the all-columns kernel (under ordered
      backends this is the graduated solver path).

    The compiled arms win by replacing Python per-column loops and the
    known-slow ``np.add.at`` ufunc path with one fused pass; the regime
    is small-footprint columns (tens of entries), where per-call Python
    overhead dominates — very large footprints favour BLAS dots, which
    is why the numpy backend stays the default.  Per-op bit-identity to
    the sequential reference is asserted in
    ``tests/test_kernel_backends.py``; here we only time.
    """
    from repro.core.engine import TreeLedger, resolve_kernel_backend, use_kernel_backend

    network = paper_flat_topology(
        num_nodes=profile.length_bench_nodes, capacity=100.0, seed=profile.seed
    )
    rng = ensure_rng(profile.seed + 8)
    routing = FixedIPRouting(network)
    ledger = TreeLedger(network.num_edges)
    trees = []
    for _ in range(profile.ledger_trees):
        session = random_session(network, 6, demand=100.0, seed=rng)
        oracle = MinimumOverlayTreeOracle(session, routing)
        oracle.attach_ledger(ledger)
        trees.append(oracle.select_tree(rng.uniform(0.1, 1.0, network.num_edges)))
    columns = [ledger.register(tree) for tree in trees]
    lengths = ensure_rng(1).uniform(0.1, 1.0, network.num_edges)
    weights = ensure_rng(2).uniform(0.5, 2.0, len(columns))
    rounds = profile.ledger_rounds
    numpy_backend = resolve_kernel_backend("numpy")
    fast_backend = resolve_kernel_backend(_best_kernel_backend())
    fast_backend.warmup()

    def timed(op, backend) -> float:
        with use_kernel_backend(backend):
            op()  # warm: one untimed call absorbs any lazy setup
            start = time.perf_counter()
            for _ in range(rounds):
                op()
            return time.perf_counter() - start

    ops = {
        "round_lengths": lambda: ledger.lengths_for(columns, lengths),
        "scatter": lambda: ledger.edge_values(columns, weights),
        "lengths_for_all": lambda: ledger.lengths_for_all(lengths),
    }
    result: Dict[str, object] = {
        "trees": float(len(trees)),
        "rounds": float(rounds),
        "num_edges": float(network.num_edges),
        "nnz": float(ledger.nnz),
        "backend": fast_backend.name,
    }
    for name, op in ops.items():
        numpy_seconds = timed(op, numpy_backend)
        compiled_seconds = timed(op, fast_backend)
        result[name] = {
            "numpy_seconds": numpy_seconds,
            "compiled_seconds": compiled_seconds,
            "compiled_speedup": (
                numpy_seconds / compiled_seconds if compiled_seconds > 0 else 0.0
            ),
        }
    return result


def _timed_multiply_batch(profile: PerfProfile) -> Dict[str, float]:
    """Ablation: one ``multiply_batch`` call versus a loop of ``multiply``.

    Both arms apply the same accumulated batch of (edge, factor) updates
    — edge ids repeat across updates, as they do when many tree updates
    are coalesced — starting from identical length functions, so the
    speedup isolates call-count overhead plus the vectorised
    ``np.multiply.at`` accumulation.  Final lengths agree up to shared
    renormalisation (multiplication is commutative); the equivalence is
    asserted bit-level in the test suite, here we only time.
    """
    from repro.core.lengths import LengthFunction

    rng = ensure_rng(profile.seed + 3)
    num_edges = 4 * profile.length_bench_nodes  # a plausible |E| for the scale
    updates = [
        (
            rng.choice(num_edges, profile.multiply_edges_per_update, replace=False),
            rng.uniform(1.0, 1.2, profile.multiply_edges_per_update),
        )
        for _ in range(profile.multiply_updates)
    ]
    batch_ids = np.concatenate([ids for ids, _ in updates])
    batch_factors = np.concatenate([factors for _, factors in updates])

    loop_seconds = 0.0
    batched_seconds = 0.0
    for _ in range(profile.multiply_reps):
        lengths = LengthFunction(num_edges, 0.0)
        start = time.perf_counter()
        for ids, factors in updates:
            lengths.multiply(ids, factors)
        loop_seconds += time.perf_counter() - start

        lengths = LengthFunction(num_edges, 0.0)
        start = time.perf_counter()
        lengths.multiply_batch(batch_ids, batch_factors)
        batched_seconds += time.perf_counter() - start

    # The assume_unique arm: a duplicate-free batch applied by the
    # duplicate-safe ``np.multiply.at`` path versus the direct fancy-
    # indexed multiply the engine's per-step flush uses (tree edge ids
    # within one step are unique by construction).  Results are
    # bit-identical (asserted in the test suite); here we only time.
    unique_ids = rng.permutation(num_edges)[: profile.multiply_unique_ids].astype(
        np.int64
    )
    unique_factors = rng.uniform(1.0, 1.2, unique_ids.size)
    unique_reps = max(20, profile.multiply_reps * 4)
    safe_seconds = 0.0
    fast_seconds = 0.0
    for _ in range(unique_reps):
        lengths = LengthFunction(num_edges, 0.0)
        start = time.perf_counter()
        lengths.multiply_batch(unique_ids, unique_factors)
        safe_seconds += time.perf_counter() - start

        lengths = LengthFunction(num_edges, 0.0)
        start = time.perf_counter()
        lengths.multiply_batch(unique_ids, unique_factors, assume_unique=True)
        fast_seconds += time.perf_counter() - start

    total_updates = float(profile.multiply_reps * profile.multiply_updates)
    return {
        "updates": float(profile.multiply_updates),
        "edges_per_update": float(profile.multiply_edges_per_update),
        "num_edges": float(num_edges),
        "reps": float(profile.multiply_reps),
        "loop_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "loop_updates_per_sec": total_updates / loop_seconds if loop_seconds > 0 else 0.0,
        "batched_updates_per_sec": (
            total_updates / batched_seconds if batched_seconds > 0 else 0.0
        ),
        "batched_speedup": loop_seconds / batched_seconds if batched_seconds > 0 else 0.0,
        "unique_ids": float(unique_ids.size),
        "unique_reps": float(unique_reps),
        "unique_safe_seconds": safe_seconds,
        "unique_fast_seconds": fast_seconds,
        "unique_fastpath_speedup": (
            safe_seconds / fast_seconds if fast_seconds > 0 else 0.0
        ),
    }


def _timed_oracle_batch(profile: PerfProfile) -> Dict[str, float]:
    """Ablation: one batched all-session oracle round vs the query loop.

    Both arms answer the same query — every session's minimum overlay
    tree under a shared length vector, the scan MaxFlow performs each
    iteration — over the same cycled pool of length vectors, with
    separate oracle sets so neither arm warms the other's tree cache.
    The batched arm is one stacked incidence mat-vec plus per-session
    tree construction (:class:`repro.core.engine.BatchedOracleFront`);
    the loop arm is one ``incidence @ lengths`` per session.  Results
    are bit-identical (asserted in the engine equivalence suite); here
    we only time.
    """
    from repro.core.engine import BatchedOracleFront
    from repro.overlay.oracle import build_oracles

    network = paper_flat_topology(
        num_nodes=profile.batch_nodes, capacity=100.0, seed=profile.seed
    )
    rng = ensure_rng(profile.seed + 4)
    sessions = [
        random_session(network, size, demand=100.0, seed=rng, name=f"batch-{i + 1}")
        for i, size in enumerate(profile.batch_sessions)
    ]
    routing = FixedIPRouting(network)
    batched_oracles = build_oracles(sessions, routing)
    loop_oracles = build_oracles(sessions, routing)
    front = BatchedOracleFront(batched_oracles)
    indices = list(range(len(sessions)))
    pool = [
        ensure_rng(profile.seed + 5 + i).uniform(0.1, 1.0, network.num_edges)
        for i in range(8)
    ]

    # Warm both arms (route caches, incidence build, tree caches) so the
    # timed rounds compare steady-state query cost.
    front.query(indices, pool[0])
    for oracle in loop_oracles:
        oracle.minimum_tree(pool[0])

    rounds = profile.batch_rounds
    start = time.perf_counter()
    for r in range(rounds):
        front.query(indices, pool[r % len(pool)])
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for r in range(rounds):
        lengths = pool[r % len(pool)]
        for oracle in loop_oracles:
            oracle.minimum_tree(lengths)
    loop_seconds = time.perf_counter() - start

    return {
        "rounds": float(rounds),
        "sessions": float(len(sessions)),
        "num_edges": float(network.num_edges),
        "batched_seconds": batched_seconds,
        "loop_seconds": loop_seconds,
        "batched_rounds_per_sec": rounds / batched_seconds if batched_seconds > 0 else 0.0,
        "loop_rounds_per_sec": rounds / loop_seconds if loop_seconds > 0 else 0.0,
        "batched_speedup": loop_seconds / batched_seconds if batched_seconds > 0 else 0.0,
    }


def _timed_dynamic_front(profile: PerfProfile) -> Dict[str, float]:
    """Ablation: one union-Dijkstra front round vs the per-oracle loop.

    Both arms answer the same all-session query round under dynamic
    routing with the one-Dijkstra oracle fast path on.  The batched arm
    runs a single Dijkstra from the union of every session's members per
    round (:class:`repro.core.engine.BatchedOracleFront`, dynamic mode)
    and hands each oracle its distance/predecessor rows; the loop arm
    runs one Dijkstra per oracle.  Results are bit-identical (engine
    equivalence suite); here we only time.
    """
    from repro.core.engine import BatchedOracleFront
    from repro.overlay.oracle import build_oracles

    network = paper_flat_topology(
        num_nodes=profile.batch_nodes, capacity=100.0, seed=profile.seed
    )
    rng = ensure_rng(profile.seed + 4)
    sessions = [
        random_session(network, size, demand=100.0, seed=rng, name=f"dyn-{i + 1}")
        for i, size in enumerate(profile.batch_sessions)
    ]
    # Separate routing models per arm: the path-by-nodes cache and the
    # tree caches must not leak across arms.
    batched_oracles = build_oracles(sessions, DynamicRouting(network))
    loop_oracles = build_oracles(sessions, DynamicRouting(network))
    front = BatchedOracleFront(batched_oracles)
    indices = list(range(len(sessions)))
    pool = [
        ensure_rng(profile.seed + 5 + i).uniform(0.1, 1.0, network.num_edges)
        for i in range(8)
    ]

    front.query(indices, pool[0])
    for oracle in loop_oracles:
        oracle.minimum_tree(pool[0])

    rounds = profile.dynamic_front_rounds
    start = time.perf_counter()
    for r in range(rounds):
        front.query(indices, pool[r % len(pool)])
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for r in range(rounds):
        lengths = pool[r % len(pool)]
        for oracle in loop_oracles:
            oracle.minimum_tree(lengths)
    loop_seconds = time.perf_counter() - start

    return {
        "rounds": float(rounds),
        "sessions": float(len(sessions)),
        "num_edges": float(network.num_edges),
        "batched_seconds": batched_seconds,
        "loop_seconds": loop_seconds,
        "batched_rounds_per_sec": rounds / batched_seconds if batched_seconds > 0 else 0.0,
        "loop_rounds_per_sec": rounds / loop_seconds if loop_seconds > 0 else 0.0,
        "batched_speedup": loop_seconds / batched_seconds if batched_seconds > 0 else 0.0,
    }


def _timed_dynamic_oracle(profile: PerfProfile) -> Dict[str, object]:
    """The dynamic-routing oracle fast path versus the pre-change loop.

    The headline ``calls_per_sec`` is MaxFlow-under-dynamic-routing
    oracle throughput with the fast path and the union-Dijkstra front on
    (the defaults) — directly comparable to the ``dynamic_calls_per_sec``
    trajectory entries recorded before this section existed.  The legacy
    arm re-solves the same instance with
    :func:`~repro.overlay.oracle.configure_dynamic_fastpath` off, which
    also disables the dynamic front (an oracle on the legacy pipeline is
    an ablation baseline the front refuses to accelerate).  Outputs are
    bit-identical (equivalence suite); the ``front`` sub-section is the
    union-Dijkstra round ablation on a many-session instance.
    """
    from repro.overlay.oracle import configure_dynamic_fastpath

    network, sessions = build_perf_instance(profile)
    fast = _timed_maxflow(
        network, sessions, "dynamic", profile.dynamic_ratio, memoize=True
    )
    previous = configure_dynamic_fastpath(False)
    try:
        legacy = _timed_maxflow(
            network, sessions, "dynamic", profile.dynamic_ratio, memoize=True
        )
    finally:
        configure_dynamic_fastpath(previous)
    return {
        "calls_per_sec": fast["calls_per_sec"],
        "seconds": fast["seconds"],
        "oracle_calls": fast["oracle_calls"],
        "legacy_calls_per_sec": legacy["calls_per_sec"],
        "legacy_seconds": legacy["seconds"],
        "fastpath_speedup": (
            legacy["seconds"] / fast["seconds"] if fast["seconds"] > 0 else 0.0
        ),
        "outputs_identical": bool(
            fast["overall_throughput"] == legacy["overall_throughput"]
            and fast["oracle_calls"] == legacy["oracle_calls"]
        ),
        "front": _timed_dynamic_front(profile),
    }


def _timed_prim_crossover(profile: PerfProfile) -> Dict[str, object]:
    """Python-vs-NumPy Prim at several member counts.

    Locates the measured crossover backing
    ``repro.overlay.mst._PYTHON_PRIM_LIMIT``: below it the plain-Python
    scan beats NumPy's per-call overhead, above it the vectorised
    variant wins.  Both variants produce identical trees (identical
    tie-breaking), so the limit is purely a performance knob.
    """
    from repro.overlay.mst import _PYTHON_PRIM_LIMIT, _prim_numpy, _prim_python

    rng = ensure_rng(profile.seed + 6)
    sizes: List[float] = []
    python_us: List[float] = []
    numpy_us: List[float] = []
    crossover = 0.0
    for n in profile.prim_sizes:
        w = rng.uniform(0.1, 1.0, (n, n))
        w = np.maximum(w, w.T)
        np.fill_diagonal(w, 0.0)
        reps = max(3, profile.prim_reps // n)
        start = time.perf_counter()
        for _ in range(reps):
            _prim_python(w, n)
        python_seconds = (time.perf_counter() - start) / reps
        start = time.perf_counter()
        for _ in range(reps):
            _prim_numpy(w, n)
        numpy_seconds = (time.perf_counter() - start) / reps
        sizes.append(float(n))
        python_us.append(python_seconds * 1e6)
        numpy_us.append(numpy_seconds * 1e6)
        if crossover == 0.0 and numpy_seconds < python_seconds:
            crossover = float(n)
    return {
        "sizes": sizes,
        "python_us_per_call": python_us,
        "numpy_us_per_call": numpy_us,
        # First measured size where numpy won; 0.0 when python won
        # everywhere in the sweep (the limit then sits above the sweep).
        "measured_crossover": crossover,
        "configured_limit": float(_PYTHON_PRIM_LIMIT),
    }


def _timed_engine_step(profile: PerfProfile) -> Dict[str, object]:
    """Ablation: full engine steps, stacked representation vs the loop.

    Times a bounded number of complete :meth:`PhaseEngine.step` calls —
    oracle query round, routing decision, flow accumulation and length
    update — under both routing models on an instance whose edge count
    sits in the sparse/ledger regime (larger than the solver profiles).
    The stacked arm runs the defaults (``TreeLedger`` columns, batched
    oracle front, deduplicated length flush); the loop arm disables both
    (``stacked_trees=False, batch_oracle=False``), i.e. one oracle query
    and one duplicate-safe length update per tree.  Both arms execute
    the identical step sequence — final length states are compared and
    reported — so the speedup isolates the representation.  The
    headline ``stacked_speedup`` is the best arm: the stacked path is a
    default, and the arm where query rounds dominate (dynamic routing's
    union-Dijkstra + ledger rounds) is where full steps feel it most.
    """
    from repro.core.engine import (
        MaxFlowPolicy,
        NormalizedLengthStop,
        PhaseEngine,
    )
    from repro.core.lengths import LengthFunction
    from repro.overlay.oracle import build_oracles

    network = paper_flat_topology(
        num_nodes=profile.engine_nodes, capacity=100.0, seed=profile.seed
    )

    def sessions_for(sizes: Tuple[int, ...], label: str, seed: int) -> List[Session]:
        rng = ensure_rng(seed)
        return [
            random_session(network, size, demand=100.0, seed=rng, name=f"{label}{i}")
            for i, size in enumerate(sizes)
        ]

    def build_engine(sessions, routing, stacked: bool) -> "PhaseEngine":
        oracles = build_oracles(sessions, routing)
        max_size = max(s.size for s in sessions)
        longest = max(1, max(o.max_route_length() for o in oracles))
        lengths = LengthFunction.for_maxflow(
            network.num_edges, profile.engine_epsilon, max_size, longest
        )
        return PhaseEngine(
            oracles=oracles,
            lengths=lengths,
            capacities=network.capacities,
            policy=MaxFlowPolicy(
                epsilon=profile.engine_epsilon, max_session_size=max_size
            ),
            stopping=NormalizedLengthStop(),
            step_cap=10**9,
            cap_message="engine-step bench exceeded its cap",
            batch_oracle=stacked,
            stacked_trees=stacked,
        )

    def run_arm(sessions, routing, stacked: bool, steps: int):
        # Separate warm engine: route caches and the front's incidence
        # build happen once per (routing, arm), leaving the timed engine
        # to measure steady-state step cost from a fresh length state.
        warm = build_engine(sessions, routing, stacked)
        for _ in range(profile.engine_warm_steps):
            warm.step()
        engine = build_engine(sessions, routing, stacked)
        start = time.perf_counter()
        for _ in range(steps):
            engine.step()
        seconds = time.perf_counter() - start
        return seconds, engine.lengths

    def measure(routing_kind: str) -> Dict[str, float]:
        if routing_kind == "fixed":
            sessions = sessions_for(profile.engine_fixed_sessions, "f", profile.seed + 9)
            steps = profile.engine_fixed_steps
            make_routing = lambda: FixedIPRouting(network)  # noqa: E731
        else:
            sessions = sessions_for(
                profile.engine_dynamic_sessions, "d", profile.seed + 10
            )
            steps = profile.engine_dynamic_steps
            make_routing = lambda: DynamicRouting(network)  # noqa: E731
        stacked_seconds, stacked_lengths = run_arm(
            sessions, make_routing(), True, steps
        )
        loop_seconds, loop_lengths = run_arm(sessions, make_routing(), False, steps)
        return {
            "sessions": float(len(sessions)),
            "steps": float(steps),
            "stacked_seconds": stacked_seconds,
            "loop_seconds": loop_seconds,
            "stacked_steps_per_sec": (
                steps / stacked_seconds if stacked_seconds > 0 else 0.0
            ),
            "loop_steps_per_sec": steps / loop_seconds if loop_seconds > 0 else 0.0,
            "stacked_speedup": (
                loop_seconds / stacked_seconds if stacked_seconds > 0 else 0.0
            ),
            "outputs_identical": bool(
                stacked_lengths.log_offset == loop_lengths.log_offset
                and np.array_equal(stacked_lengths.relative, loop_lengths.relative)
            ),
        }

    fixed = measure("fixed")
    dynamic = measure("dynamic")
    return {
        "num_nodes": float(profile.engine_nodes),
        "num_edges": float(network.num_edges),
        "fixed": fixed,
        "dynamic": dynamic,
        "stacked_speedup": max(fixed["stacked_speedup"], dynamic["stacked_speedup"]),
    }


def _timed_obs_overhead(profile: PerfProfile) -> Dict[str, object]:
    """Ablation: what the ``repro.obs`` surfaces cost on the hot path.

    Three arms over identical full-engine-step sequences on the
    engine-ablation instance (fixed routing, stacked defaults):

    * ``disabled`` — metrics registry off (``REPRO_METRICS=0``
      equivalent) and no tracer: the pre-observability baseline,
    * ``metrics`` — the registry on, as it is by default.  The engine
      publishes its counters only at ``snapshot()`` (the registry tap),
      so the per-step delta is the cost of the design claim: metrics on
      must stay within a few percent of off,
    * ``traced`` — a live :class:`~repro.obs.tracing.Tracer` activated
      around the same steps: one span object and one event dict per
      step plus one per oracle round, the opt-in tracing cost.

    Arms run interleaved and keep their best-of-reps, so adjacent arms
    see the same machine noise; overhead percentages can come out
    slightly negative in the noise floor, which reads as "no measurable
    overhead".  The bit-identity arm then solves the profile's MaxFlow
    instance with and without an active tracer and compares outputs —
    tracing must observe, never perturb.
    """
    from repro.core.engine import MaxFlowPolicy, NormalizedLengthStop, PhaseEngine
    from repro.core.lengths import LengthFunction
    from repro.obs import metrics as obs_metrics
    from repro.obs.tracing import Tracer
    from repro.overlay.oracle import build_oracles

    network = paper_flat_topology(
        num_nodes=profile.engine_nodes, capacity=100.0, seed=profile.seed
    )
    rng = ensure_rng(profile.seed + 11)
    sessions = [
        random_session(network, size, demand=100.0, seed=rng, name=f"obs{i}")
        for i, size in enumerate(profile.engine_fixed_sessions)
    ]
    routing = FixedIPRouting(network)  # shared: route caches warm once

    def build_engine() -> "PhaseEngine":
        oracles = build_oracles(sessions, routing)
        max_size = max(s.size for s in sessions)
        longest = max(1, max(o.max_route_length() for o in oracles))
        lengths = LengthFunction.for_maxflow(
            network.num_edges, profile.engine_epsilon, max_size, longest
        )
        return PhaseEngine(
            oracles=oracles,
            lengths=lengths,
            capacities=network.capacities,
            policy=MaxFlowPolicy(
                epsilon=profile.engine_epsilon, max_session_size=max_size
            ),
            stopping=NormalizedLengthStop(),
            step_cap=10**9,
            cap_message="obs-overhead bench exceeded its cap",
        )

    steps = profile.obs_steps

    def run_arm(tracer: "Tracer" = None) -> float:
        engine = build_engine()
        if tracer is None:
            start = time.perf_counter()
            for _ in range(steps):
                engine.step()
            return time.perf_counter() - start
        with tracer.activate():
            start = time.perf_counter()
            for _ in range(steps):
                engine.step()
            return time.perf_counter() - start

    was_enabled = obs_metrics.metrics_enabled()
    best = {"disabled": float("inf"), "metrics": float("inf"), "traced": float("inf")}
    try:
        obs_metrics.configure_metrics(False)
        run_arm()  # warm: route caches, incidence build, allocator
        for _ in range(profile.obs_reps):
            obs_metrics.configure_metrics(False)
            best["disabled"] = min(best["disabled"], run_arm())
            obs_metrics.configure_metrics(True)
            best["metrics"] = min(best["metrics"], run_arm())
            best["traced"] = min(best["traced"], run_arm(Tracer()))
    finally:
        obs_metrics.configure_metrics(was_enabled)

    def overhead_pct(arm: str) -> float:
        if best["disabled"] <= 0:
            return 0.0
        return (best[arm] - best["disabled"]) / best["disabled"] * 100.0

    # Bit-identity: a traced solve must produce the identical solution.
    network2, sessions2 = build_perf_instance(profile)
    plain = MaxFlow(
        sessions2,
        FixedIPRouting(network2),
        MaxFlowConfig(approximation_ratio=profile.fixed_ratio),
    ).solve()
    tracer = Tracer()
    with tracer.activate():
        traced = MaxFlow(
            sessions2,
            FixedIPRouting(network2),
            MaxFlowConfig(approximation_ratio=profile.fixed_ratio),
        ).solve()
    span_events = [e for e in tracer.events if e.get("ph") == "X"]
    step_spans = sum(1 for e in span_events if e["name"] == "engine.step")

    return {
        "steps": float(steps),
        "reps": float(profile.obs_reps),
        "sessions": float(len(sessions)),
        "num_edges": float(network.num_edges),
        "disabled_seconds": best["disabled"],
        "metrics_seconds": best["metrics"],
        "traced_seconds": best["traced"],
        "metrics_overhead_pct": overhead_pct("metrics"),
        "trace_overhead_pct": overhead_pct("traced"),
        "traced_span_events": float(len(span_events)),
        "traced_step_spans": float(step_spans),
        "outputs_identical_with_trace": bool(
            plain.overall_throughput == traced.overall_throughput
            and plain.oracle_calls == traced.oracle_calls
        ),
    }


def _timed_durability(profile: PerfProfile) -> Dict[str, object]:
    """What crash durability costs: fsync'd puts vs volatile puts.

    ``ReportStore`` fsyncs each put's temp file and parent directory by
    default (``durable=True``), so a published entry survives power
    loss.  Two arms price that:

    * ``put`` — bare back-to-back puts of one solved report into a
      durable versus a volatile store (gzip wire format, memory front
      off).  This is the *worst case* for the knob — nothing amortises
      the fsyncs — and is recorded without a guard so the raw cost stays
      visible in the trajectory.
    * ``solve_persist`` — the realistic cycle a cluster worker runs:
      cold-solve the profile's instance and persist the report, timed
      end to end.  Solving dominates, as it does in production, so this
      is where the "<10% overhead" design guard lives (asserted in the
      bench smoke).  Reps run as interleaved durable/volatile *pairs*
      and the guarded ``overhead_pct`` is the smallest paired delta:
      machine noise between two ~tens-of-ms runs can only inflate a
      pair's delta, so the minimum is the honest upper bound on what
      the fsyncs actually cost the cycle.

    The ``fault_point`` arm times :func:`repro.faults.point` with no
    plan installed — one module-global load plus an ``is None`` test —
    pinning the claim that the injection seams are free to leave in hot
    I/O paths permanently.
    """
    import tempfile

    import repro.api as api
    from repro import faults
    from repro.store.report_store import ReportStore

    spec = api.ScenarioSpec(
        topology=api.TopologySpec(
            "paper_flat",
            {"num_nodes": profile.num_nodes, "capacity": 100.0},
            seed=profile.seed,
        ),
        workload=api.WorkloadSpec(
            sizes=profile.session_sizes, demand=100.0, seed=profile.seed + 1
        ),
        solver="max_flow",
        solver_params={"approximation_ratio": profile.fixed_ratio},
    )
    api.clear_caches()
    report = api.solve_many([spec], jobs=1)[0]

    def seconds_per_put(durable: bool) -> float:
        with tempfile.TemporaryDirectory() as tmp:
            store = ReportStore(
                tmp, compress=True, durable=durable, memory_entries=0
            )
            store.put(report)  # warm: object dirs, index file, allocator
            start = time.perf_counter()
            for _ in range(profile.durability_puts):
                store.put(report)
            return (time.perf_counter() - start) / profile.durability_puts

    durable_put = seconds_per_put(True)
    volatile_put = seconds_per_put(False)

    # The realistic arm: a cold solve landing in the store, the unit of
    # work whose durability the knob actually buys.  Reps run as
    # adjacent durable/volatile pairs; the guard takes the smallest
    # paired delta (noise between runs only inflates a pair's delta).
    def timed_cycle(durable: bool) -> float:
        with tempfile.TemporaryDirectory() as tmp:
            store = ReportStore(
                tmp, compress=True, durable=durable, memory_entries=0
            )
            api.clear_caches()
            start = time.perf_counter()
            api.solve_many([spec], jobs=1, store=store)
            return time.perf_counter() - start

    best = {"durable": float("inf"), "volatile": float("inf")}
    paired_overhead = float("inf")
    for _ in range(profile.durability_reps):
        durable_seconds = timed_cycle(True)
        volatile_seconds = timed_cycle(False)
        best["durable"] = min(best["durable"], durable_seconds)
        best["volatile"] = min(best["volatile"], volatile_seconds)
        if volatile_seconds > 0:
            paired_overhead = min(
                paired_overhead,
                (durable_seconds - volatile_seconds) / volatile_seconds * 100.0,
            )
    api.clear_caches()  # leave no bench report behind in the api cache

    calls = profile.fault_point_calls
    with faults.fault_scope(None):  # pin the disabled (plan is None) path
        start = time.perf_counter()
        for _ in range(calls):
            faults.point("bench.disabled")
        disabled_ns = (time.perf_counter() - start) / calls * 1e9

    return {
        "puts": float(profile.durability_puts),
        "reps": float(profile.durability_reps),
        "durable_us_per_put": durable_put * 1e6,
        "volatile_us_per_put": volatile_put * 1e6,
        "put_overhead_pct": (
            (durable_put - volatile_put) / volatile_put * 100.0
            if volatile_put > 0
            else 0.0
        ),
        "solve_persist": {
            "durable_seconds": best["durable"],
            "volatile_seconds": best["volatile"],
            # Smallest paired delta across reps — the noise-robust upper
            # bound on the fsync cost; can sit slightly negative in the
            # noise floor, which reads as "no measurable overhead".
            "overhead_pct": (
                paired_overhead if paired_overhead != float("inf") else 0.0
            ),
        },
        "fault_point": {
            "calls": float(calls),
            "disabled_ns_per_call": disabled_ns,
        },
    }


def measure_core_perf(scale: str = "quick") -> Dict[str, object]:
    """Measure the oracle hot path and return one run's BENCH_core record."""
    profile = profile_for_scale(scale)
    network, sessions = build_perf_instance(profile)

    # Warm-up pass (imports, allocator, BLAS threads) so the timed runs
    # compare the algorithm, not process start-up noise.
    _timed_maxflow(network, sessions, "fixed", profile.fixed_ratio, memoize=True)

    fixed_memoized = _timed_maxflow(
        network, sessions, "fixed", profile.fixed_ratio, memoize=True
    )
    fixed_unmemoized = _timed_maxflow(
        network, sessions, "fixed", profile.fixed_ratio, memoize=False
    )
    dynamic_memoized = _timed_maxflow(
        network, sessions, "dynamic", profile.dynamic_ratio, memoize=True
    )
    tree_length = _timed_tree_length(profile)
    ledger_kernel = _timed_ledger_kernel(profile)
    length_multiply = _timed_multiply_batch(profile)
    oracle_batch = _timed_oracle_batch(profile)
    dynamic_oracle = _timed_dynamic_oracle(profile)
    prim_crossover = _timed_prim_crossover(profile)
    engine_step = _timed_engine_step(profile)
    obs_overhead = _timed_obs_overhead(profile)
    durability = _timed_durability(profile)

    speedup = (
        fixed_unmemoized["seconds"] / fixed_memoized["seconds"]
        if fixed_memoized["seconds"] > 0
        else 0.0
    )
    return {
        "schema": BENCH_SCHEMA,
        "scale": profile.name,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "instance": {
            "num_nodes": profile.num_nodes,
            "num_edges": network.num_edges,
            "session_sizes": list(profile.session_sizes),
            "fixed_ratio": profile.fixed_ratio,
            "dynamic_ratio": profile.dynamic_ratio,
            "seed": profile.seed,
        },
        "maxflow_fixed": {
            "memoized": fixed_memoized,
            "unmemoized": fixed_unmemoized,
            "memoization_speedup": speedup,
        },
        "maxflow_dynamic": {
            "memoized": dynamic_memoized,
        },
        "tree_length": tree_length,
        "ledger_kernel": ledger_kernel,
        "length_multiply": length_multiply,
        "oracle_batch": oracle_batch,
        "dynamic_oracle": dynamic_oracle,
        "prim_crossover": prim_crossover,
        "engine_step": engine_step,
        "obs_overhead": obs_overhead,
        "durability": durability,
    }


def _history_entry(record: Dict[str, object]) -> Dict[str, object]:
    """Compact per-run trajectory entry derived from a full record."""
    fixed = record.get("maxflow_fixed", {})
    dynamic = record.get("maxflow_dynamic", {})
    tree_length = record.get("tree_length", {})
    entry: Dict[str, object] = {
        "schema": record.get("schema"),
        "scale": record.get("scale"),
        "recorded_at": record.get("recorded_at"),
        "fixed_calls_per_sec": fixed.get("memoized", {}).get("calls_per_sec"),
        "fixed_seconds": fixed.get("memoized", {}).get("seconds"),
        "memoization_speedup": fixed.get("memoization_speedup"),
        "dynamic_calls_per_sec": dynamic.get("memoized", {}).get("calls_per_sec"),
    }
    if tree_length:
        entry["tree_length_sparse_evals_per_sec"] = tree_length.get(
            "sparse_evals_per_sec"
        )
        entry["tree_length_sparse_speedup"] = tree_length.get("sparse_speedup")
        crossover = tree_length.get("crossover", {})
        if crossover:
            entry["tree_length_measured_crossover"] = crossover.get(
                "measured_crossover"
            )
        ledger = tree_length.get("ledger", {})
        if ledger:
            entry["ledger_round_speedup"] = ledger.get("ledger_round_speedup")
            if "backend" in ledger:
                entry["ledger_round_backend"] = ledger.get("backend")
    ledger_kernel = record.get("ledger_kernel", {})
    if ledger_kernel:
        entry["ledger_kernel_backend"] = ledger_kernel.get("backend")
        entry["ledger_kernel_round_speedup"] = ledger_kernel.get(
            "round_lengths", {}
        ).get("compiled_speedup")
        entry["ledger_kernel_scatter_speedup"] = ledger_kernel.get("scatter", {}).get(
            "compiled_speedup"
        )
        entry["ledger_kernel_all_speedup"] = ledger_kernel.get(
            "lengths_for_all", {}
        ).get("compiled_speedup")
    length_multiply = record.get("length_multiply", {})
    if length_multiply:
        entry["multiply_batched_updates_per_sec"] = length_multiply.get(
            "batched_updates_per_sec"
        )
        entry["multiply_batched_speedup"] = length_multiply.get("batched_speedup")
        if "unique_fastpath_speedup" in length_multiply:
            entry["multiply_unique_speedup"] = length_multiply.get(
                "unique_fastpath_speedup"
            )
    oracle_batch = record.get("oracle_batch", {})
    if oracle_batch:
        entry["oracle_batch_rounds_per_sec"] = oracle_batch.get(
            "batched_rounds_per_sec"
        )
        entry["oracle_batch_speedup"] = oracle_batch.get("batched_speedup")
    dynamic_oracle = record.get("dynamic_oracle", {})
    if dynamic_oracle:
        entry["dynamic_oracle_calls_per_sec"] = dynamic_oracle.get("calls_per_sec")
        entry["dynamic_oracle_speedup"] = dynamic_oracle.get("fastpath_speedup")
        entry["dynamic_front_speedup"] = dynamic_oracle.get("front", {}).get(
            "batched_speedup"
        )
    prim = record.get("prim_crossover", {})
    if prim:
        entry["prim_crossover"] = prim.get("measured_crossover")
    engine_step = record.get("engine_step", {})
    if engine_step:
        entry["engine_step_stacked_speedup"] = engine_step.get("stacked_speedup")
        entry["engine_step_fixed_speedup"] = engine_step.get("fixed", {}).get(
            "stacked_speedup"
        )
        entry["engine_step_dynamic_speedup"] = engine_step.get("dynamic", {}).get(
            "stacked_speedup"
        )
    obs_overhead = record.get("obs_overhead", {})
    if obs_overhead:
        entry["obs_metrics_overhead_pct"] = obs_overhead.get("metrics_overhead_pct")
        entry["obs_trace_overhead_pct"] = obs_overhead.get("trace_overhead_pct")
    durability = record.get("durability", {})
    if durability:
        entry["durable_put_overhead_pct"] = durability.get("put_overhead_pct")
        entry["durable_solve_persist_overhead_pct"] = durability.get(
            "solve_persist", {}
        ).get("overhead_pct")
        entry["fault_point_disabled_ns"] = durability.get("fault_point", {}).get(
            "disabled_ns_per_call"
        )
    return entry


def _prior_history(path: Path) -> List[Dict[str, object]]:
    """Trajectory entries carried over from an existing record file.

    A v1 record (pre-history) contributes one synthesized entry so the
    first v2 write does not discard the measured past; an unreadable or
    foreign file contributes nothing.
    """
    if not path.exists():
        return []
    try:
        with path.open("r", encoding="utf-8") as fh:
            prior = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(prior, dict) or prior.get("schema") not in _KNOWN_SCHEMAS:
        return []
    history = prior.get("history")
    if isinstance(history, list):
        return list(history)
    return [_history_entry(prior)]


def write_core_perf_record(
    path: Union[str, Path] = "BENCH_core.json", scale: str = "quick"
) -> Path:
    """Measure and write the BENCH_core record; returns the written path.

    Appends to the trajectory: prior runs recorded at ``path`` survive in
    the ``history`` list, with the new run's entry appended last.
    """
    path = Path(path)
    record = measure_core_perf(scale)
    record["history"] = _prior_history(path) + [_history_entry(record)]
    return dump_json(record, path)


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description="Write the BENCH_core.json perf record")
    parser.add_argument("--scale", default="quick", choices=("tiny", "quick"))
    parser.add_argument("--output", default="BENCH_core.json")
    args = parser.parse_args()
    path = write_core_perf_record(args.output, scale=args.scale)
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
