"""The ``BENCH_core.json`` perf record for the oracle hot path.

Measures the cost that dominates every algorithm in the paper — the
minimum-overlay-spanning-tree oracle — on a deterministic flat-Waxman
instance, and writes a JSON record so the perf trajectory is tracked
from one PR to the next:

* MaxFlow wall time and oracle calls/sec under **fixed IP routing**,
  with tree memoization on and off (the ablation for the oracle's tree
  cache; the ``speedup`` field is their ratio),
* MaxFlow wall time and oracle calls/sec under **dynamic routing**
  (Dijkstra-dominated, so memoization matters less — recorded to keep
  the fixed/dynamic cost ratio visible).

Measurements use fresh routing models per run so no caches leak between
the memoized and unmemoized arms.  Run as a module for a CLI::

    python -m repro.perf.record --scale quick --output BENCH_core.json
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.overlay.session import Session, random_session
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.generators import paper_flat_topology
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng
from repro.util.serialization import dump_json

BENCH_SCHEMA = "BENCH_core/v1"


@dataclass(frozen=True)
class PerfProfile:
    """Instance parameters for one perf-record scale."""

    name: str
    num_nodes: int
    session_sizes: Tuple[int, ...]
    fixed_ratio: float
    dynamic_ratio: float
    seed: int = 2004


# "tiny" must stay sub-seconds: it runs inside the tier-1 test suite
# (the bench_smoke marker).  "quick" is the benchmark-suite default.
TINY_PROFILE = PerfProfile(
    name="tiny", num_nodes=24, session_sizes=(4, 3), fixed_ratio=0.80, dynamic_ratio=0.75
)
QUICK_PROFILE = PerfProfile(
    name="quick", num_nodes=48, session_sizes=(6, 4), fixed_ratio=0.90, dynamic_ratio=0.80
)


def profile_for_scale(scale: str) -> PerfProfile:
    """Resolve a perf profile from a scale name."""
    if scale == "tiny":
        return TINY_PROFILE
    if scale == "quick":
        return QUICK_PROFILE
    raise ConfigurationError(f"unknown perf scale {scale!r}; use 'tiny' or 'quick'")


def build_perf_instance(profile: PerfProfile) -> Tuple[PhysicalNetwork, List[Session]]:
    """The deterministic network + sessions a perf profile measures on.

    Public so the benchmark suite can run ablations on exactly the
    instance the BENCH_core record describes.
    """
    network = paper_flat_topology(
        num_nodes=profile.num_nodes, capacity=100.0, seed=profile.seed
    )
    rng = ensure_rng(profile.seed + 1)
    sessions = [
        random_session(
            network, size, demand=100.0, seed=rng, name=f"session-{index + 1}"
        )
        for index, size in enumerate(profile.session_sizes)
    ]
    return network, sessions


def _timed_maxflow(
    network: PhysicalNetwork,
    sessions: List[Session],
    routing_kind: str,
    ratio: float,
    memoize: bool,
) -> Dict[str, float]:
    routing = (
        FixedIPRouting(network) if routing_kind == "fixed" else DynamicRouting(network)
    )
    solver = MaxFlow(
        sessions,
        routing,
        MaxFlowConfig(approximation_ratio=ratio, memoize=memoize),
    )
    start = time.perf_counter()
    solution = solver.solve()
    seconds = time.perf_counter() - start
    hits = sum(o.cache_hits for o in solver.oracles)
    misses = sum(o.cache_misses for o in solver.oracles)
    return {
        "seconds": seconds,
        "oracle_calls": float(solution.oracle_calls),
        "calls_per_sec": solution.oracle_calls / seconds if seconds > 0 else 0.0,
        "cache_hits": float(hits),
        "cache_misses": float(misses),
        "overall_throughput": solution.overall_throughput,
    }


def measure_core_perf(scale: str = "quick") -> Dict[str, object]:
    """Measure the oracle hot path and return the BENCH_core record."""
    profile = profile_for_scale(scale)
    network, sessions = build_perf_instance(profile)

    # Warm-up pass (imports, allocator, BLAS threads) so the timed runs
    # compare the algorithm, not process start-up noise.
    _timed_maxflow(network, sessions, "fixed", profile.fixed_ratio, memoize=True)

    fixed_memoized = _timed_maxflow(
        network, sessions, "fixed", profile.fixed_ratio, memoize=True
    )
    fixed_unmemoized = _timed_maxflow(
        network, sessions, "fixed", profile.fixed_ratio, memoize=False
    )
    dynamic_memoized = _timed_maxflow(
        network, sessions, "dynamic", profile.dynamic_ratio, memoize=True
    )

    speedup = (
        fixed_unmemoized["seconds"] / fixed_memoized["seconds"]
        if fixed_memoized["seconds"] > 0
        else 0.0
    )
    return {
        "schema": BENCH_SCHEMA,
        "scale": profile.name,
        "instance": {
            "num_nodes": profile.num_nodes,
            "num_edges": network.num_edges,
            "session_sizes": list(profile.session_sizes),
            "fixed_ratio": profile.fixed_ratio,
            "dynamic_ratio": profile.dynamic_ratio,
            "seed": profile.seed,
        },
        "maxflow_fixed": {
            "memoized": fixed_memoized,
            "unmemoized": fixed_unmemoized,
            "memoization_speedup": speedup,
        },
        "maxflow_dynamic": {
            "memoized": dynamic_memoized,
        },
    }


def write_core_perf_record(
    path: Union[str, Path] = "BENCH_core.json", scale: str = "quick"
) -> Path:
    """Measure and write the BENCH_core record; returns the written path."""
    return dump_json(measure_core_perf(scale), path)


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description="Write the BENCH_core.json perf record")
    parser.add_argument("--scale", default="quick", choices=("tiny", "quick"))
    parser.add_argument("--output", default="BENCH_core.json")
    args = parser.parse_args()
    path = write_core_perf_record(args.output, scale=args.scale)
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
