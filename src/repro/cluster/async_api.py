"""Asyncio front end over the queue + store execution layer.

``solve_many_async`` is the distributed sibling of
:func:`repro.api.service.solve_many`: it submits a batch of specs to a
shared :class:`~repro.cluster.queue.WorkQueue`, lets whatever workers
are attached (local subprocesses, other hosts on the same filesystem)
drain it, and asynchronously collects the :class:`SolveReport`s from the
shared :class:`~repro.store.ReportStore` as they land.
``as_reports_completed`` is the streaming form — an async generator
yielding ``(index, report)`` the moment each key's report is persisted,
in completion order, so a caller can post-process early results while
the tail is still solving.

The store is the only result channel: a worker's final act per task is
an atomic ``store.put``, so a report's presence in the store *is* the
completion event, and collection never reads a torn payload.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import AsyncIterator, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.service import SolveReport, solve
from repro.api.specs import ScenarioSpec
from repro.cluster.queue import WorkQueue
from repro.store.report_store import ReportStore
from repro.util.backoff import ExponentialBackoff
from repro.util.errors import ConfigurationError


def _stalled_batch_message(
    waiting: Dict[str, List[int]], queue: WorkQueue, timeout: Optional[float]
) -> str:
    """What a stuck gather should tell the operator: who, and why.

    Names the unfinished canonical keys (truncated, a bounded number)
    and the queue's current state counts, so "the batch timed out"
    becomes actionable — a deep ``pending`` count means no workers are
    attached, a stuck ``claimed`` count means a worker died inside its
    lease window, and the keys identify *which* specs to inspect.
    """
    missing = sorted(waiting)
    shown = ", ".join(key[:12] + "…" for key in missing[:8])
    if len(missing) > 8:
        shown += f" (+{len(missing) - 8} more)"
    counts = queue.counts()
    return (
        f"{len(missing)} report(s) still missing after {timeout}s "
        f"[{shown}]; queue state: {counts['pending']} pending, "
        f"{counts['claimed']} claimed, {counts['done']} done, "
        f"{counts['failed']} failed — are workers attached to the queue?"
    )


def _coerce_queue(queue: Union[str, Path, WorkQueue]) -> WorkQueue:
    return queue if isinstance(queue, WorkQueue) else WorkQueue(queue)


def _coerce_store(store: Union[str, Path, ReportStore]) -> ReportStore:
    return store if isinstance(store, ReportStore) else ReportStore(store)


async def as_reports_completed(
    specs: Sequence[ScenarioSpec],
    queue: Union[str, Path, WorkQueue],
    store: Union[str, Path, ReportStore],
    num_shards: int = 1,
    poll_seconds: float = 0.05,
    timeout: Optional[float] = None,
    submit: bool = True,
) -> AsyncIterator[Tuple[int, SolveReport]]:
    """Submit a batch and stream ``(input_index, report)`` as reports land.

    Duplicate canonical keys resolve to one queued task; every input
    position is still yielded (sharing the completed report).  Raises
    ``TimeoutError`` when ``timeout`` seconds pass without the batch
    finishing — e.g. no worker is attached to the queue — naming the
    unfinished canonical keys and the queue's state counts; raises
    ``RuntimeError`` when a worker dead-letters one of the batch's
    specs (its recorded error is included).

    ``poll_seconds`` is the poll *floor*: consecutive empty polls back
    off exponentially (capped) so an idle gather does not spin on the
    store, and any landed report resets the interval to the floor.
    """
    if poll_seconds <= 0:
        raise ConfigurationError(f"poll_seconds must be positive, got {poll_seconds}")
    queue = _coerce_queue(queue)
    store = _coerce_store(store)
    specs = list(specs)
    if submit:
        queue.submit(specs, num_shards=num_shards)
    backoff = ExponentialBackoff(poll_seconds)

    waiting: Dict[str, List[int]] = {}
    for index, spec in enumerate(specs):
        waiting.setdefault(spec.canonical_key, []).append(index)

    deadline = None if timeout is None else time.monotonic() + timeout
    while waiting:
        landed = [key for key in waiting if store.contains(key)]
        progressed = False
        for key in landed:
            report = store.get(key)
            if report is None:
                # The entry was corrupt and has been quarantined by the
                # store.  Heal here rather than re-queueing: the task is
                # already marked done, and batch-mode workers may have
                # exited — a queued retry could wait forever.  On a
                # thread, so other coroutines on the loop keep running.
                report = await asyncio.to_thread(
                    solve, specs[waiting[key][0]], store=store
                )
            progressed = True
            for index in waiting.pop(key):
                yield index, report
        if not waiting:
            break
        if not progressed:
            failures = queue.failures()
            dead = sorted(set(waiting) & set(failures))
            if dead:
                details = "; ".join(f"{key[:12]}…: {failures[key]}" for key in dead)
                raise RuntimeError(
                    f"{len(dead)} spec(s) failed in the worker pool — {details}"
                )
            # A done marker with no store entry (the store was pruned,
            # or a fresh store was attached to an old queue) would wait
            # forever — nobody re-solves a done task.  Same inline heal.
            done = set(queue.done_keys())
            recovered = [key for key in waiting if key in done]
            for key in recovered:
                report = await asyncio.to_thread(
                    solve, specs[waiting[key][0]], store=store
                )
                progressed = True
                for index in waiting.pop(key):
                    yield index, report
            if progressed:
                continue
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(_stalled_batch_message(waiting, queue, timeout))
            await asyncio.sleep(backoff.next_delay())
        else:
            backoff.reset()


async def solve_many_async(
    specs: Sequence[ScenarioSpec],
    queue: Union[str, Path, WorkQueue],
    store: Union[str, Path, ReportStore],
    num_shards: int = 1,
    poll_seconds: float = 0.05,
    timeout: Optional[float] = None,
    submit: bool = True,
) -> List[SolveReport]:
    """Distributed ``solve_many``: queue the batch, gather in input order.

    The returned reports are bit-identical to a serial
    :func:`repro.api.service.solve_many` over the same specs (the
    workers run the same deterministic solve path), so callers can swap
    between in-process pooling and queue-based scale-out freely.
    Callers that already submitted the batch (e.g. before spawning
    batch-mode workers) pass ``submit=False`` to skip the re-scan.
    """
    specs = list(specs)
    results: List[Optional[SolveReport]] = [None] * len(specs)
    async for index, report in as_reports_completed(
        specs,
        queue,
        store,
        num_shards=num_shards,
        poll_seconds=poll_seconds,
        timeout=timeout,
        submit=submit,
    ):
        results[index] = report
    return [r for r in results if r is not None]
