"""A file-backed work queue with claim/lease/complete semantics.

The queue is a directory; a task is a JSON file holding one serialized
:class:`~repro.api.specs.ScenarioSpec`; a task's state is which
subdirectory its file sits in::

    pending/   submitted, unowned            (claim: rename → claimed/)
    claimed/   leased to one worker          (complete: rename → done/)
    done/      solved, report in the store
    failed/    solve raised; error recorded  (terminal, like done)
    leases/    sidecar per claimed task: owner + expiry

Every state transition is a single ``os.rename`` on one filesystem —
atomic on POSIX — so any number of independent worker processes can
claim from one queue with no locks and no coordinator: a contested
claim simply loses the rename race and moves on.  Crash safety comes
from leases: a claim writes a sidecar recording the owner and an expiry
time, and :meth:`WorkQueue.requeue_expired` (run by every worker between
claims) moves tasks whose lease has lapsed back to ``pending/``, so work
owned by a crashed or wedged worker is re-run by someone else.

Completion is idempotent by design: a worker that outlives its lease and
completes anyway finds its claim file gone and treats that as success —
the report it wrote to the shared :class:`repro.store.ReportStore` makes
the re-queued copy a store hit rather than a duplicate solve.

Task files are named ``s<shard>-<canonical_key>.json`` so submission
deduplicates by content and a shard-pinned worker
(``python -m repro.cluster worker --shard K --num-shards N``) can filter
on the filename prefix without reading payloads.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.api.specs import ScenarioSpec
from repro.cluster.sharding import shard_of
from repro.obs import metrics as obs_metrics
from repro.util.errors import ConfigurationError
from repro.util.serialization import atomic_write_bytes

TASK_SCHEMA = "WorkQueueTask/v1"
LEASE_SCHEMA = "WorkQueueLease/v1"

_STATES = ("pending", "claimed", "done", "failed")


def _task_name(shard: int, key: str) -> str:
    return f"s{shard:04d}-{key}.json"


def _key_of_task_name(name: str) -> str:
    """The canonical key encoded in a task filename."""
    return name.split("-", 1)[1][: -len(".json")]


def _shard_of_task_name(name: str) -> int:
    """The shard encoded in a task filename (the authoritative one)."""
    return int(name.split("-", 1)[0][1:])


@dataclass(frozen=True)
class ClaimedTask:
    """One leased unit of work: the spec payload plus its queue identity."""

    name: str
    key: str
    shard: int
    payload: Dict[str, Any]
    worker: str = ""
    # Wall-clock claim time (0.0 for hand-built tasks); lets complete()
    # observe the claim→complete latency without re-reading the lease.
    claimed_at: float = 0.0

    @property
    def spec(self) -> ScenarioSpec:
        """The live spec this task asks to solve."""
        return ScenarioSpec.from_jsonable(self.payload["spec"])


class WorkQueue:
    """A shared directory of serialized specs with leased claims.

    Parameters
    ----------
    root:
        Queue directory (created on first use).
    lease_seconds:
        How long a claim stays owned without completing before
        :meth:`requeue_expired` hands it to another worker.  Choose it
        comfortably above the slowest expected single solve.
    """

    def __init__(self, root: Union[str, Path], lease_seconds: float = 300.0) -> None:
        if lease_seconds <= 0:
            raise ConfigurationError(
                f"lease_seconds must be positive, got {lease_seconds}"
            )
        self.root = Path(root)
        self.lease_seconds = float(lease_seconds)

    def _dir(self, state: str) -> Path:
        return self.root / state

    def _lease_path(self, name: str) -> Path:
        return self.root / "leases" / f"{name}.lease"

    def _names(self, state: str) -> List[str]:
        directory = self._dir(state)
        if not directory.exists():
            return []
        return sorted(p.name for p in directory.iterdir() if p.suffix == ".json")

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self, specs: Sequence[ScenarioSpec], num_shards: int = 1
    ) -> List[str]:
        """Enqueue specs (deduplicated by canonical key); returns their keys.

        A spec whose canonical key already has a task file in any state
        — under *any* shard count — is skipped: submission is
        idempotent, so a gatherer can re-submit a batch containing keys
        another client already queued or finished, even with different
        sharding.
        """
        existing = {
            _key_of_task_name(name)
            for state in _STATES
            for name in self._names(state)
        }
        pending_names = {
            _key_of_task_name(name): name for name in self._names("pending")
        }
        keys: List[str] = []
        for spec in specs:
            key = spec.canonical_key
            keys.append(key)
            shard = shard_of(key, num_shards)
            name = _task_name(shard, key)
            if key in existing:
                # Already queued/finished — but a *pending* task carrying
                # a stale shard prefix (submitted under a different
                # num_shards) would be invisible to shard-pinned workers
                # of the current layout; re-shard it by rename.
                old_name = pending_names.get(key)
                if old_name is not None and old_name != name:
                    try:
                        os.rename(
                            self._dir("pending") / old_name,
                            self._dir("pending") / name,
                        )
                    except FileNotFoundError:
                        pass  # claimed in the meantime; its worker owns it
                continue
            existing.add(key)
            payload = {
                "schema": TASK_SCHEMA,
                "key": key,
                "shard": shard,
                "num_shards": num_shards,
                "spec": spec.to_jsonable(),
                "enqueued_at": time.time(),
            }
            atomic_write_bytes(
                self._dir("pending") / name,
                json.dumps(payload, sort_keys=True).encode("utf-8"),
            )
        return keys

    # ------------------------------------------------------------------
    # the claim/complete lifecycle
    # ------------------------------------------------------------------
    def claim(
        self, worker_id: str, shard: Optional[int] = None
    ) -> Optional[ClaimedTask]:
        """Atomically take ownership of one pending task (or ``None``).

        ``shard`` restricts the scan to tasks owned by that shard.  The
        winning transition is a rename into ``claimed/``; losing a race
        just moves on to the next candidate.
        """
        prefix = f"s{shard:04d}-" if shard is not None else ""
        for name in self._names("pending"):
            if prefix and not name.startswith(prefix):
                continue
            source = self._dir("pending") / name
            target = self._dir("claimed") / name
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(source, target)
            except FileNotFoundError:
                continue  # another worker won this one
            now = time.time()
            try:
                # Stamp the claim: rename preserves mtime, but the
                # missing-lease grace in requeue_expired must measure
                # time since *claiming*, not since submission.
                os.utime(target)
            except OSError:
                pass
            atomic_write_bytes(
                self._lease_path(name),
                json.dumps(
                    {
                        "schema": LEASE_SCHEMA,
                        "task": name,
                        "worker": worker_id,
                        "claimed_at": now,
                        "expires_at": now + self.lease_seconds,
                    },
                    sort_keys=True,
                ).encode("utf-8"),
            )
            try:
                payload = json.loads(target.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                # Unreadable payload (racing scavenger, torn submit):
                # hand the claim straight back rather than stranding it
                # in claimed/ under a fresh lease for a full window.
                try:
                    os.rename(target, source)
                except FileNotFoundError:
                    pass
                self._drop_lease(name)
                continue
            obs_metrics.registry().counter(
                "repro_queue_claims_total", "Tasks claimed from the queue"
            ).inc()
            return ClaimedTask(
                name=name,
                key=payload["key"],
                # The filename is authoritative: a re-sharded task keeps
                # its original payload but lives under the new prefix.
                shard=_shard_of_task_name(name),
                payload=payload,
                worker=worker_id,
                claimed_at=now,
            )
        return None

    def _owns(self, task: ClaimedTask) -> bool:
        """Whether ``task``'s claim in ``claimed/`` still belongs to its worker.

        After a lease expires and the task is re-claimed, the *same
        filename* in ``claimed/`` belongs to the successor — the original
        worker must not complete/fail/release on its behalf.
        """
        lease = self._read_lease(task.name)
        return lease is None or lease.get("worker") == task.worker

    def complete(self, task: ClaimedTask) -> None:
        """Mark a claimed task solved (idempotent; lease is released)."""
        if not self._owns(task):
            # Our lease expired and a successor re-claimed this name;
            # our report is already in the store, so this is a success —
            # but the claim (and its lease) now belongs to them.
            return
        source = self._dir("claimed") / task.name
        target = self._dir("done") / task.name
        target.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(source, target)
        except FileNotFoundError:
            # Our lease expired and the task was requeued (and possibly
            # re-done).  Our report is already in the store, so this is
            # a success, not an error.
            pass
        self._drop_lease(task.name)
        reg = obs_metrics.registry()
        reg.counter("repro_queue_completes_total", "Tasks completed").inc()
        if task.claimed_at:
            reg.histogram(
                "repro_queue_claim_to_complete_seconds",
                "Latency from claim to complete (seconds)",
            ).observe(max(0.0, time.time() - task.claimed_at))

    def release(self, task: ClaimedTask) -> None:
        """Voluntarily hand a claimed task back to ``pending/``."""
        if not self._owns(task):
            return
        try:
            os.rename(self._dir("claimed") / task.name, self._dir("pending") / task.name)
        except FileNotFoundError:
            pass
        self._drop_lease(task.name)

    def fail(self, task: ClaimedTask, error: str) -> None:
        """Dead-letter a claimed task whose solve raised (terminal state).

        Retrying would only crash the next worker too (solves are
        deterministic), so a failed task parks in ``failed/`` with the
        error recorded alongside — keeping the queue drainable and the
        workers alive.  Idempotent, like :meth:`complete`.
        """
        if not self._owns(task):
            # A successor re-claimed this name after our lease lapsed;
            # their (possibly successful) attempt owns the outcome now —
            # dead-lettering it on their behalf would strand good work.
            return
        source = self._dir("claimed") / task.name
        target = self._dir("failed") / task.name
        target.parent.mkdir(parents=True, exist_ok=True)
        # ".error" suffix keeps the sidecar out of the task-name scans.
        atomic_write_bytes(
            self._dir("failed") / f"{task.name}.error",
            json.dumps(
                {"task": task.name, "key": task.key, "error": error},
                sort_keys=True,
            ).encode("utf-8"),
        )
        try:
            os.rename(source, target)
        except FileNotFoundError:
            pass
        self._drop_lease(task.name)

    def failures(self) -> Dict[str, str]:
        """Canonical key → recorded error message for failed tasks."""
        out: Dict[str, str] = {}
        for name in self._names("failed"):
            key = _key_of_task_name(name)
            error_path = self._dir("failed") / f"{name}.error"
            try:
                out[key] = json.loads(error_path.read_text(encoding="utf-8"))["error"]
            except (OSError, json.JSONDecodeError, KeyError):
                out[key] = "unknown error (sidecar missing or unreadable)"
        return out

    def retry_failed(self, key: Optional[str] = None) -> int:
        """Move dead-lettered tasks back to ``pending/`` for another try.

        The recovery path after fixing a transient cause (disk full,
        OOM-killed worker): without it a failed key would block every
        future drain containing it, since submission dedupes against
        ``failed/`` and workers never scan it.  ``key`` retries one
        task; ``None`` retries them all.  Returns how many moved.
        """
        moved = 0
        for name in self._names("failed"):
            if key is not None and _key_of_task_name(name) != key:
                continue
            pending = self._dir("pending")
            pending.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(self._dir("failed") / name, pending / name)
            except FileNotFoundError:
                continue
            try:
                (self._dir("failed") / f"{name}.error").unlink()
            except OSError:
                pass
            moved += 1
        return moved

    def reopen(self, key: str) -> bool:
        """Move a *done* task back to ``pending/`` (report was lost).

        The recovery path for the rare case where a completed task's
        stored report is later found corrupt (and quarantined by the
        store): reopening puts the spec back in front of the workers.
        Returns whether a done marker for ``key`` was found and moved.
        """
        for name in self._names("done"):
            if _key_of_task_name(name) != key:
                continue
            pending = self._dir("pending")
            pending.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(self._dir("done") / name, pending / name)
            except FileNotFoundError:
                continue
            return True
        return False

    def requeue_expired(self, now: Optional[float] = None) -> int:
        """Return lapsed claims to ``pending/``; returns how many moved.

        A claim is lapsed when its lease has expired, or when the lease
        sidecar is missing and the claim file itself is older than the
        lease window (covering a worker that died between the rename and
        the lease write).
        """
        now = time.time() if now is None else now
        moved = 0
        for name in self._names("claimed"):
            claim_path = self._dir("claimed") / name
            lease = self._read_lease(name)
            if lease is not None:
                if float(lease.get("expires_at", 0.0)) > now:
                    continue
            else:
                try:
                    claimed_at = claim_path.stat().st_mtime
                except FileNotFoundError:
                    continue
                if now - claimed_at <= self.lease_seconds:
                    continue
            pending = self._dir("pending")
            pending.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(claim_path, pending / name)
            except FileNotFoundError:
                continue  # racing scavenger/completer got there first
            self._drop_lease(name)
            moved += 1
        if moved:
            obs_metrics.registry().counter(
                "repro_queue_lease_expirations_total",
                "Lapsed claims returned to pending",
            ).inc(moved)
        return moved

    def _read_lease(self, name: str) -> Optional[Dict[str, Any]]:
        try:
            data = json.loads(self._lease_path(name).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict) or data.get("schema") != LEASE_SCHEMA:
            return None
        return data

    def _drop_lease(self, name: str) -> None:
        try:
            self._lease_path(name).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Task counts per state."""
        return {state: len(self._names(state)) for state in _STATES}

    def is_drained(self) -> bool:
        """Whether no task is pending or claimed (everything is done)."""
        counts = self.counts()
        return counts["pending"] == 0 and counts["claimed"] == 0

    def done_keys(self) -> List[str]:
        """Canonical keys of completed tasks."""
        return [_key_of_task_name(name) for name in self._names("done")]
