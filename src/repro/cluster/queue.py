"""A file-backed work queue with claim/lease/complete semantics.

The queue is a directory; a task is a JSON file holding one serialized
:class:`~repro.api.specs.ScenarioSpec`; a task's state is which
subdirectory its file sits in::

    pending/   submitted, unowned            (claim: rename → claimed/)
    claimed/   leased to one worker          (complete: rename → done/)
    done/      solved, report in the store
    failed/    solve raised; error recorded  (terminal, like done)
    leases/    sidecar per claimed task: owner + expiry

Every state transition is a single ``os.rename`` on one filesystem —
atomic on POSIX — so any number of independent worker processes can
claim from one queue with no locks and no coordinator: a contested
claim simply loses the rename race and moves on.  Crash safety comes
from leases: a claim writes a sidecar recording the owner and an expiry
time, and :meth:`WorkQueue.requeue_expired` (run by every worker between
claims) moves tasks whose lease has lapsed back to ``pending/``, so work
owned by a crashed or wedged worker is re-run by someone else.

Completion is idempotent by design: a worker that outlives its lease and
completes anyway finds its claim file gone and treats that as success —
the report it wrote to the shared :class:`repro.store.ReportStore` makes
the re-queued copy a store hit rather than a duplicate solve.

Task files are named ``s<shard>-<canonical_key>.json`` so submission
deduplicates by content and a shard-pinned worker
(``python -m repro.cluster worker --shard K --num-shards N``) can filter
on the filename prefix without reading payloads.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro import faults
from repro.api.specs import ScenarioSpec
from repro.cluster.sharding import shard_of
from repro.obs import metrics as obs_metrics
from repro.util.errors import ConfigurationError
from repro.util.serialization import atomic_write_bytes, fsync_directory

TASK_SCHEMA = "WorkQueueTask/v1"
LEASE_SCHEMA = "WorkQueueLease/v1"
ATTEMPTS_SCHEMA = "WorkQueueAttempts/v1"

_STATES = ("pending", "claimed", "done", "failed")

#: Buckets for the per-task attempts histogram: attempts are small
#: integers, so the default latency buckets would bin them uselessly.
ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 13.0)

# Crash seams for the fault-injection sweep: each is a precise spot a
# worker can die between two filesystem operations of one logical
# transition.  queue.submit.{write,rename,publish} are derived inside
# atomic_write_bytes.
faults.declare_point("queue.submit.write", "payload bytes of a submitted task")
faults.declare_point("queue.submit.rename", "before a submit's atomic rename")
faults.declare_point("queue.submit.publish", "after a submit's rename")
faults.declare_point("queue.claim.rename", "before the pending->claimed rename")
faults.declare_point("queue.claim.lease", "after the claim rename, before the lease write")
faults.declare_point("queue.complete.rename", "before the claimed->done rename")
faults.declare_point("queue.complete.lease", "after the done rename, before the lease drop")
faults.declare_point("queue.fail.rename", "before the claimed->failed rename")
faults.declare_point("queue.requeue.rename", "before the claimed->pending rename")
faults.declare_point("queue.requeue.lease", "after the requeue rename, before the lease drop")
faults.declare_point("queue.renew.write", "before a heartbeat lease rewrite")


def _task_name(shard: int, key: str) -> str:
    return f"s{shard:04d}-{key}.json"


def _key_of_task_name(name: str) -> str:
    """The canonical key encoded in a task filename."""
    return name.split("-", 1)[1][: -len(".json")]


def _shard_of_task_name(name: str) -> int:
    """The shard encoded in a task filename (the authoritative one)."""
    return int(name.split("-", 1)[0][1:])


@dataclass(frozen=True)
class ClaimedTask:
    """One leased unit of work: the spec payload plus its queue identity."""

    name: str
    key: str
    shard: int
    payload: Dict[str, Any]
    worker: str = ""
    # Wall-clock claim time (0.0 for hand-built tasks); lets complete()
    # observe the claim→complete latency without re-reading the lease.
    claimed_at: float = 0.0

    @property
    def spec(self) -> ScenarioSpec:
        """The live spec this task asks to solve."""
        return ScenarioSpec.from_jsonable(self.payload["spec"])


class WorkQueue:
    """A shared directory of serialized specs with leased claims.

    Parameters
    ----------
    root:
        Queue directory (created on first use).
    lease_seconds:
        How long a claim stays owned without completing before
        :meth:`requeue_expired` hands it to another worker.  Workers
        heartbeat (:meth:`renew`) while solving, so this bounds
        *crash detection latency*, not solve duration.
    max_attempts:
        How many lease expirations a task survives before
        :meth:`requeue_expired` dead-letters it as poison instead of
        requeueing — a task that reliably kills its worker must not
        take down the whole fleet one worker at a time.
    durable:
        fsync directories around state-transition renames (and task,
        lease and attempts writes) so queue state survives power loss.
        Default on; turn off for throwaway queues in tight test loops.
    """

    def __init__(
        self,
        root: Union[str, Path],
        lease_seconds: float = 300.0,
        max_attempts: int = 5,
        durable: bool = True,
    ) -> None:
        if lease_seconds <= 0:
            raise ConfigurationError(
                f"lease_seconds must be positive, got {lease_seconds}"
            )
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.root = Path(root)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.durable = bool(durable)

    def _dir(self, state: str) -> Path:
        return self.root / state

    def _lease_path(self, name: str) -> Path:
        return self.root / "leases" / f"{name}.lease"

    def _attempts_path(self, name: str) -> Path:
        return self.root / "attempts" / f"{name}.json"

    def _rename(
        self, source: Path, target: Path, fault_point: Optional[str] = None
    ) -> None:
        """One durable state transition (``FileNotFoundError`` propagates)."""
        if fault_point is not None:
            faults.point(fault_point)
        os.rename(source, target)
        if self.durable:
            fsync_directory(target.parent)
            if source.parent != target.parent:
                fsync_directory(source.parent)

    def _names(self, state: str) -> List[str]:
        directory = self._dir(state)
        if not directory.exists():
            return []
        return sorted(p.name for p in directory.iterdir() if p.suffix == ".json")

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self, specs: Sequence[ScenarioSpec], num_shards: int = 1
    ) -> List[str]:
        """Enqueue specs (deduplicated by canonical key); returns their keys.

        A spec whose canonical key already has a task file in any state
        — under *any* shard count — is skipped: submission is
        idempotent, so a gatherer can re-submit a batch containing keys
        another client already queued or finished, even with different
        sharding.
        """
        existing = {
            _key_of_task_name(name)
            for state in _STATES
            for name in self._names(state)
        }
        pending_names = {
            _key_of_task_name(name): name for name in self._names("pending")
        }
        keys: List[str] = []
        for spec in specs:
            key = spec.canonical_key
            keys.append(key)
            shard = shard_of(key, num_shards)
            name = _task_name(shard, key)
            if key in existing:
                # Already queued/finished — but a *pending* task carrying
                # a stale shard prefix (submitted under a different
                # num_shards) would be invisible to shard-pinned workers
                # of the current layout; re-shard it by rename.
                old_name = pending_names.get(key)
                if old_name is not None and old_name != name:
                    try:
                        os.rename(
                            self._dir("pending") / old_name,
                            self._dir("pending") / name,
                        )
                    except FileNotFoundError:
                        pass  # claimed in the meantime; its worker owns it
                continue
            existing.add(key)
            payload = {
                "schema": TASK_SCHEMA,
                "key": key,
                "shard": shard,
                "num_shards": num_shards,
                "spec": spec.to_jsonable(),
                "enqueued_at": time.time(),
            }
            atomic_write_bytes(
                self._dir("pending") / name,
                json.dumps(payload, sort_keys=True).encode("utf-8"),
                durable=self.durable,
                fault_point="queue.submit",
            )
        return keys

    # ------------------------------------------------------------------
    # the claim/complete lifecycle
    # ------------------------------------------------------------------
    def claim(
        self, worker_id: str, shard: Optional[int] = None
    ) -> Optional[ClaimedTask]:
        """Atomically take ownership of one pending task (or ``None``).

        ``shard`` restricts the scan to tasks owned by that shard.  The
        winning transition is a rename into ``claimed/``; losing a race
        just moves on to the next candidate.
        """
        prefix = f"s{shard:04d}-" if shard is not None else ""
        for name in self._names("pending"):
            if prefix and not name.startswith(prefix):
                continue
            source = self._dir("pending") / name
            target = self._dir("claimed") / name
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                self._rename(source, target, "queue.claim.rename")
            except FileNotFoundError:
                continue  # another worker won this one
            now = time.time()
            try:
                # Stamp the claim: rename preserves mtime, but the
                # missing-lease grace in requeue_expired must measure
                # time since *claiming*, not since submission.
                os.utime(target)
            except OSError:
                pass
            faults.point("queue.claim.lease")
            atomic_write_bytes(
                self._lease_path(name),
                json.dumps(
                    {
                        "schema": LEASE_SCHEMA,
                        "task": name,
                        "worker": worker_id,
                        "claimed_at": now,
                        "expires_at": now + self.lease_seconds,
                        "renewals": 0,
                    },
                    sort_keys=True,
                ).encode("utf-8"),
                durable=self.durable,
            )
            try:
                payload = json.loads(target.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                # Unreadable payload (racing scavenger, torn submit):
                # hand the claim straight back rather than stranding it
                # in claimed/ under a fresh lease for a full window.
                try:
                    self._rename(target, source)
                except FileNotFoundError:
                    pass
                self._drop_lease(name)
                continue
            obs_metrics.registry().counter(
                "repro_queue_claims_total", "Tasks claimed from the queue"
            ).inc()
            return ClaimedTask(
                name=name,
                key=payload["key"],
                # The filename is authoritative: a re-sharded task keeps
                # its original payload but lives under the new prefix.
                shard=_shard_of_task_name(name),
                payload=payload,
                worker=worker_id,
                claimed_at=now,
            )
        return None

    def _owns(self, task: ClaimedTask) -> bool:
        """Whether ``task``'s claim in ``claimed/`` still belongs to its worker.

        After a lease expires and the task is re-claimed, the *same
        filename* in ``claimed/`` belongs to the successor — the original
        worker must not complete/fail/release on its behalf.
        """
        lease = self._read_lease(task.name)
        return lease is None or lease.get("worker") == task.worker

    def renew(self, task: ClaimedTask, now: Optional[float] = None) -> bool:
        """Heartbeat: extend the lease on a claim this worker still owns.

        Returns ``True`` when the lease was pushed out another
        ``lease_seconds`` from ``now``, ``False`` when ownership is gone
        (the lease names a successor, or the claim file itself left
        ``claimed/``) — the caller's solve has been, or is about to be,
        re-executed elsewhere, and its eventual ``complete`` will be the
        idempotent no-op path.

        Renewal is what lets ``lease_seconds`` be a *crash detector*
        rather than an upper bound on solve time: a live worker renews
        every ``lease_seconds / 3`` and can run arbitrarily long, while
        a dead one stops renewing and loses the task within one window.
        """
        now = time.time() if now is None else now
        lease = self._read_lease(task.name)
        if lease is not None and lease.get("worker") != task.worker:
            return False
        if not (self._dir("claimed") / task.name).exists():
            return False
        renewals = (int(lease.get("renewals", 0)) if lease is not None else 0) + 1
        claimed_at = (
            float(lease.get("claimed_at", task.claimed_at))
            if lease is not None
            else task.claimed_at
        )
        faults.point("queue.renew.write")
        atomic_write_bytes(
            self._lease_path(task.name),
            json.dumps(
                {
                    "schema": LEASE_SCHEMA,
                    "task": task.name,
                    "worker": task.worker,
                    "claimed_at": claimed_at,
                    "expires_at": now + self.lease_seconds,
                    "renewals": renewals,
                },
                sort_keys=True,
            ).encode("utf-8"),
            durable=self.durable,
        )
        obs_metrics.registry().counter(
            "repro_lease_renewals_total", "Heartbeat lease renewals"
        ).inc()
        return True

    def complete(self, task: ClaimedTask) -> None:
        """Mark a claimed task solved (idempotent; lease is released)."""
        if not self._owns(task):
            # Our lease expired and a successor re-claimed this name;
            # our report is already in the store, so this is a success —
            # but the claim (and its lease) now belongs to them.
            return
        source = self._dir("claimed") / task.name
        target = self._dir("done") / task.name
        target.parent.mkdir(parents=True, exist_ok=True)
        attempts = self._read_requeues(task.name) + 1
        try:
            self._rename(source, target, "queue.complete.rename")
        except FileNotFoundError:
            # Our lease expired and the task was requeued (and possibly
            # re-done).  Our report is already in the store, so this is
            # a success, not an error.
            pass
        faults.point("queue.complete.lease")
        self._drop_lease(task.name)
        self._drop_attempts(task.name)
        reg = obs_metrics.registry()
        reg.counter("repro_queue_completes_total", "Tasks completed").inc()
        reg.histogram(
            "repro_task_attempts",
            "Execution attempts per completed task",
            buckets=ATTEMPT_BUCKETS,
        ).observe(float(attempts))
        if task.claimed_at:
            reg.histogram(
                "repro_queue_claim_to_complete_seconds",
                "Latency from claim to complete (seconds)",
            ).observe(max(0.0, time.time() - task.claimed_at))

    def release(self, task: ClaimedTask) -> None:
        """Voluntarily hand a claimed task back to ``pending/``."""
        if not self._owns(task):
            return
        try:
            self._rename(
                self._dir("claimed") / task.name, self._dir("pending") / task.name
            )
        except FileNotFoundError:
            pass
        self._drop_lease(task.name)

    def fail(self, task: ClaimedTask, error: str) -> None:
        """Dead-letter a claimed task whose solve raised (terminal state).

        Retrying would only crash the next worker too (solves are
        deterministic), so a failed task parks in ``failed/`` with the
        error recorded alongside — keeping the queue drainable and the
        workers alive.  Idempotent, like :meth:`complete`.
        """
        if not self._owns(task):
            # A successor re-claimed this name after our lease lapsed;
            # their (possibly successful) attempt owns the outcome now —
            # dead-lettering it on their behalf would strand good work.
            return
        source = self._dir("claimed") / task.name
        target = self._dir("failed") / task.name
        target.parent.mkdir(parents=True, exist_ok=True)
        # ".error" suffix keeps the sidecar out of the task-name scans.
        atomic_write_bytes(
            self._dir("failed") / f"{task.name}.error",
            json.dumps(
                {"task": task.name, "key": task.key, "error": error},
                sort_keys=True,
            ).encode("utf-8"),
            durable=self.durable,
        )
        try:
            self._rename(source, target, "queue.fail.rename")
        except FileNotFoundError:
            pass
        self._drop_lease(task.name)
        self._drop_attempts(task.name)

    def failures(self) -> Dict[str, str]:
        """Canonical key → recorded error message for failed tasks."""
        out: Dict[str, str] = {}
        for name in self._names("failed"):
            key = _key_of_task_name(name)
            error_path = self._dir("failed") / f"{name}.error"
            try:
                out[key] = json.loads(error_path.read_text(encoding="utf-8"))["error"]
            except (OSError, json.JSONDecodeError, KeyError):
                out[key] = "unknown error (sidecar missing or unreadable)"
        return out

    def retry_failed(self, key: Optional[str] = None) -> int:
        """Move dead-lettered tasks back to ``pending/`` for another try.

        The recovery path after fixing a transient cause (disk full,
        OOM-killed worker): without it a failed key would block every
        future drain containing it, since submission dedupes against
        ``failed/`` and workers never scan it.  ``key`` retries one
        task; ``None`` retries them all.  Returns how many moved.
        """
        moved = 0
        for name in self._names("failed"):
            if key is not None and _key_of_task_name(name) != key:
                continue
            pending = self._dir("pending")
            pending.mkdir(parents=True, exist_ok=True)
            try:
                self._rename(self._dir("failed") / name, pending / name)
            except FileNotFoundError:
                continue
            try:
                (self._dir("failed") / f"{name}.error").unlink()
            except OSError:
                pass
            # A fresh start deserves a fresh attempt budget — without
            # this, a task dead-lettered as poison would re-poison on
            # its first post-retry expiry.
            self._drop_attempts(name)
            moved += 1
        return moved

    def reopen(self, key: str) -> bool:
        """Move a *done* task back to ``pending/`` (report was lost).

        The recovery path for the rare case where a completed task's
        stored report is later found corrupt (and quarantined by the
        store): reopening puts the spec back in front of the workers.
        Returns whether a done marker for ``key`` was found and moved.
        """
        for name in self._names("done"):
            if _key_of_task_name(name) != key:
                continue
            pending = self._dir("pending")
            pending.mkdir(parents=True, exist_ok=True)
            try:
                self._rename(self._dir("done") / name, pending / name)
            except FileNotFoundError:
                continue
            self._drop_attempts(name)
            return True
        return False

    def requeue_expired(self, now: Optional[float] = None) -> int:
        """Return lapsed claims to ``pending/``; returns how many moved.

        A claim is lapsed when its lease has expired, or when the lease
        sidecar is missing and the claim file itself is older than the
        lease window (covering a worker that died between the rename and
        the lease write).

        Each expiry bumps the task's attempt sidecar; a task whose
        expiry count reaches ``max_attempts`` is *poison* — it has taken
        down that many workers — and is dead-lettered to ``failed/``
        (error recorded, like :meth:`fail`) instead of being handed to
        the next victim.  Lease sidecars orphaned by a crash between a
        terminal rename and the lease drop are swept here too.
        """
        now = time.time() if now is None else now
        moved = 0
        for name in self._names("claimed"):
            claim_path = self._dir("claimed") / name
            lease = self._read_lease(name)
            if lease is not None:
                if float(lease.get("expires_at", 0.0)) > now:
                    continue
            else:
                try:
                    claimed_at = claim_path.stat().st_mtime
                except FileNotFoundError:
                    continue
                if now - claimed_at <= self.lease_seconds:
                    continue
            requeues = self._read_requeues(name) + 1
            if requeues >= self.max_attempts:
                target = self._dir("failed") / name
                target.parent.mkdir(parents=True, exist_ok=True)
                atomic_write_bytes(
                    self._dir("failed") / f"{name}.error",
                    json.dumps(
                        {
                            "task": name,
                            "key": _key_of_task_name(name),
                            "error": (
                                f"poison task: lease expired {requeues} times "
                                f"(max_attempts={self.max_attempts})"
                            ),
                        },
                        sort_keys=True,
                    ).encode("utf-8"),
                    durable=self.durable,
                )
                try:
                    self._rename(claim_path, target, "queue.fail.rename")
                except FileNotFoundError:
                    continue
                self._drop_lease(name)
                self._drop_attempts(name)
                obs_metrics.registry().counter(
                    "repro_queue_poison_total",
                    "Tasks dead-lettered after exhausting max_attempts",
                ).inc()
                continue
            self._write_requeues(name, requeues)
            pending = self._dir("pending")
            pending.mkdir(parents=True, exist_ok=True)
            try:
                self._rename(claim_path, pending / name, "queue.requeue.rename")
            except FileNotFoundError:
                continue  # racing scavenger/completer got there first
            faults.point("queue.requeue.lease")
            self._drop_lease(name)
            moved += 1
        if moved:
            obs_metrics.registry().counter(
                "repro_queue_lease_expirations_total",
                "Lapsed claims returned to pending",
            ).inc(moved)
        self._sweep_orphan_leases()
        return moved

    def _sweep_orphan_leases(self) -> None:
        """Drop lease sidecars whose task is no longer in ``claimed/``.

        A worker that crashed between a terminal rename (done/failed/
        pending) and its ``_drop_lease`` leaves the sidecar behind; the
        stale worker id inside would otherwise confuse a future claim of
        the same name during the window before its fresh lease lands.
        """
        leases_dir = self.root / "leases"
        if not leases_dir.exists():
            return
        for sidecar in leases_dir.iterdir():
            if not sidecar.name.endswith(".lease"):
                continue
            name = sidecar.name[: -len(".lease")]
            # Freshness check immediately before the unlink: a claim
            # landing mid-sweep re-creates claimed/<name> before (or
            # while) writing its lease, so checking here — not against a
            # stale snapshot — keeps live leases out of the sweep.
            if (self._dir("claimed") / name).exists():
                continue
            try:
                sidecar.unlink()
            except OSError:
                pass

    def _read_requeues(self, name: str) -> int:
        """How many times this task's lease has lapsed so far."""
        try:
            data = json.loads(self._attempts_path(name).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, ValueError):
            return 0
        if not isinstance(data, dict) or data.get("schema") != ATTEMPTS_SCHEMA:
            return 0
        try:
            return int(data.get("requeues", 0))
        except (TypeError, ValueError):
            return 0

    def _write_requeues(self, name: str, requeues: int) -> None:
        atomic_write_bytes(
            self._attempts_path(name),
            json.dumps(
                {"schema": ATTEMPTS_SCHEMA, "task": name, "requeues": requeues},
                sort_keys=True,
            ).encode("utf-8"),
            durable=self.durable,
        )

    def _drop_attempts(self, name: str) -> None:
        try:
            self._attempts_path(name).unlink()
        except OSError:
            pass

    def _read_lease(self, name: str) -> Optional[Dict[str, Any]]:
        try:
            data = json.loads(self._lease_path(name).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict) or data.get("schema") != LEASE_SCHEMA:
            return None
        return data

    def _drop_lease(self, name: str) -> None:
        try:
            self._lease_path(name).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Task counts per state."""
        return {state: len(self._names(state)) for state in _STATES}

    def is_drained(self) -> bool:
        """Whether no task is pending or claimed (everything is done)."""
        counts = self.counts()
        return counts["pending"] == 0 and counts["claimed"] == 0

    def done_keys(self) -> List[str]:
        """Canonical keys of completed tasks."""
        return [_key_of_task_name(name) for name in self._names("done")]
