"""``python -m repro.cluster`` — sharded work-queue execution from the shell.

Subcommands
-----------
``submit SPEC [SPEC ...] --queue DIR``
    Enqueue spec file(s) (same format as ``python -m repro.api run``)
    as work-queue tasks, sharded with ``--num-shards``.

``worker --queue DIR --store DIR``
    Run one cooperative worker: claim → solve → store → complete.
    ``--shard K`` pins it to one shard; ``--exit-when-empty`` returns
    when the queue drains (batch mode) instead of polling forever.

``drain SPEC [SPEC ...] --queue DIR --store DIR --workers N``
    The whole pipeline in one command: submit the batch, spawn N local
    workers, gather asynchronously, and emit the reports as JSON
    (``--output`` or stdout) in input order — a drop-in, multi-process
    replacement for ``python -m repro.api run``.

``status --queue DIR``
    Print pending/claimed/done task counts.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.api.__main__ import emit_reports
from repro.api.specs import ScenarioSpec, load_scenario_specs
from repro.cluster.async_api import solve_many_async
from repro.cluster.queue import WorkQueue
from repro.cluster.worker import run_worker, spawn_local_workers
from repro.util.errors import ConfigurationError
from repro.util.jobs import jobs_context


def _load_specs(paths: List[str]) -> List[ScenarioSpec]:
    specs: List[ScenarioSpec] = []
    for spec_path in paths:
        try:
            specs.extend(load_scenario_specs(spec_path))
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
    return specs


def _queue(args: argparse.Namespace) -> WorkQueue:
    kwargs = {}
    if getattr(args, "lease", None) is not None:
        kwargs["lease_seconds"] = args.lease
    if getattr(args, "max_attempts", None) is not None:
        kwargs["max_attempts"] = args.max_attempts
    return WorkQueue(args.queue, **kwargs)


def _cmd_submit(args: argparse.Namespace) -> int:
    specs = _load_specs(args.specs)
    keys = _queue(args).submit(specs, num_shards=args.num_shards)
    print(f"submitted {len(specs)} spec(s) ({len(set(keys))} unique) to {args.queue}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    with jobs_context(args.jobs):
        stats = run_worker(
            _queue(args),
            args.store,
            shard=args.shard,
            poll_seconds=args.poll,
            max_tasks=args.max_tasks,
            exit_when_empty=args.exit_when_empty,
            relay=args.relay,
            trace_dir=args.trace_dir,
            heartbeat=not args.no_heartbeat,
        )
    print(
        f"worker done: {stats['completed']} task(s) "
        f"({stats['solved']} solved, {stats['store_hits']} store hits, "
        f"{stats['failed']} failed)"
    )
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    specs = _load_specs(args.specs)
    queue = _queue(args)
    queue.submit(specs, num_shards=args.num_shards)
    with spawn_local_workers(
        args.workers,
        args.queue,
        args.store,
        pin_shards=args.pin_shards,
        poll_seconds=args.poll,
        exit_when_empty=True,
        lease_seconds=args.lease,
        shutdown_timeout=args.timeout,
    ):
        reports = asyncio.run(
            solve_many_async(
                specs,
                queue,
                args.store,
                num_shards=args.num_shards,
                timeout=args.timeout,
                poll_seconds=min(0.05, args.poll),
                submit=False,  # submitted above, before the workers spawned
            )
        )
    emit_reports(reports, args.output)
    return 0


def _cmd_retry(args: argparse.Namespace) -> int:
    moved = _queue(args).retry_failed(key=args.key)
    print(f"requeued {moved} failed task(s)")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    queue = _queue(args)
    counts = queue.counts()
    for state in ("pending", "claimed", "done", "failed"):
        print(f"{state:8s} {counts[state]}")
    for key, error in queue.failures().items():
        print(f"  failed {key[:12]}…: {error}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Sharded work-queue execution over scenario specs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="enqueue spec file(s) as queue tasks")
    submit.add_argument("specs", nargs="+", help="spec file(s): one scenario or a list")
    submit.add_argument("--queue", required=True, help="work-queue directory")
    submit.add_argument("--num-shards", type=int, default=1, help="shard count")
    submit.add_argument("--lease", type=float, default=None, help="lease seconds")
    submit.set_defaults(handler=_cmd_submit)

    worker = sub.add_parser("worker", help="run one cooperative queue worker")
    worker.add_argument("--queue", required=True, help="work-queue directory")
    worker.add_argument("--store", required=True, help="report-store directory")
    worker.add_argument("--shard", type=int, default=None, help="pin to one shard")
    worker.add_argument("--poll", type=float, default=0.2, help="idle poll seconds")
    worker.add_argument("--lease", type=float, default=None, help="lease seconds")
    worker.add_argument(
        "--max-tasks", type=int, default=None, help="stop after N completed tasks"
    )
    worker.add_argument(
        "--exit-when-empty",
        action="store_true",
        help="return when the queue drains instead of polling forever",
    )
    worker.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="process-wide REPRO_JOBS default while this worker runs",
    )
    worker.add_argument(
        "--relay",
        default=None,
        help="event-relay directory: stream each solve's engine events "
        "to <relay>/<key>.events.jsonl for the serve layer's SSE tailer",
    )
    worker.add_argument(
        "--trace-dir",
        default=None,
        help="write one Chrome trace-event file per solved task to "
        "<dir>/<key>.trace.json (stitch with `python -m repro.obs merge`)",
    )
    worker.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="lease expiries before a task is dead-lettered as poison",
    )
    worker.add_argument(
        "--no-heartbeat",
        action="store_true",
        help="disable lease renewal while solving (testing only: a solve "
        "longer than --lease will be re-executed by another worker)",
    )
    worker.set_defaults(handler=_cmd_worker)

    drain = sub.add_parser(
        "drain", help="submit a batch, run N local workers, gather reports"
    )
    drain.add_argument("specs", nargs="+", help="spec file(s): one scenario or a list")
    drain.add_argument("--queue", required=True, help="work-queue directory")
    drain.add_argument("--store", required=True, help="report-store directory")
    drain.add_argument("--workers", type=int, default=2, help="local worker processes")
    drain.add_argument("--num-shards", type=int, default=1, help="shard count")
    drain.add_argument(
        "--pin-shards",
        action="store_true",
        help="pin worker i to shard i (requires --num-shards == --workers)",
    )
    drain.add_argument("--poll", type=float, default=0.1, help="worker poll seconds")
    drain.add_argument("--lease", type=float, default=None, help="lease seconds")
    drain.add_argument(
        "--timeout", type=float, default=None, help="gather timeout in seconds"
    )
    drain.add_argument("--output", default=None, help="write reports to this JSON file")
    drain.set_defaults(handler=_cmd_drain)

    status = sub.add_parser("status", help="print queue task counts")
    status.add_argument("--queue", required=True, help="work-queue directory")
    status.add_argument("--lease", type=float, default=None, help="lease seconds")
    status.set_defaults(handler=_cmd_status)

    retry = sub.add_parser("retry", help="requeue dead-lettered (failed) tasks")
    retry.add_argument("--queue", required=True, help="work-queue directory")
    retry.add_argument(
        "--key", default=None, help="retry one canonical key (default: all failed)"
    )
    retry.add_argument("--lease", type=float, default=None, help="lease seconds")
    retry.set_defaults(handler=_cmd_retry)

    args = parser.parse_args(argv)
    if (
        getattr(args, "pin_shards", False)
        and args.num_shards != args.workers
    ):
        parser.error("--pin-shards requires --num-shards to equal --workers")
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
