"""repro.cluster — sharded, queue-based scale-out for spec batches.

Where :func:`repro.api.solve_many` pools within one process, this
package turns a batch into shared state that any number of *independent*
worker processes — on one host or several sharing a filesystem — drain
cooperatively:

* :mod:`repro.cluster.sharding` hashes ``canonical_key``s into shards so
  workers can partition a batch deterministically with no coordinator;
* :mod:`repro.cluster.queue` is the file-backed work queue — atomic
  rename claims, leases, and crash-safe requeue of expired leases;
* :mod:`repro.cluster.worker` is the claim → solve → store → complete
  loop behind ``python -m repro.cluster worker``;
* :mod:`repro.cluster.async_api` is the asyncio front end:
  ``solve_many_async`` / ``as_reports_completed`` stream
  :class:`~repro.api.service.SolveReport`s out of the shared
  :class:`repro.store.ReportStore` as workers land them.

``python -m repro.cluster drain batch.json --workers N`` runs the whole
pipeline — submit, N local workers, async gather — in one command.
"""

from repro.cluster.async_api import as_reports_completed, solve_many_async
from repro.cluster.queue import ClaimedTask, WorkQueue
from repro.cluster.sharding import partition_specs, shard_of
from repro.cluster.worker import run_worker, spawn_local_workers, worker_command

__all__ = [
    "WorkQueue",
    "ClaimedTask",
    "shard_of",
    "partition_specs",
    "run_worker",
    "spawn_local_workers",
    "worker_command",
    "solve_many_async",
    "as_reports_completed",
]
