"""The cooperative queue worker: claim → solve → store → complete.

A worker owns no long-lived state: it drains tasks from a shared
:class:`~repro.cluster.queue.WorkQueue`, solves each spec through the
ordinary :func:`repro.api.service.solve` path with the shared
:class:`~repro.store.ReportStore` attached (so a key another worker —
or any earlier run — already solved is a store hit, not a duplicate
solve), and marks the task done.  Any number of workers, started at any
time on any host sharing the filesystem, cooperate on one batch; results
are bit-identical to a serial ``solve_many`` because spec construction
and the solvers are deterministic.

Start one from the shell with ``python -m repro.cluster worker`` or
in-process via :func:`run_worker`; :func:`spawn_local_workers` launches a
pool of subprocess workers for single-host scale-out and tests.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.cluster.queue import ClaimedTask, WorkQueue
from repro.store.report_store import ReportStore
from repro.util.backoff import ExponentialBackoff
from repro.util.errors import ConfigurationError
from repro.util.retry import RetryPolicy


def _default_worker_id() -> str:
    return f"{os.uname().nodename if hasattr(os, 'uname') else 'host'}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class _Heartbeat:
    """Renews the lease on one claimed task from a daemon thread.

    Started when the solve begins, stopped when it ends: a solve that
    outlives ``lease_seconds`` keeps its lease fresh (renewal every
    third of the window leaves two chances before expiry), so the task
    is never concurrently re-executed by another worker — the
    double-execution bug the lease window used to cause.  When renewal
    reports lost ownership the beat stops and sets :attr:`lost`; the
    solve keeps running (its store put is still valuable and its
    ``complete`` is an idempotent no-op).
    """

    def __init__(self, queue: WorkQueue, task: ClaimedTask, interval: float) -> None:
        self._queue = queue
        self._task = task
        self._interval = interval
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{task.name}", daemon=True
        )

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                if not self._queue.renew(self._task):
                    self.lost = True
                    return
            except OSError:
                # A transient renew failure is survivable: the lease has
                # at least two-thirds of a window of slack, so just try
                # again next beat.
                continue

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_worker(
    queue: Union[str, Path, WorkQueue],
    store: Union[str, Path, ReportStore],
    worker_id: Optional[str] = None,
    shard: Optional[int] = None,
    poll_seconds: float = 0.2,
    max_tasks: Optional[int] = None,
    exit_when_empty: bool = False,
    lease_seconds: Optional[float] = None,
    relay: Optional[Union[str, Path]] = None,
    trace_dir: Optional[Union[str, Path]] = None,
    heartbeat: bool = True,
    max_attempts: Optional[int] = None,
) -> Dict[str, int]:
    """Drain tasks from ``queue`` into ``store`` until told to stop.

    Parameters
    ----------
    queue, store:
        The shared work queue and report store (paths are opened).
    worker_id:
        Lease owner label; defaults to ``<host>-<pid>-<nonce>``.
    shard:
        Restrict claims to one shard (cooperating workers may also run
        unpinned and claim anything).
    poll_seconds:
        Idle-poll *floor* between empty claim scans.  Consecutive empty
        scans back off exponentially (capped) so idle workers do not
        burn CPU; any claimed task resets the interval to the floor.
    max_tasks:
        Stop after completing this many tasks (``None`` = unbounded).
    exit_when_empty:
        Return once the queue is fully drained (pending and claimed both
        empty) instead of polling forever — the batch-mode contract used
        by ``python -m repro.cluster drain``.
    relay:
        Directory of a :class:`repro.serve.relay.EventRelay`.  When set,
        each solve streams its live engine events into the relay's
        per-run JSONL channel (keyed on the task's canonical key) and
        finishes the channel with an end marker — the bridge the serve
        layer's SSE endpoint tails, letting clients watch a solve that
        executes in *this* process from the server process.
    trace_dir:
        When set, every task's solve runs under a fresh
        :class:`repro.obs.tracing.Tracer` and its span tree is written to
        ``<trace_dir>/<canonical_key>.trace.json`` — one Chrome
        trace-event file per run, next to the relay channels in spirit.
        Stitch multi-worker runs with ``python -m repro.obs merge``.
    heartbeat:
        Renew the lease of the task being solved every third of the
        lease window (default on).  Turn off only to reproduce the
        pre-heartbeat lapse behaviour in tests.
    max_attempts:
        Forwarded to the :class:`WorkQueue` constructor when ``queue``
        is a path (ignored — must be ``None`` or equal — when a live
        queue object is passed): how many lease expiries dead-letter a
        poison task.

    Returns counters: tasks completed, reports solved live, store hits.
    """
    if poll_seconds <= 0:
        raise ConfigurationError(f"poll_seconds must be positive, got {poll_seconds}")
    if isinstance(queue, WorkQueue):
        if lease_seconds is not None and lease_seconds != queue.lease_seconds:
            raise ConfigurationError(
                "lease_seconds conflicts with the passed WorkQueue's "
                f"({lease_seconds} vs {queue.lease_seconds}); configure it "
                "on the queue instead"
            )
        if max_attempts is not None and max_attempts != queue.max_attempts:
            raise ConfigurationError(
                "max_attempts conflicts with the passed WorkQueue's "
                f"({max_attempts} vs {queue.max_attempts}); configure it "
                "on the queue instead"
            )
    else:
        kwargs = {}
        if lease_seconds is not None:
            kwargs["lease_seconds"] = lease_seconds
        if max_attempts is not None:
            kwargs["max_attempts"] = max_attempts
        queue = WorkQueue(queue, **kwargs)
    if not isinstance(store, ReportStore):
        store = ReportStore(store)
    worker_id = worker_id or _default_worker_id()

    from repro.api.service import solve  # deferred: keep worker import light

    event_relay = None
    if relay is not None:
        # Deferred too: the relay lives in the serve layer, and workers
        # without telemetry streaming must not pull it in.
        from repro.serve.relay import EventRelay

        event_relay = relay if isinstance(relay, EventRelay) else EventRelay(relay)

    stats = {"completed": 0, "solved": 0, "store_hits": 0, "failed": 0}
    backoff = ExponentialBackoff(poll_seconds)
    # Transient filesystem errors during the scan/claim phase (injected
    # or real) retry in place; a failure that outlives its retries is
    # treated like an empty poll rather than killing the worker.
    claim_retry = RetryPolicy(
        max_attempts=4,
        floor=min(poll_seconds, 0.05),
        cap=1.0,
        surface="worker.claim",
    )
    while True:
        try:
            claim_retry.call(queue.requeue_expired)
            task = claim_retry.call(queue.claim, worker_id, shard=shard)
        except OSError:
            backoff.sleep()
            continue
        if task is None:
            if exit_when_empty and queue.is_drained():
                break
            backoff.sleep()
            continue
        backoff.reset()
        writer = (
            event_relay.open_writer(task.key) if event_relay is not None else None
        )
        trace_path = (
            Path(trace_dir) / f"{task.key}.trace.json"
            if trace_dir is not None
            else None
        )
        beat = (
            _Heartbeat(queue, task, interval=queue.lease_seconds / 3.0).start()
            if heartbeat
            else None
        )
        try:
            try:
                report = solve(
                    task.spec, store=store, on_event=writer, trace=trace_path
                )
            except Exception as exc:  # noqa: BLE001 - one bad spec must not kill the worker
                # Solves are deterministic, so retrying would crash the
                # next worker too: dead-letter the task and keep draining.
                error = f"{type(exc).__name__}: {exc}"
                if writer is not None:
                    writer.finish("failed", error=error)
                queue.fail(task, error)
                stats["failed"] += 1
                continue
        finally:
            if beat is not None:
                beat.stop()
        if writer is not None:
            # End marker *after* the store put inside solve(): a tailer
            # that sees "end" can rely on the report being fetchable.
            writer.finish("done", cached=report.cached)
        if report.cached:
            stats["store_hits"] += 1
        else:
            stats["solved"] += 1
        queue.complete(task)
        stats["completed"] += 1
        if max_tasks is not None and stats["completed"] >= max_tasks:
            break
    return stats


def worker_command(
    queue_root: Union[str, Path],
    store_root: Union[str, Path],
    shard: Optional[int] = None,
    poll_seconds: float = 0.2,
    exit_when_empty: bool = True,
    lease_seconds: Optional[float] = None,
    jobs: Optional[int] = None,
    relay_root: Optional[Union[str, Path]] = None,
    trace_dir: Optional[Union[str, Path]] = None,
) -> List[str]:
    """The ``python -m repro.cluster worker`` argv for these settings."""
    cmd = [
        sys.executable,
        "-m",
        "repro.cluster",
        "worker",
        "--queue",
        str(queue_root),
        "--store",
        str(store_root),
        "--poll",
        str(poll_seconds),
    ]
    if shard is not None:
        cmd.extend(["--shard", str(shard)])
    if exit_when_empty:
        cmd.append("--exit-when-empty")
    if lease_seconds is not None:
        cmd.extend(["--lease", str(lease_seconds)])
    if jobs is not None:
        cmd.extend(["--jobs", str(jobs)])
    if relay_root is not None:
        cmd.extend(["--relay", str(relay_root)])
    if trace_dir is not None:
        cmd.extend(["--trace-dir", str(trace_dir)])
    return cmd


@contextmanager
def spawn_local_workers(
    num_workers: int,
    queue_root: Union[str, Path],
    store_root: Union[str, Path],
    pin_shards: bool = False,
    poll_seconds: float = 0.1,
    exit_when_empty: bool = True,
    lease_seconds: Optional[float] = None,
    shutdown_timeout: Optional[float] = None,
    relay_root: Optional[Union[str, Path]] = None,
) -> Iterator[List[subprocess.Popen]]:
    """Run ``num_workers`` subprocess workers against one queue + store.

    With ``pin_shards`` every worker claims only its own shard
    (``shard=i`` of ``num_workers``); otherwise all workers compete for
    any task.  On exit the workers are waited for (batch mode) or
    terminated (polling mode); ``shutdown_timeout`` bounds the batch-mode
    wait — a reused queue may hold *foreign* pending tasks the workers
    would otherwise keep draining long after the caller's batch is done
    — after which the workers are terminated (their claimed tasks requeue
    via lease expiry).
    """
    if num_workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    procs: List[subprocess.Popen] = []
    try:
        for index in range(num_workers):
            cmd = worker_command(
                queue_root,
                store_root,
                shard=index if pin_shards else None,
                poll_seconds=poll_seconds,
                exit_when_empty=exit_when_empty,
                lease_seconds=lease_seconds,
                relay_root=relay_root,
            )
            procs.append(subprocess.Popen(cmd, env=env))
        yield procs
    except BaseException:
        # The gather failed (timeout, dead-lettered spec, interrupt):
        # waiting for a batch-mode worker to finish draining would hold
        # the caller long past its own deadline — kill them instead.
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
                proc.wait()
        raise
    else:
        for proc in procs:
            if exit_when_empty:
                try:
                    proc.wait(timeout=shutdown_timeout)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    proc.wait()
            elif proc.poll() is None:
                proc.terminate()
                proc.wait()
