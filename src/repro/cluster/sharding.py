"""Deterministic canonical-key sharding.

A :attr:`~repro.api.specs.ScenarioSpec.canonical_key` is a SHA-256 hex
digest — already uniformly distributed — so shard assignment is a plain
modulus over its leading bits.  The assignment is stable across
processes, hosts and Python versions (no ``hash()`` randomisation), which
is what lets independent workers agree on ownership with no coordinator.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.api.specs import ScenarioSpec
from repro.util.errors import ConfigurationError

# 60 bits of the digest: plenty for uniformity, still a cheap int.
_SHARD_HEX_DIGITS = 15


def shard_of(canonical_key: str, num_shards: int) -> int:
    """The shard (``0 <= shard < num_shards``) owning a canonical key."""
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    try:
        prefix = int(canonical_key[:_SHARD_HEX_DIGITS], 16)
    except ValueError:
        raise ConfigurationError(
            f"canonical key must be a hex digest, got {canonical_key!r}"
        ) from None
    return prefix % num_shards


def partition_specs(
    specs: Sequence[ScenarioSpec], num_shards: int
) -> Dict[int, List[ScenarioSpec]]:
    """Group specs by owning shard (every shard present, possibly empty)."""
    shards: Dict[int, List[ScenarioSpec]] = {s: [] for s in range(num_shards)}
    for spec in specs:
        shards[shard_of(spec.canonical_key, num_shards)].append(spec)
    return shards
