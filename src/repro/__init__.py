"""repro — reproduction of Cui, Li & Nahrstedt (SPAA 2004).

"On Achieving Optimized Capacity Utilization in Application Overlay
Networks with Multiple Competing Sessions."

The package models multi-tree overlay multicast with multiple competing
sessions as a multicommodity flow over overlay spanning trees and provides

* the **MaxFlow** and **MaxConcurrentFlow** FPTAS solvers (throughput
  maximisation and weighted max-min fairness),
* the **Random-MinCongestion** and **Online-MinCongestion** practical
  algorithms for the tree-limited (unsplittable) setting,
* both **fixed IP routing** and **arbitrary dynamic routing** overlay
  models,
* the topology, routing, and metrics substrates the paper's evaluation
  depends on, and
* an experiment harness that regenerates every table and figure of the
  paper's evaluation section.

Quickstart
----------
>>> from repro import (paper_flat_topology, FixedIPRouting, Session,
...                    solve_max_flow)
>>> net = paper_flat_topology(num_nodes=40, seed=7)
>>> routing = FixedIPRouting(net)
>>> sessions = [Session((0, 3, 9, 17), demand=100.0)]
>>> solution = solve_max_flow(sessions, routing, approximation_ratio=0.9)
>>> solution.overall_throughput > 0
True
"""

from repro.topology import (
    PhysicalNetwork,
    waxman_topology,
    barabasi_albert_topology,
    two_level_topology,
    paper_flat_topology,
    paper_two_level_topology,
    grid_topology,
    ring_topology,
    complete_topology,
)
from repro.routing import FixedIPRouting, DynamicRouting, UnicastPath
from repro.overlay import (
    Session,
    OverlayTree,
    MinimumOverlayTreeOracle,
    random_session,
    random_sessions,
)
from repro.core import (
    MaxFlow,
    MaxFlowConfig,
    MaxConcurrentFlow,
    MaxConcurrentFlowConfig,
    OnlineMinCongestion,
    OnlineConfig,
    RandomMinCongestion,
    FlowSolution,
    SessionResult,
    TreeFlow,
    LengthFunction,
    make_routing,
    solve_max_flow,
    solve_max_concurrent_flow,
    solve_online,
    solve_randomized_rounding,
    standalone_session_rates,
)

__version__ = "1.0.0"

__all__ = [
    "PhysicalNetwork",
    "waxman_topology",
    "barabasi_albert_topology",
    "two_level_topology",
    "paper_flat_topology",
    "paper_two_level_topology",
    "grid_topology",
    "ring_topology",
    "complete_topology",
    "FixedIPRouting",
    "DynamicRouting",
    "UnicastPath",
    "Session",
    "OverlayTree",
    "MinimumOverlayTreeOracle",
    "random_session",
    "random_sessions",
    "MaxFlow",
    "MaxFlowConfig",
    "MaxConcurrentFlow",
    "MaxConcurrentFlowConfig",
    "OnlineMinCongestion",
    "OnlineConfig",
    "RandomMinCongestion",
    "FlowSolution",
    "SessionResult",
    "TreeFlow",
    "LengthFunction",
    "make_routing",
    "solve_max_flow",
    "solve_max_concurrent_flow",
    "solve_online",
    "solve_randomized_rounding",
    "standalone_session_rates",
    "__version__",
]
