"""repro — reproduction of Cui, Li & Nahrstedt (SPAA 2004).

"On Achieving Optimized Capacity Utilization in Application Overlay
Networks with Multiple Competing Sessions."

The package models multi-tree overlay multicast with multiple competing
sessions as a multicommodity flow over overlay spanning trees and provides

* the **MaxFlow** and **MaxConcurrentFlow** FPTAS solvers (throughput
  maximisation and weighted max-min fairness),
* the **Random-MinCongestion** and **Online-MinCongestion** practical
  algorithms for the tree-limited (unsplittable) setting,
* both **fixed IP routing** and **arbitrary dynamic routing** overlay
  models,
* the topology, routing, and metrics substrates the paper's evaluation
  depends on,
* an experiment harness that regenerates every table and figure of the
  paper's evaluation section, and
* the **Scenario API** (:mod:`repro.api`) — declarative JSON specs, a
  solver/routing/topology registry open to plugins, and a cached,
  process-parallel batch solve service with a ``python -m repro.api``
  CLI.  New code should start there.
* the **persistent report store** (:mod:`repro.store`) — a
  content-addressed on-disk cache keyed on spec ``canonical_key``s, so
  solved scenarios survive across processes (``REPRO_STORE`` /
  ``store=``), and
* the **cluster layer** (:mod:`repro.cluster`) — canonical-key
  sharding, a crash-safe file-backed work queue drained by independent
  ``python -m repro.cluster worker`` processes, and an asyncio front
  end streaming reports as they complete.

Quickstart
----------
>>> from repro.api import ScenarioSpec, TopologySpec, WorkloadSpec, solve
>>> spec = ScenarioSpec(
...     topology=TopologySpec("paper_flat", {"num_nodes": 40}, seed=7),
...     workload=WorkloadSpec(sizes=(4,), demand=100.0, seed=3),
...     solver="max_flow",
...     solver_params={"approximation_ratio": 0.9},
... )
>>> solve(spec).solution.overall_throughput > 0
True
"""

from repro.topology import (
    PhysicalNetwork,
    waxman_topology,
    barabasi_albert_topology,
    two_level_topology,
    paper_flat_topology,
    paper_two_level_topology,
    grid_topology,
    ring_topology,
    complete_topology,
)
from repro.routing import FixedIPRouting, DynamicRouting, UnicastPath
from repro.overlay import (
    Session,
    OverlayTree,
    MinimumOverlayTreeOracle,
    random_session,
    random_sessions,
)
from repro.core import (
    MaxFlow,
    MaxFlowConfig,
    MaxConcurrentFlow,
    MaxConcurrentFlowConfig,
    OnlineMinCongestion,
    OnlineConfig,
    RandomMinCongestion,
    FlowSolution,
    SessionResult,
    TreeFlow,
    LengthFunction,
    make_routing,
    solve_max_flow,
    solve_max_concurrent_flow,
    solve_online,
    solve_randomized_rounding,
    standalone_session_rates,
)
from repro.api import (
    Registry,
    ScenarioSpec,
    SessionSpec,
    SolveReport,
    TopologySpec,
    WorkloadSpec,
    default_registry,
    register_routing,
    register_solver,
    register_topology,
    solve,
    solve_instance,
    solve_many,
)

__version__ = "1.1.0"

__all__ = [
    "PhysicalNetwork",
    "waxman_topology",
    "barabasi_albert_topology",
    "two_level_topology",
    "paper_flat_topology",
    "paper_two_level_topology",
    "grid_topology",
    "ring_topology",
    "complete_topology",
    "FixedIPRouting",
    "DynamicRouting",
    "UnicastPath",
    "Session",
    "OverlayTree",
    "MinimumOverlayTreeOracle",
    "random_session",
    "random_sessions",
    "MaxFlow",
    "MaxFlowConfig",
    "MaxConcurrentFlow",
    "MaxConcurrentFlowConfig",
    "OnlineMinCongestion",
    "OnlineConfig",
    "RandomMinCongestion",
    "FlowSolution",
    "SessionResult",
    "TreeFlow",
    "LengthFunction",
    "make_routing",
    "solve_max_flow",
    "solve_max_concurrent_flow",
    "solve_online",
    "solve_randomized_rounding",
    "standalone_session_rates",
    "Registry",
    "default_registry",
    "register_topology",
    "register_routing",
    "register_solver",
    "TopologySpec",
    "SessionSpec",
    "WorkloadSpec",
    "ScenarioSpec",
    "SolveReport",
    "solve",
    "solve_instance",
    "solve_many",
    "__version__",
]
