"""A persistent, content-addressed store for solved reports.

:class:`ReportStore` spills :class:`repro.api.service.SolveReport`s to
disk keyed on :attr:`repro.api.specs.ScenarioSpec.canonical_key`, so
repeated CLI runs, batch sweeps and cooperating worker processes skip
every spec that has already been solved — anywhere, ever — instead of
only within one process's report cache.

Design
------
* **Content addressing.**  An entry's path is derived from its canonical
  key alone (``objects/<key[:2]>/<key>.json[.gz]``), so ``get`` and
  ``contains`` never need the index and multiple processes share one
  store with no coordination.
* **Atomic writes.**  Payloads are written tmp-file-then-rename
  (:func:`repro.util.serialization.atomic_write_bytes`), so a reader
  never sees a torn entry and two concurrent writers of the same key
  each land a complete file (last writer wins; both wrote the same
  deterministic report).
* **Corruption detection.**  Each payload is an envelope carrying a
  SHA-256 of its canonical report JSON.  ``get`` verifies the digest and
  the schema; a corrupt entry is quarantined (deleted) and reported as a
  miss, so the caller falls back to re-solving and the next ``put``
  heals the store.
* **Index.**  ``index.jsonl`` accumulates one schema-versioned JSON line
  per put — provenance and bookkeeping for ``stats``/``prune``.  It is
  advisory: lookups go through the content-addressed path, so a torn or
  missing index line never loses data.
* **LRU front.**  A small in-memory map of live reports serves repeated
  gets in one process without re-reading and re-building solutions.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.util.errors import ConfigurationError, ReproError
from repro.util.retry import DEFAULT_NON_RETRYABLE, RetryPolicy
from repro.util.serialization import atomic_write_bytes, canonical_json, read_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service imports us)
    from repro.api.service import SolveReport

STORE_ENV_VAR = "REPRO_STORE"
ENTRY_SCHEMA = "ReportStoreEntry/v1"
INDEX_SCHEMA = "ReportStoreIndex/v1"

StoreLike = Union[None, str, Path, "ReportStore"]

# Crash seams the fault-injection sweep enumerates (see repro.faults).
# store.put.{write,rename,publish} are derived inside atomic_write_bytes
# from the fault_point passed by put().
faults.declare_point("store.put.write", "payload bytes of a report put")
faults.declare_point("store.put.rename", "before the put's atomic rename")
faults.declare_point("store.put.publish", "after the rename, before the index append")
faults.declare_point("store.put.index", "before the advisory index append")
faults.declare_point("store.get.read", "reading an entry's bytes")


def _canonical_bytes(data: Any) -> bytes:
    """Deterministic JSON bytes (the repo-wide canonical encoding)."""
    return canonical_json(data).encode("utf-8")


def _lookup_counter(outcome: str):
    return obs_metrics.registry().counter(
        "repro_store_lookups_total",
        "Report-store lookups by outcome",
        labels={"outcome": outcome},
    )


class ReportStore:
    """Content-addressed on-disk cache of solved reports.

    Parameters
    ----------
    root:
        Store directory (created on first use).
    compress:
        Gzip new payloads.  Reading is always format-agnostic — a store
        may hold a mix of plain and gzipped entries.
    memory_entries:
        Capacity of the in-memory LRU front (0 disables it).
    durable:
        fsync puts (temp file + parent directory around the rename) so a
        published entry survives power loss, not just process death.
        Default on; turn off for throwaway stores in tight loops.
    """

    def __init__(
        self,
        root: Union[str, Path],
        compress: bool = False,
        memory_entries: int = 128,
        durable: bool = True,
    ) -> None:
        self.root = Path(root)
        self.compress = bool(compress)
        self.durable = bool(durable)
        if memory_entries < 0:
            raise ConfigurationError(
                f"memory_entries must be >= 0, got {memory_entries}"
            )
        self._memory_entries = int(memory_entries)
        self._memory: "OrderedDict[str, SolveReport]" = OrderedDict()
        # One lock guards the LRU front and the hit/miss/corrupt
        # counters: gets run concurrently on serve worker threads, and
        # unguarded `+= 1` / OrderedDict mutation would tear.  Disk I/O
        # happens outside the lock (atomic writes make that safe).
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        # Transient read blips (NFS hiccups, injected OSErrors) are
        # retried before an entry is declared missing; corruption is a
        # *verification* verdict, never an I/O one, so a flaky read can
        # no longer delete good data (see _load_entry).
        self._read_retry = RetryPolicy(
            max_attempts=3,
            floor=0.02,
            cap=0.25,
            surface="store.get",
            non_retryable=DEFAULT_NON_RETRYABLE + (gzip.BadGzipFile,),
        )

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def _objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def _index_path(self) -> Path:
        return self.root / "index.jsonl"

    def _object_path(self, key: str, gz: bool) -> Path:
        suffix = ".json.gz" if gz else ".json"
        return self._objects_dir / key[:2] / f"{key}{suffix}"

    def _find_object(self, key: str) -> Optional[Path]:
        for gz in (self.compress, not self.compress):  # likely format first
            path = self._object_path(key, gz)
            if path.exists():
                return path
        return None

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """Whether a (possibly unverified) entry for ``key`` is on disk."""
        return key in self._memory or self._find_object(key) is not None

    def put(self, report: "SolveReport") -> Path:
        """Persist ``report`` under its canonical key; returns the entry path.

        The stored report is normalised to ``cached=False`` so that a
        report's bytes depend only on the solved spec, not on which cache
        layer happened to serve it to the writer.
        """
        started = time.perf_counter()
        key = report.canonical_key
        if report.cached:
            # Normalise the object itself, not just the payload, so the
            # memory front and the disk entry agree on what they serve.
            report = dataclasses.replace(report, cached=False)
        payload = report.to_jsonable()
        report_bytes = _canonical_bytes(payload)
        envelope = _canonical_bytes(
            {
                "schema": ENTRY_SCHEMA,
                "key": key,
                "sha256": hashlib.sha256(report_bytes).hexdigest(),
                "report": payload,
            }
        )
        data = gzip.compress(envelope) if self.compress else envelope
        path = atomic_write_bytes(
            self._object_path(key, self.compress),
            data,
            durable=self.durable,
            fault_point="store.put",
        )
        faults.point("store.put.index")
        self._append_index(key, path, len(data))
        self._remember(key, report)
        reg = obs_metrics.registry()
        reg.counter("repro_store_puts_total", "Reports persisted").inc()
        reg.histogram(
            "repro_store_put_seconds", "Report persist latency (seconds)"
        ).observe(time.perf_counter() - started)
        return path

    def get(self, key: str) -> Optional["SolveReport"]:
        """Fetch and verify the report stored under ``key``.

        Returns ``None`` — and quarantines the entry — when the entry is
        missing, unreadable, schema-mismatched or fails its digest check,
        so callers always fall back to a fresh solve.
        """
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.hits += 1
                report = self._memory[key]
                _lookup_counter("hit").inc()
                return report
        path = self._find_object(key)
        if path is None:
            with self._lock:
                self.misses += 1
            _lookup_counter("miss").inc()
            return None
        report = self._load_entry(key, path)
        if report is None:
            with self._lock:
                self.misses += 1
            _lookup_counter("miss").inc()
            return None
        with self._lock:
            self.hits += 1
        _lookup_counter("hit").inc()
        self._remember(key, report)
        return report

    def _read_entry(self, path: Path) -> bytes:
        faults.point("store.get.read")
        return read_bytes(path)

    def _load_entry(self, key: str, path: Path) -> Optional["SolveReport"]:
        from repro.api.service import SolveReport

        try:
            raw = self._read_retry.call(self._read_entry, path)
        except FileNotFoundError:
            # Raced with prune/quarantine in another process: plain miss.
            return None
        except (gzip.BadGzipFile, EOFError):
            # Truncated or garbled gzip stream — the bytes themselves are
            # bad, so this is corruption, not a flaky read.
            return self._condemn(path)
        except OSError:
            # A transient read failure that outlived its retries.  The
            # entry may be perfectly fine — deleting it would turn an
            # I/O blip into data loss — so degrade to a miss and leave
            # the file for the next reader.
            return None
        try:
            envelope = json.loads(raw.decode("utf-8"))
            if (
                envelope.get("schema") != ENTRY_SCHEMA
                or envelope.get("key") != key
            ):
                raise ValueError("entry schema/key mismatch")
            report_payload = envelope["report"]
            digest = hashlib.sha256(_canonical_bytes(report_payload)).hexdigest()
            if digest != envelope.get("sha256"):
                raise ValueError("entry digest mismatch")
            return SolveReport.from_jsonable(report_payload)
        except (ValueError, KeyError, TypeError, ReproError):
            # ReproError covers reconstruction failures from the repo's
            # own layers (schema mismatch, invalid spec/session data) —
            # every flavour of bad entry must degrade to a miss, never
            # propagate to callers that promised to fall back to a solve.
            return self._condemn(path)

    def _condemn(self, path: Path) -> None:
        """Count and quarantine a verified-corrupt entry; returns None."""
        with self._lock:
            self.corrupt += 1
        obs_metrics.registry().counter(
            "repro_store_quarantines_total",
            "Corrupt entries quarantined on read",
        ).inc()
        self._quarantine(path)
        return None

    def _quarantine(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _remember(self, key: str, report: "SolveReport") -> None:
        if self._memory_entries == 0:
            return
        with self._lock:
            self._memory[key] = report
            self._memory.move_to_end(key)
            while len(self._memory) > self._memory_entries:
                self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    # index, stats and pruning
    # ------------------------------------------------------------------
    def _append_index(self, key: str, path: Path, num_bytes: int) -> None:
        line = _canonical_bytes(
            {
                "schema": INDEX_SCHEMA,
                "key": key,
                "file": str(path.relative_to(self.root)),
                "gzip": path.suffix == ".gz",
                "bytes": num_bytes,
                "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            }
        ) + b"\n"
        self.root.mkdir(parents=True, exist_ok=True)
        # O_APPEND + one small write: concurrent putters each land a
        # whole line in practice; a torn line is skipped on read and the
        # object file (the source of truth) is unaffected.
        with self._index_path.open("ab") as fh:
            fh.write(line)

    def index_entries(self) -> List[Dict[str, Any]]:
        """Parse the JSONL index, skipping torn/foreign lines."""
        if not self._index_path.exists():
            return []
        entries: List[Dict[str, Any]] = []
        with self._index_path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(entry, dict) and entry.get("schema") == INDEX_SCHEMA:
                    entries.append(entry)
        return entries

    def _disk_entries(self) -> List[Path]:
        if not self._objects_dir.exists():
            return []
        return sorted(
            p
            for p in self._objects_dir.glob("*/*")
            if p.suffix == ".json" or p.name.endswith(".json.gz")
        )

    def stats(self) -> Dict[str, int]:
        """Store counters: disk entries/bytes, memory front, hit/miss/corrupt."""
        paths = self._disk_entries()
        total = 0
        for p in paths:
            try:
                total += p.stat().st_size
            except OSError:
                pass
        with self._lock:
            memory_entries = len(self._memory)
            hits, misses, corrupt = self.hits, self.misses, self.corrupt
        return {
            "entries": len(paths),
            "bytes": total,
            "index_lines": len(self.index_entries()),
            "memory_entries": memory_entries,
            "hits": hits,
            "misses": misses,
            "corrupt": corrupt,
        }

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ) -> int:
        """Delete entries beyond ``max_entries`` (oldest-first) or older
        than ``max_age_seconds``; returns the number removed.

        The index is compacted to the surviving entries so it does not
        grow without bound across put/prune cycles.
        """
        if max_entries is not None and max_entries < 0:
            raise ConfigurationError(f"max_entries must be >= 0, got {max_entries}")
        paths = self._disk_entries()
        stamped = []
        for p in paths:
            try:
                stamped.append((p.stat().st_mtime, p))
            except OSError:
                continue
        stamped.sort()  # oldest first
        doomed: set = set()
        if max_age_seconds is not None:
            cutoff = time.time() - max_age_seconds
            doomed.update(p for mtime, p in stamped if mtime < cutoff)
        if max_entries is not None and len(stamped) - len(doomed) > max_entries:
            survivors = [(m, p) for m, p in stamped if p not in doomed]
            excess = len(survivors) - max_entries
            doomed.update(p for _, p in survivors[:excess])
        removed_keys = set()
        for path in doomed:
            removed_keys.add(path.name.split(".")[0])
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            for key in removed_keys:
                self._memory.pop(key, None)
        self._compact_index()
        return len(doomed)

    def _compact_index(self) -> None:
        """Rewrite the index to one line per surviving disk entry."""
        survivors = {p.name.split(".")[0] for p in self._disk_entries()}
        latest: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        for entry in self.index_entries():
            key = entry.get("key")
            if key in survivors:
                latest[key] = entry  # last write wins
        data = b"".join(_canonical_bytes(e) + b"\n" for e in latest.values())
        atomic_write_bytes(self._index_path, data)

    def clear_memory(self) -> None:
        """Drop the in-memory LRU front (disk entries are untouched)."""
        with self._lock:
            self._memory.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReportStore({str(self.root)!r}, compress={self.compress})"


_env_stores: Dict[str, ReportStore] = {}


def resolve_store(store: StoreLike) -> Optional[ReportStore]:
    """Coerce a ``store=`` argument into a :class:`ReportStore` (or None).

    ``None`` consults the ``REPRO_STORE`` environment variable — set it
    to a directory path to make every ``solve``/``solve_many`` in the
    process persistent without touching call sites.  The env-resolved
    store is memoized per path, so its in-memory LRU front and counters
    accumulate across calls instead of resetting on every resolve.
    Strings and paths open a store at that location; an existing store
    passes through.
    """
    if isinstance(store, ReportStore):
        return store
    if store is None:
        env = os.environ.get(STORE_ENV_VAR)
        if not env:
            return None
        if env not in _env_stores:
            _env_stores[env] = ReportStore(env)
        return _env_stores[env]
    return ReportStore(store)
