"""repro.store — persistent, content-addressed result storage.

The store turns the in-process report cache of :mod:`repro.api.service`
into durable state: reports are spilled to disk keyed on
:attr:`repro.api.specs.ScenarioSpec.canonical_key`, so repeated CLI
invocations, experiment re-runs and independent worker processes
(:mod:`repro.cluster`) all share one solved-spec universe.

Opt in per call (``solve_many(specs, store="runs/store")``) or
process-wide (``REPRO_STORE=runs/store``); inspect and trim from the
CLI (``python -m repro.api cache stats|prune --store runs/store``).
"""

from repro.store.report_store import (
    ENTRY_SCHEMA,
    INDEX_SCHEMA,
    STORE_ENV_VAR,
    ReportStore,
    resolve_store,
)

__all__ = [
    "ReportStore",
    "resolve_store",
    "STORE_ENV_VAR",
    "ENTRY_SCHEMA",
    "INDEX_SCHEMA",
]
