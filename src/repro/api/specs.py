"""Declarative, JSON-round-trippable problem specifications.

A :class:`ScenarioSpec` names a complete problem — topology, workload,
routing model, solver and solver parameters — without constructing any of
them.  Specs are plain frozen dataclasses built from primitives, so they

* serialize to JSON (``to_jsonable`` / ``to_json``) and come back
  (``from_jsonable`` / ``from_json``) bit-identically,
* have a :attr:`ScenarioSpec.canonical_key` — a stable digest suitable
  for caching, sharding and deduplication, and
* can be shipped across process (or machine) boundaries and rebuilt into
  live objects through the :mod:`repro.api.registry`.

Construction is deterministic: the same spec always builds the same
network, the same sessions and the same routing model, which is what
makes the ``canonical_key`` a cache key rather than just a label.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.overlay.session import Session, random_session
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng
from repro.util.serialization import from_jsonable, to_jsonable


def _canonical_json(data: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


class _SpecBase:
    """Shared JSON plumbing for the spec dataclasses."""

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON representation (dicts/lists/primitives only)."""
        return to_jsonable(self)

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON string representation."""
        if indent is None:
            return _canonical_json(self.to_jsonable())
        return json.dumps(self.to_jsonable(), sort_keys=True, indent=indent)

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]):
        """Rebuild a spec from :meth:`to_jsonable` output."""
        return from_jsonable(cls, data)

    @classmethod
    def from_json(cls, text: str):
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_jsonable(json.loads(text))

    @property
    def canonical_key(self) -> str:
        """Stable content digest of this spec (cache/shard/dedupe key)."""
        digest = hashlib.sha256(
            _canonical_json(self.to_jsonable()).encode("utf-8")
        ).hexdigest()
        return digest


@dataclass(frozen=True)
class TopologySpec(_SpecBase):
    """A named topology generator plus its parameters and seed.

    Attributes
    ----------
    generator:
        Registry name of the generator (``"paper_flat"``, ``"waxman"``,
        ``"paper_two_level"``, ``"grid"``, ...).
    params:
        Keyword arguments forwarded to the generator.
    seed:
        Seed forwarded as ``seed=`` when not ``None``.  Deterministic
        generators (grid/ring/complete) take no seed; leave it ``None``.
    """

    generator: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.generator:
            raise ConfigurationError("topology generator name must be non-empty")
        object.__setattr__(self, "params", dict(self.params))

    def build(self, registry=None) -> PhysicalNetwork:
        """Construct the physical network this spec describes."""
        from repro.api.registry import default_registry

        reg = registry or default_registry()
        generator = reg.topology(self.generator)
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return generator(**kwargs)


@dataclass(frozen=True)
class SessionSpec(_SpecBase):
    """An explicitly-placed overlay session (mirrors :class:`Session`)."""

    members: Tuple[int, ...]
    demand: float = 1.0
    source: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(int(m) for m in self.members))

    def build(self) -> Session:
        """Construct the live :class:`Session`."""
        return Session(
            self.members, demand=self.demand, source=self.source, name=self.name
        )

    @classmethod
    def of(cls, session: Session) -> "SessionSpec":
        """The spec describing an existing session."""
        return cls(
            members=session.members,
            demand=session.demand,
            source=session.source,
            name=session.name,
        )


@dataclass(frozen=True)
class WorkloadSpec(_SpecBase):
    """The sessions placed on a topology.

    Two mutually exclusive modes:

    * **random** — ``sizes`` lists the member count of each session;
      members are drawn from the topology with ``seed`` (one shared RNG
      stream, so the draw order is part of the contract), demands are
      uniform, and sessions are named ``session-1..n``.  This reproduces
      the paper experiments' session construction exactly.
    * **explicit** — ``sessions`` lists fully specified
      :class:`SessionSpec` entries (members, demand, source, name).
    """

    sizes: Tuple[int, ...] = ()
    demand: float = 1.0
    seed: Optional[int] = None
    spread_across_levels: bool = True
    sessions: Tuple[SessionSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
        object.__setattr__(self, "sessions", tuple(self.sessions))
        if bool(self.sizes) == bool(self.sessions):
            raise ConfigurationError(
                "exactly one of sizes (random mode) / sessions (explicit mode) "
                "must be non-empty"
            )

    def build(self, network: PhysicalNetwork) -> List[Session]:
        """Construct the live sessions over ``network``."""
        if self.sessions:
            return [s.build() for s in self.sessions]
        rng = ensure_rng(self.seed)
        return [
            random_session(
                network,
                size,
                demand=self.demand,
                seed=rng,
                name=f"session-{index + 1}",
                spread_across_levels=self.spread_across_levels,
            )
            for index, size in enumerate(self.sizes)
        ]


@dataclass(frozen=True)
class ScenarioSpec(_SpecBase):
    """A complete, serializable problem statement.

    ``solve(spec)`` builds the topology, workload and routing model named
    here, dispatches to the registered solver, and returns a
    :class:`repro.api.service.SolveReport`.

    Attributes
    ----------
    topology:
        What network to build.
    workload:
        What sessions to place on it.
    routing:
        Registry name of the routing model (``"ip"`` or ``"dynamic"``,
        plus their aliases).
    solver:
        Registry name of the solver (``"max_flow"``,
        ``"max_concurrent_flow"``, ``"online"``, ``"randomized_rounding"``,
        or any plugin-registered name).
    solver_params:
        Keyword arguments forwarded to the solver function.
    """

    topology: TopologySpec
    workload: WorkloadSpec
    routing: str = "ip"
    solver: str = "max_flow"
    solver_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.routing:
            raise ConfigurationError("routing name must be non-empty")
        if not self.solver:
            raise ConfigurationError("solver name must be non-empty")
        object.__setattr__(self, "solver_params", dict(self.solver_params))

    def with_solver(self, solver: str, **solver_params: Any) -> "ScenarioSpec":
        """Copy of this scenario with a different solver (shared instance)."""
        return dataclasses.replace(
            self, solver=solver, solver_params=dict(solver_params)
        )

    @property
    def instance_key(self) -> str:
        """Digest of the problem *instance* (topology+workload+routing only).

        Two scenarios that run different solvers over the same instance
        share this key; the batch service uses it to share built networks
        and routing models between them.
        """
        data = {
            "topology": self.topology.to_jsonable(),
            "workload": self.workload.to_jsonable(),
            "routing": self.routing,
        }
        return hashlib.sha256(_canonical_json(data).encode("utf-8")).hexdigest()
