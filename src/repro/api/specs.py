"""Declarative, JSON-round-trippable problem specifications.

A :class:`ScenarioSpec` names a complete problem — topology, workload,
routing model, solver and solver parameters — without constructing any of
them.  Specs are plain frozen dataclasses built from primitives, so they

* serialize to JSON (``to_jsonable`` / ``to_json``) and come back
  (``from_jsonable`` / ``from_json``) bit-identically,
* have a :attr:`ScenarioSpec.canonical_key` — a stable digest suitable
  for caching, sharding and deduplication, and
* can be shipped across process (or machine) boundaries and rebuilt into
  live objects through the :mod:`repro.api.registry`.

Construction is deterministic: the same spec always builds the same
network, the same sessions and the same routing model, which is what
makes the ``canonical_key`` a cache key rather than just a label.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.overlay.session import Session, random_session
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng
from repro.util.serialization import canonical_json as _canonical_json
from repro.util.serialization import from_jsonable, to_jsonable


class _SpecBase:
    """Shared JSON plumbing for the spec dataclasses."""

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON representation (dicts/lists/primitives only)."""
        return to_jsonable(self)

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON string representation."""
        if indent is None:
            return _canonical_json(self.to_jsonable())
        return json.dumps(self.to_jsonable(), sort_keys=True, indent=indent)

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]):
        """Rebuild a spec from :meth:`to_jsonable` output."""
        return from_jsonable(cls, data)

    @classmethod
    def from_json(cls, text: str):
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_jsonable(json.loads(text))

    @property
    def canonical_key(self) -> str:
        """Stable content digest of this spec (cache/shard/dedupe key).

        Memoized on first access (specs are frozen): the store, queue,
        sharding and batch-dedup hot paths all re-read it many times per
        spec.  The cache slot is not a dataclass field, so it never
        enters serialization or equality.
        """
        cached = self.__dict__.get("_canonical_key_cache")
        if cached is None:
            cached = hashlib.sha256(
                _canonical_json(self.to_jsonable()).encode("utf-8")
            ).hexdigest()
            object.__setattr__(self, "_canonical_key_cache", cached)
        return cached

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash trips over dict-typed
        # fields (params/solver_params/demand_distribution); hash the
        # content digest instead so specs work in sets and as dict keys.
        # Consistent with the field-based __eq__: equal specs serialize
        # identically, hence share a canonical key.
        return hash(self.canonical_key)


@dataclass(frozen=True)
class TopologySpec(_SpecBase):
    """A named topology generator plus its parameters and seed.

    Attributes
    ----------
    generator:
        Registry name of the generator (``"paper_flat"``, ``"waxman"``,
        ``"paper_two_level"``, ``"grid"``, ...).
    params:
        Keyword arguments forwarded to the generator.
    seed:
        Seed forwarded as ``seed=`` when not ``None``.  Deterministic
        generators (grid/ring/complete) take no seed; leave it ``None``.
    """

    generator: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.generator:
            raise ConfigurationError("topology generator name must be non-empty")
        object.__setattr__(self, "params", dict(self.params))

    def build(self, registry=None) -> PhysicalNetwork:
        """Construct the physical network this spec describes."""
        from repro.api.registry import default_registry

        reg = registry or default_registry()
        generator = reg.topology(self.generator)
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return generator(**kwargs)


@dataclass(frozen=True)
class SessionSpec(_SpecBase):
    """An explicitly-placed overlay session (mirrors :class:`Session`)."""

    members: Tuple[int, ...]
    demand: float = 1.0
    source: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(int(m) for m in self.members))

    def build(self) -> Session:
        """Construct the live :class:`Session`."""
        return Session(
            self.members, demand=self.demand, source=self.source, name=self.name
        )

    @classmethod
    def of(cls, session: Session) -> "SessionSpec":
        """The spec describing an existing session."""
        return cls(
            members=session.members,
            demand=session.demand,
            source=session.source,
            name=session.name,
        )


@dataclass(frozen=True)
class ArrivalSpec(_SpecBase):
    """The online arrival process: how sessions become an arrival sequence.

    The online algorithm (paper Table VI) routes sessions one at a time
    in arrival order, so the *order* is part of the problem statement.
    Before this spec existed the experiment harness built orderings
    procedurally, which kept online scenarios out of the report store;
    an ``ArrivalSpec`` on a :class:`ScenarioSpec` makes the run fully
    spec-determined — replication, demand override and ordering included
    — so online cells cache, shard and re-run like every offline cell.

    Applied to a workload's session list as:

    1. every session is replicated ``replication`` times (the paper's
       tree-limit experiments route each copy on a single tree), each
       copy carrying ``demand`` when set (else the session's own demand);
    2. the flat replica list (session-major: all copies of session 1,
       then session 2, ...) is permuted by ``order`` when given,
       else by a seeded ``numpy`` permutation when ``seed`` is set,
       else left in place.

    Attributes
    ----------
    replication:
        Copies per logical session (>= 1).  Copies are named
        ``<name>#<i>`` (see :meth:`Session.replicate`) and grouped back
        per member set by the online solver's ``group_by_members``.
    seed:
        Permutation seed for the arrival order.  ``None`` with an empty
        ``order`` means sessions arrive in replication order.
    demand:
        Per-copy demand override; ``None`` keeps each session's demand.
    order:
        Explicit-order escape hatch: a permutation of
        ``range(num_sessions * replication)`` listing replica indices in
        arrival order.  Mutually exclusive with ``seed``.  Two specs
        differing only in ``order`` have different canonical keys — the
        ordering *is* part of the problem.
    """

    replication: int = 1
    seed: Optional[int] = None
    demand: Optional[float] = None
    order: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if int(self.replication) < 1:
            raise ConfigurationError(
                f"replication must be >= 1, got {self.replication}"
            )
        object.__setattr__(self, "replication", int(self.replication))
        object.__setattr__(self, "order", tuple(int(i) for i in self.order))
        if self.order and self.seed is not None:
            raise ConfigurationError(
                "seed and order are mutually exclusive: an explicit order "
                "leaves nothing for the permutation seed to decide"
            )
        if self.order:
            if min(self.order) < 0:
                raise ConfigurationError("order entries must be non-negative")
            if len(set(self.order)) != len(self.order):
                raise ConfigurationError("order must not repeat an index")
        if self.demand is not None and not (
            isinstance(self.demand, (int, float))
            and not isinstance(self.demand, bool)
            and math.isfinite(self.demand)
            and self.demand > 0
        ):
            raise ConfigurationError(
                f"demand override must be a positive finite number, got {self.demand!r}"
            )

    def apply(self, sessions: List[Session]) -> List[Session]:
        """Turn a workload's session list into the arrival sequence."""
        arrivals: List[Session] = []
        for session in sessions:
            arrivals.extend(session.replicate(self.replication, demand=self.demand))
        if self.order:
            if sorted(self.order) != list(range(len(arrivals))):
                raise ConfigurationError(
                    f"order must be a permutation of range({len(arrivals)}) "
                    f"({len(sessions)} sessions x {self.replication} copies), "
                    f"got {len(self.order)} entries"
                )
            return [arrivals[i] for i in self.order]
        if self.seed is not None:
            permutation = ensure_rng(self.seed).permutation(len(arrivals))
            return [arrivals[i] for i in permutation]
        return arrivals


#: Demand-distribution kinds and their required parameters.
_DEMAND_DISTRIBUTIONS: Dict[str, Tuple[str, ...]] = {
    "constant": ("value",),
    "uniform": ("low", "high"),
    "exponential": ("mean",),
}


@dataclass(frozen=True)
class WorkloadSpec(_SpecBase):
    """The sessions placed on a topology.

    Two mutually exclusive modes:

    * **random** — ``sizes`` lists the member count of each session;
      members are drawn from the topology with ``seed`` (one shared RNG
      stream, so the draw order is part of the contract), demands are
      uniform, and sessions are named ``session-1..n``.  This reproduces
      the paper experiments' session construction exactly.
    * **explicit** — ``sessions`` lists fully specified
      :class:`SessionSpec` entries (members, demand, source, name).

    ``demand_distribution`` (random mode only) replaces the uniform
    ``demand`` with one per-session draw from a named distribution::

        {"kind": "uniform", "low": 50.0, "high": 150.0}
        {"kind": "exponential", "mean": 100.0}
        {"kind": "constant", "value": 100.0}

    Demands are drawn from the continuation of the member-placement RNG
    stream *after* all members are placed, so a spec with a distribution
    places exactly the same members as the same spec without one.  The
    default (``None``) is omitted from the JSON form, keeping the
    ``canonical_key`` of every pre-existing spec unchanged.
    """

    sizes: Tuple[int, ...] = ()
    demand: float = 1.0
    seed: Optional[int] = None
    spread_across_levels: bool = True
    sessions: Tuple[SessionSpec, ...] = ()
    demand_distribution: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
        object.__setattr__(self, "sessions", tuple(self.sessions))
        if bool(self.sizes) == bool(self.sessions):
            raise ConfigurationError(
                "exactly one of sizes (random mode) / sessions (explicit mode) "
                "must be non-empty"
            )
        if self.demand_distribution is not None:
            if self.sessions:
                raise ConfigurationError(
                    "demand_distribution applies to random mode only; explicit "
                    "sessions carry their own demands"
                )
            if self.demand != 1.0:
                # The flat demand is unused under a distribution, but it
                # would still enter the canonical key — identical
                # workloads must not get distinct digests.
                raise ConfigurationError(
                    "demand is unused when demand_distribution is set; "
                    "leave it at its default"
                )
            dist = dict(self.demand_distribution)
            kind = dist.get("kind")
            if kind not in _DEMAND_DISTRIBUTIONS:
                raise ConfigurationError(
                    f"unknown demand distribution kind {kind!r}; "
                    f"use one of {sorted(_DEMAND_DISTRIBUTIONS)}"
                )
            expected = {"kind", *_DEMAND_DISTRIBUTIONS[kind]}
            if set(dist) != expected:
                raise ConfigurationError(
                    f"demand distribution {kind!r} takes exactly the fields "
                    f"{sorted(expected)}, got {sorted(dist)}"
                )
            # Validate values here, not at build() time: a bad spec must
            # fail at construction, before it is serialized, queued and
            # dead-lettered by every worker that touches it.
            for field_name in _DEMAND_DISTRIBUTIONS[kind]:
                value = dist[field_name]
                if (
                    isinstance(value, bool)
                    or not isinstance(value, (int, float))
                    or not math.isfinite(value)
                ):
                    # Non-finite values would also poison the canonical
                    # JSON encoding (Infinity/NaN are not standard JSON).
                    raise ConfigurationError(
                        f"demand distribution field {field_name!r} must be a "
                        f"finite number, got {value!r}"
                    )
                dist[field_name] = float(value)
            if kind == "uniform" and not 0 < dist["low"] <= dist["high"]:
                raise ConfigurationError(
                    f"uniform demand distribution needs 0 < low <= high "
                    f"(demands must be positive), got [{dist['low']}, {dist['high']}]"
                )
            if kind == "exponential" and dist["mean"] <= 0:
                raise ConfigurationError(
                    f"exponential demand distribution needs a positive mean, "
                    f"got {dist['mean']}"
                )
            if kind == "constant" and dist["value"] <= 0:
                raise ConfigurationError(
                    f"constant demand distribution needs a positive value, "
                    f"got {dist['value']}"
                )
            object.__setattr__(self, "demand_distribution", dist)

    def __jsonable__(self) -> Dict[str, Any]:
        """JSON shape hook: the default ``demand_distribution`` is
        omitted so pre-existing specs — standalone *or* nested inside a
        :class:`ScenarioSpec` — keep their canonical keys."""
        data = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        if self.demand_distribution is None:
            del data["demand_distribution"]
        return data

    def _draw_demands(self, rng, count: int) -> List[float]:
        dist = self.demand_distribution or {}
        kind = dist["kind"]  # values were validated in __post_init__
        if kind == "constant":
            return [dist["value"]] * count
        if kind == "uniform":
            return [float(d) for d in rng.uniform(dist["low"], dist["high"], size=count)]
        return [float(d) for d in rng.exponential(dist["mean"], size=count)]

    def build(self, network: PhysicalNetwork) -> List[Session]:
        """Construct the live sessions over ``network``."""
        if self.sessions:
            return [s.build() for s in self.sessions]
        rng = ensure_rng(self.seed)
        sessions = [
            random_session(
                network,
                size,
                demand=self.demand,
                seed=rng,
                name=f"session-{index + 1}",
                spread_across_levels=self.spread_across_levels,
            )
            for index, size in enumerate(self.sizes)
        ]
        if self.demand_distribution is not None:
            demands = self._draw_demands(rng, len(sessions))
            sessions = [
                Session(
                    session.members,
                    demand=demand,
                    source=session.source,
                    name=session.name,
                )
                for session, demand in zip(sessions, demands)
            ]
        return sessions


@dataclass(frozen=True)
class ScenarioSpec(_SpecBase):
    """A complete, serializable problem statement.

    ``solve(spec)`` builds the topology, workload and routing model named
    here, dispatches to the registered solver, and returns a
    :class:`repro.api.service.SolveReport`.

    Attributes
    ----------
    topology:
        What network to build.
    workload:
        What sessions to place on it.
    routing:
        Registry name of the routing model (``"ip"`` or ``"dynamic"``,
        plus their aliases).
    solver:
        Registry name of the solver (``"max_flow"``,
        ``"max_concurrent_flow"``, ``"online"``, ``"randomized_rounding"``,
        or any plugin-registered name).
    solver_params:
        Keyword arguments forwarded to the solver function.
    arrivals:
        Optional :class:`ArrivalSpec` turning the workload's sessions
        into an explicit arrival sequence before the solver runs (the
        online algorithm's input).  ``None`` — the default, omitted from
        the JSON form so pre-existing specs keep their canonical keys —
        passes the workload's sessions through unchanged.
    """

    topology: TopologySpec
    workload: WorkloadSpec
    routing: str = "ip"
    solver: str = "max_flow"
    solver_params: Dict[str, Any] = field(default_factory=dict)
    arrivals: Optional[ArrivalSpec] = None

    def __post_init__(self) -> None:
        if not self.routing:
            raise ConfigurationError("routing name must be non-empty")
        if not self.solver:
            raise ConfigurationError("solver name must be non-empty")
        object.__setattr__(self, "solver_params", dict(self.solver_params))

    def __jsonable__(self) -> Dict[str, Any]:
        """JSON shape hook: the default ``arrivals`` is omitted so every
        pre-existing (arrival-free) scenario keeps its canonical key."""
        data = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        if self.arrivals is None:
            del data["arrivals"]
        return data

    def build_sessions(self, network: PhysicalNetwork) -> List[Session]:
        """The solver's session input: workload sessions, arrival-ordered.

        Convenience composition of ``workload.build`` and
        ``arrivals.apply`` for callers holding only a spec and a
        network.  Instance-caching callers (the solve service, the
        experiment runner) instead apply :meth:`ArrivalSpec.apply` on
        top of an already-built session list — same two operations, so
        the result is identical.
        """
        sessions = self.workload.build(network)
        if self.arrivals is not None:
            sessions = self.arrivals.apply(sessions)
        return sessions

    def with_solver(self, solver: str, **solver_params: Any) -> "ScenarioSpec":
        """Copy of this scenario with a different solver (shared instance)."""
        return dataclasses.replace(
            self, solver=solver, solver_params=dict(solver_params)
        )

    @property
    def instance_key(self) -> str:
        """Digest of the problem *instance* (topology+workload+routing only).

        Two scenarios that run different solvers over the same instance
        share this key; the batch service uses it to share built networks
        and routing models between them.  ``arrivals`` is deliberately
        excluded: arrival ordering is applied on top of the cached
        instance at solve time, so a sweep over orderings (or tree
        limits) rebuilds nothing.
        """
        data = {
            "topology": self.topology.to_jsonable(),
            "workload": self.workload.to_jsonable(),
            "routing": self.routing,
        }
        return hashlib.sha256(_canonical_json(data).encode("utf-8")).hexdigest()


# frozen dataclasses generate their own __hash__, shadowing the
# digest-based one on _SpecBase — restore it explicitly.
for _spec_cls in (TopologySpec, SessionSpec, WorkloadSpec, ArrivalSpec, ScenarioSpec):
    _spec_cls.__hash__ = _SpecBase.__hash__  # type: ignore[method-assign]
del _spec_cls


def load_scenario_specs(path: Union[str, Path]) -> List[ScenarioSpec]:
    """Load a spec file: one scenario object, or a list of them (a batch).

    The shared loader behind every CLI that consumes spec files
    (``python -m repro.api run``, ``python -m repro.cluster
    submit``/``drain``), so they accept and reject files identically.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise ConfigurationError(
            f"{path}: a spec file must hold a scenario object or a list of them"
        )
    return [ScenarioSpec.from_jsonable(item) for item in data]
