"""Name → implementation registry for topologies, routing models and solvers.

The registry is the single dispatch point between declarative
:class:`~repro.api.specs.ScenarioSpec` strings and live code.  Three
namespaces:

* **topologies** — ``name -> generator(**params) -> PhysicalNetwork``,
* **routings** — ``name -> factory(network) -> RoutingModel``,
* **solvers** — ``name -> fn(sessions, routing, **params) -> FlowSolution``.

All built-in names are registered at import time; third-party code can
plug in more through the ``@register_solver("my_solver")`` /
``@register_topology`` / ``@register_routing`` decorators (open
registration, duplicate names rejected).  The legacy
``repro.core.solver`` facade dispatches through this module, so a name
registered here is immediately addressable from specs, the batch
service and the ``python -m repro.api`` CLI.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.maxconcurrent import MaxConcurrentFlow, MaxConcurrentFlowConfig
from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.core.online import OnlineConfig, OnlineMinCongestion
from repro.core.result import FlowSolution
from repro.core.rounding import RandomMinCongestion
from repro.overlay.session import Session
from repro.routing.base import RoutingModel
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.topology import generators as _topo
from repro.topology.barabasi import barabasi_albert_topology
from repro.topology.hierarchical import two_level_topology
from repro.topology.network import PhysicalNetwork
from repro.topology.waxman import waxman_topology
from repro.util.errors import ConfigurationError
from repro.util.rng import SeedLike

TopologyFactory = Callable[..., PhysicalNetwork]
RoutingFactory = Callable[[PhysicalNetwork], RoutingModel]
SolverFunction = Callable[..., FlowSolution]


class Registry:
    """String-keyed factories for topologies, routing models and solvers."""

    def __init__(self) -> None:
        self._topologies: Dict[str, TopologyFactory] = {}
        self._routings: Dict[str, RoutingFactory] = {}
        self._solvers: Dict[str, SolverFunction] = {}

    # ------------------------------------------------------------------
    # registration (decorator-friendly)
    # ------------------------------------------------------------------
    def _register(self, table: Dict, kind: str, name: str, fn=None):
        if not name:
            raise ConfigurationError(f"{kind} name must be non-empty")

        def decorate(func):
            if name in table:
                raise ConfigurationError(
                    f"{kind} {name!r} is already registered; "
                    f"pick a different name or remove the existing entry first"
                )
            table[name] = func
            return func

        return decorate if fn is None else decorate(fn)

    def register_topology(self, name: str, fn: Optional[TopologyFactory] = None):
        """Register a topology generator under ``name`` (usable as decorator)."""
        return self._register(self._topologies, "topology", name, fn)

    def register_routing(self, name: str, fn: Optional[RoutingFactory] = None):
        """Register a routing-model factory under ``name`` (usable as decorator)."""
        return self._register(self._routings, "routing", name, fn)

    def register_solver(self, name: str, fn: Optional[SolverFunction] = None):
        """Register a solver function under ``name`` (usable as decorator).

        A solver function takes ``(sessions, routing, **params)`` and
        returns a :class:`FlowSolution`.
        """
        return self._register(self._solvers, "solver", name, fn)

    def remove(self, kind: str, name: str) -> None:
        """Remove a registered entry (plugin teardown / test hygiene)."""
        table = {
            "topology": self._topologies,
            "routing": self._routings,
            "solver": self._solvers,
        }.get(kind)
        if table is None:
            raise ConfigurationError(
                f"unknown registry kind {kind!r}; use 'topology', 'routing' or 'solver'"
            )
        if name not in table:
            raise ConfigurationError(f"{kind} {name!r} is not registered")
        del table[name]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _lookup(self, table: Dict, kind: str, name: str):
        try:
            return table[name]
        except KeyError:
            known = ", ".join(sorted(table)) or "<none>"
            raise ConfigurationError(
                f"unknown {kind} {name!r}; registered: {known}"
            ) from None

    def topology(self, name: str) -> TopologyFactory:
        """The topology generator registered under ``name``."""
        return self._lookup(self._topologies, "topology", name)

    def routing(self, name: str) -> RoutingFactory:
        """The routing-model factory registered under ``name``."""
        return self._lookup(self._routings, "routing", name)

    def solver(self, name: str) -> SolverFunction:
        """The solver function registered under ``name``."""
        return self._lookup(self._solvers, "solver", name)

    def topology_names(self) -> List[str]:
        """Sorted names of registered topology generators."""
        return sorted(self._topologies)

    def routing_names(self) -> List[str]:
        """Sorted names of registered routing models."""
        return sorted(self._routings)

    def solver_names(self) -> List[str]:
        """Sorted names of registered solvers."""
        return sorted(self._solvers)

    def build_routing(self, network: PhysicalNetwork, kind: str) -> RoutingModel:
        """Build a routing model by (case-insensitive) registered name."""
        return self.routing(kind.lower())(network)


_DEFAULT_REGISTRY = Registry()


def default_registry() -> Registry:
    """The process-wide registry holding the built-ins and any plugins."""
    return _DEFAULT_REGISTRY


def register_topology(name: str, fn: Optional[TopologyFactory] = None):
    """Register a topology generator in the default registry."""
    return _DEFAULT_REGISTRY.register_topology(name, fn)


def register_routing(name: str, fn: Optional[RoutingFactory] = None):
    """Register a routing-model factory in the default registry."""
    return _DEFAULT_REGISTRY.register_routing(name, fn)


def register_solver(name: str, fn: Optional[SolverFunction] = None):
    """Register a solver function in the default registry."""
    return _DEFAULT_REGISTRY.register_solver(name, fn)


# ----------------------------------------------------------------------
# built-in topologies
# ----------------------------------------------------------------------
register_topology("paper_flat", _topo.paper_flat_topology)
register_topology("paper_two_level", _topo.paper_two_level_topology)
register_topology("waxman", waxman_topology)
register_topology("barabasi_albert", barabasi_albert_topology)
register_topology("two_level", two_level_topology)
register_topology("grid", _topo.grid_topology)
register_topology("ring", _topo.ring_topology)
register_topology("complete", _topo.complete_topology)
register_topology("random_regular", _topo.random_regular_topology)

# ----------------------------------------------------------------------
# built-in routing models (aliases match the legacy make_routing strings)
# ----------------------------------------------------------------------
for _name in ("ip", "fixed", "fixed-ip", "static"):
    register_routing(_name, FixedIPRouting)
for _name in ("dynamic", "arbitrary"):
    register_routing(_name, DynamicRouting)


# ----------------------------------------------------------------------
# built-in solvers — the paper's four algorithms
# ----------------------------------------------------------------------
@register_solver("max_flow")
def solve_max_flow_instance(
    sessions: Sequence[Session],
    routing: RoutingModel,
    approximation_ratio: float = 0.95,
    epsilon: Optional[float] = None,
    max_iterations: Optional[int] = None,
    memoize: Optional[bool] = None,
    stacked_trees: Optional[bool] = None,
    kernel_backend: Optional[str] = None,
    max_events: Optional[int] = None,
) -> FlowSolution:
    """MaxFlow FPTAS (paper M1 / Table I): maximise aggregate throughput."""
    config = MaxFlowConfig(
        epsilon=epsilon,
        approximation_ratio=None if epsilon is not None else approximation_ratio,
        max_iterations=max_iterations,
        memoize=memoize,
        stacked_trees=stacked_trees,
        kernel_backend=kernel_backend,
        max_events=max_events,
    )
    return MaxFlow(sessions, routing, config).solve()


@register_solver("max_concurrent_flow")
def solve_max_concurrent_flow_instance(
    sessions: Sequence[Session],
    routing: RoutingModel,
    approximation_ratio: float = 0.95,
    epsilon: Optional[float] = None,
    prescale_epsilon: float = 0.1,
    prescale_jobs: Optional[int] = None,
    max_steps: Optional[int] = None,
    memoize: Optional[bool] = None,
    stacked_trees: Optional[bool] = None,
    kernel_backend: Optional[str] = None,
    max_events: Optional[int] = None,
) -> FlowSolution:
    """MaxConcurrentFlow FPTAS (paper M2 / Table III): max-min fairness."""
    config = MaxConcurrentFlowConfig(
        epsilon=epsilon,
        approximation_ratio=None if epsilon is not None else approximation_ratio,
        prescale_epsilon=prescale_epsilon,
        prescale_jobs=prescale_jobs,
        max_steps=max_steps,
        memoize=memoize,
        stacked_trees=stacked_trees,
        kernel_backend=kernel_backend,
        max_events=max_events,
    )
    return MaxConcurrentFlow(sessions, routing, config).solve()


@register_solver("online")
def solve_online_instance(
    sessions: Sequence[Session],
    routing: RoutingModel,
    sigma: float = 10.0,
    group_by_members: bool = True,
    apply_no_bottleneck_scaling: bool = False,
    memoize: Optional[bool] = None,
    stacked_trees: Optional[bool] = None,
    kernel_backend: Optional[str] = None,
    max_events: Optional[int] = None,
) -> FlowSolution:
    """Online-MinCongestion (paper Table VI): one tree per arrival, in order."""
    config = OnlineConfig(
        sigma=sigma,
        apply_no_bottleneck_scaling=apply_no_bottleneck_scaling,
        memoize=memoize,
        stacked_trees=stacked_trees,
        kernel_backend=kernel_backend,
        max_events=max_events,
    )
    solver = OnlineMinCongestion(routing, config)
    solver.accept_all(sessions)
    return solver.solution(group_by_members=group_by_members)


@register_solver("randomized_rounding")
def solve_randomized_rounding_instance(
    sessions: Sequence[Session],
    routing: RoutingModel,
    max_trees: int = 1,
    seed: SeedLike = None,
    approximation_ratio: float = 0.95,
    epsilon: Optional[float] = None,
    prescale_epsilon: float = 0.1,
    memoize: Optional[bool] = None,
    stacked_trees: Optional[bool] = None,
    kernel_backend: Optional[str] = None,
    max_events: Optional[int] = None,
) -> FlowSolution:
    """Random-MinCongestion (paper Table V): round the fractional optimum.

    Solves the fractional MaxConcurrentFlow relaxation with the given
    accuracy parameters, then selects up to ``max_trees`` trees per
    session by flow-proportional sampling (seeded by ``seed``).
    """
    fractional = solve_max_concurrent_flow_instance(
        sessions,
        routing,
        approximation_ratio=approximation_ratio,
        epsilon=epsilon,
        prescale_epsilon=prescale_epsilon,
        memoize=memoize,
        stacked_trees=stacked_trees,
        kernel_backend=kernel_backend,
        max_events=max_events,
    )
    selection = RandomMinCongestion(fractional, seed=seed).select_trees(max_trees)
    return selection.solution


# Aliases used by the experiment sweeps ("maxflow"/"maxconcurrent" grids).
register_solver("maxflow", solve_max_flow_instance)
register_solver("maxconcurrent", solve_max_concurrent_flow_instance)
