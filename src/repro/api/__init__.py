"""repro.api — the canonical public surface of the library.

This package turns the paper's four algorithms into a *service*: problems
are named by declarative, JSON-round-trippable specs; implementations are
addressed through a string-keyed registry open to plugins; and solving —
single or batch, serial or multi-process — returns uniform, serializable
reports.

Layers
------
* :mod:`repro.api.specs` — :class:`TopologySpec`, :class:`WorkloadSpec`,
  :class:`SessionSpec`, :class:`ScenarioSpec`; every spec round-trips
  through JSON and exposes a ``canonical_key`` digest for caching.
* :mod:`repro.api.registry` — ``@register_topology`` /
  ``@register_routing`` / ``@register_solver`` decorators and the
  built-in names (the paper's four solvers, both routing models, all
  topology generators).
* :mod:`repro.api.service` — ``solve(spec) -> SolveReport``,
  ``solve_many(specs, jobs=...)`` (canonical-key cache + process pool),
  and ``solve_instance`` for callers that already hold live objects.
  Both entry points take ``store=`` (or honour ``REPRO_STORE``) to
  persist reports in a :class:`repro.store.ReportStore` — warm keys
  skip the solver entirely, across processes.
* ``python -m repro.api run spec.json [--jobs N] [--store DIR]
  [--output out.json]`` — the CLI over spec files, plus ``cache
  stats|prune`` for store maintenance.
* For multi-process scale-out over a shared filesystem, see
  :mod:`repro.cluster` (sharded work queue + asyncio gathering).

Spec JSON shape
---------------
A scenario spec file is a JSON object (or a list of them for a batch)::

    {
      "topology": {
        "generator": "paper_flat",        // registry name; also:
                                          // paper_two_level, waxman,
                                          // barabasi_albert, two_level,
                                          // grid, ring, complete,
                                          // random_regular
        "params": {"num_nodes": 40, "capacity": 100.0},
        "seed": 7                         // null for unseeded generators
      },
      "workload": {                       // EITHER random mode:
        "sizes": [5, 4],                  //   one session per entry
        "demand": 100.0,
        "seed": 21,
        "spread_across_levels": true,
        "sessions": []                    // OR explicit mode: non-empty
                                          // list of {members, demand,
                                          // source, name} objects (and
                                          // sizes left empty)
      },
      "routing": "ip",                    // or "dynamic" (aliases:
                                          // fixed/fixed-ip/static,
                                          // arbitrary)
      "solver": "max_flow",               // or max_concurrent_flow,
                                          // online, randomized_rounding,
                                          // or a plugin name
      "solver_params": {"approximation_ratio": 0.9},
      "arrivals": {                       // optional (online scenarios):
        "replication": 5,                 //   copies per session
        "seed": 11,                       //   arrival-order permutation
        "demand": 1.0                     //   per-copy demand override
      }                                   // OR pin the order explicitly
                                          // (mutually exclusive with
                                          // seed): "order": [3, 0, ...]
                                          // Omit the key entirely for
                                          // offline scenarios
    }

Solver parameters mirror the solver functions in
:mod:`repro.api.registry`: ``max_flow`` takes ``approximation_ratio`` or
``epsilon`` (plus ``max_iterations``/``memoize``); ``max_concurrent_flow``
adds ``prescale_epsilon``/``prescale_jobs``; ``online`` takes ``sigma``
and ``group_by_members``; ``randomized_rounding`` takes ``max_trees`` and
``seed`` on top of the fractional solve's accuracy parameters.

Quickstart
----------
>>> from repro.api import ScenarioSpec, TopologySpec, WorkloadSpec, solve
>>> spec = ScenarioSpec(
...     topology=TopologySpec("paper_flat", {"num_nodes": 40}, seed=7),
...     workload=WorkloadSpec(sizes=(4,), demand=100.0, seed=3),
...     solver="max_flow",
...     solver_params={"approximation_ratio": 0.9},
... )
>>> report = solve(ScenarioSpec.from_json(spec.to_json()))  # round-trips
>>> report.solution.overall_throughput > 0
True
"""

from repro.api.registry import (
    Registry,
    default_registry,
    register_routing,
    register_solver,
    register_topology,
)
from repro.api.service import (
    REPORT_SCHEMA,
    SolveReport,
    build_instance,
    cache_info,
    clear_caches,
    solve,
    solve_instance,
    solve_many,
)
from repro.api.specs import (
    ArrivalSpec,
    ScenarioSpec,
    SessionSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    "Registry",
    "default_registry",
    "register_topology",
    "register_routing",
    "register_solver",
    "TopologySpec",
    "SessionSpec",
    "WorkloadSpec",
    "ArrivalSpec",
    "ScenarioSpec",
    "SolveReport",
    "REPORT_SCHEMA",
    "build_instance",
    "solve",
    "solve_instance",
    "solve_many",
    "cache_info",
    "clear_caches",
]
