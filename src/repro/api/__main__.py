"""``python -m repro.api`` — run scenario spec files from the command line.

Subcommands
-----------
``run SPEC [SPEC ...]``
    Solve one or more spec files.  Each file holds either a single
    scenario object or a list of scenarios (a batch).  Reports are
    written as JSON to ``--output`` (a single file receiving the list of
    reports) or pretty-printed to stdout.  ``--jobs`` controls batch
    parallelism (0 = all cores; default honours ``REPRO_JOBS``);
    ``--store DIR`` attaches a persistent report store (default honours
    ``REPRO_STORE``), making repeated runs of solved specs near-free;
    ``--verbose`` prints each report's phase-engine instrumentation
    (phases, oracle calls, batched versus per-session oracle time) to
    stderr; ``--trace out.json`` records the run as a Chrome
    trace-event file (open in Perfetto / ``chrome://tracing``, or
    summarise with ``python -m repro.obs summary``).

``cache stats|prune``
    Inspect or trim a persistent report store: ``stats`` prints entry
    and byte counts, ``prune`` deletes oldest entries beyond
    ``--max-entries`` and/or older than ``--max-age-days``.

``list``
    Print the registered topology, routing and solver names.

``example``
    Print a ready-to-run example spec (see ``repro/api/__init__.py`` for
    the documented JSON shape).  ``--solver online`` emits a complete
    online scenario whose ``arrivals`` block (an ``ArrivalSpec``) pins
    replication and arrival order.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.api.registry import default_registry
from repro.api.service import SolveReport, solve_many
from repro.api.specs import (
    ArrivalSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    load_scenario_specs,
)
from repro.store import STORE_ENV_VAR, ReportStore, resolve_store
from repro.util.errors import ConfigurationError
from repro.util.jobs import JOBS_ENV_VAR, jobs_context
from repro.util.serialization import dump_json


def _load_specs(path: Path) -> List[ScenarioSpec]:
    try:
        return load_scenario_specs(path)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


def emit_reports(reports, output: Optional[str]) -> None:
    """Write reports as JSON to ``output`` or pretty-print to stdout.

    Shared by every CLI that emits report batches (``repro.api run``,
    ``repro.cluster drain``), so their output format cannot diverge.
    """
    payload = [report.to_jsonable() for report in reports]
    if output:
        dump_json(payload, output)
        print(f"wrote {len(payload)} report(s) to {output}")
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")


def _describe_instrumentation(report: SolveReport) -> str:
    """One-paragraph engine-telemetry summary of a report (``--verbose``)."""
    instr = report.solution.instrumentation
    header = (
        f"[{report.canonical_key[:12]}] {report.solution.algorithm}"
        f"{' (cached)' if report.cached else ''}"
    )
    if not instr:
        return f"{header}: no engine instrumentation recorded"
    lines = [
        f"{header}: {instr.get('steps', 0)} steps, "
        f"{instr.get('phases', 0)} phases, "
        f"{instr.get('oracle_queries', 0)} oracle calls "
        f"({report.oracle_calls} total incl. pre-scaling)",
        f"  oracle time: batched {instr.get('batched_oracle_seconds', 0.0):.4f}s "
        f"over {instr.get('batched_rounds', 0)} rounds / "
        f"per-session {instr.get('per_session_oracle_seconds', 0.0):.4f}s "
        f"over {instr.get('per_session_rounds', 0)} rounds",
    ]
    if "ledger_columns" in instr or "spmm_rounds" in instr:
        lines.append(
            f"  stacked ledger: {instr.get('ledger_columns', 0)} tree columns, "
            f"{instr.get('spmm_rounds', 0)} SpMM length rounds"
        )
    retained = len(instr.get("events", []))
    dropped = instr.get("dropped_events", 0)
    # Older reports predate the fanned-out/lost split; fall back to
    # attributing the whole legacy count to the bounded log.
    fanned = instr.get("dropped_fanned_out", dropped)
    lost = instr.get("lost_events", 0)
    detail = ""
    if fanned:
        detail += f"; {fanned} fanned out to live listeners only"
    if lost:
        detail += f"; {lost} lost entirely (no listener attached)"
    lines.append(
        f"  events: {retained} retained, {dropped} dropped past the log bound{detail}"
    )
    if instr.get("max_congestion", 0.0) > 0:
        lines.append(f"  max congestion seen: {instr['max_congestion']:.6g}")
    return "\n".join(lines)


def _store_from_args(args: argparse.Namespace) -> Optional[ReportStore]:
    if getattr(args, "store", None):
        return ReportStore(args.store, compress=getattr(args, "store_gzip", False))
    store = resolve_store(None)  # honour REPRO_STORE
    if store is not None and getattr(args, "store_gzip", False):
        # Fresh per-invocation instance: mutating the memoized env store
        # would leak the flag into later store-less runs in this process.
        return ReportStore(store.root, compress=True)
    return store


def _cmd_run(args: argparse.Namespace) -> int:
    if args.no_cache and args.store:
        # solve_many bypasses the store entirely under use_cache=False;
        # honouring --store silently would promise persistence it does
        # not deliver.
        raise SystemExit("--no-cache and --store are mutually exclusive")
    if args.store_gzip and not args.store and not os.environ.get(STORE_ENV_VAR):
        raise SystemExit(
            f"--store-gzip needs a store: pass --store DIR or export {STORE_ENV_VAR}"
        )
    if args.no_cache and os.environ.get(STORE_ENV_VAR):
        # An ambient store is a softer opt-in than an explicit flag:
        # warn rather than refuse, but never be silent about it.
        print(
            f"note: --no-cache bypasses the ${STORE_ENV_VAR} store; "
            "nothing from this run will be persisted",
            file=sys.stderr,
        )
    specs: List[ScenarioSpec] = []
    for spec_path in args.specs:
        specs.extend(_load_specs(Path(spec_path)))
    if args.trace:
        from repro.obs.tracing import trace_to

        if args.jobs is not None and args.jobs != 1:
            # The tracer is thread-local: pool workers run in separate
            # processes and escape it, so only the parent is recorded.
            print(
                "note: --trace with --jobs > 1 only records the parent "
                "process; use `cluster worker --trace-dir` plus "
                "`python -m repro.obs merge` for multi-process traces",
                file=sys.stderr,
            )
        tracer_cm = trace_to(args.trace, process_name="repro.api run")
    else:
        from contextlib import nullcontext

        tracer_cm = nullcontext()
    # Install --jobs as the process-wide default too (so e.g. the
    # MaxConcurrentFlow pre-scaling picks it up), restoring afterwards
    # for in-process callers of main().
    with jobs_context(args.jobs), tracer_cm:
        reports = solve_many(
            specs,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            store=_store_from_args(args),
        )
    if args.verbose:
        # Engine instrumentation to stderr so --output / piped stdout
        # stay pure JSON.
        for report in reports:
            print(_describe_instrumentation(report), file=sys.stderr)
    emit_reports(reports, args.output)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = _store_from_args(args)
    if store is None:
        raise SystemExit(
            f"no store configured: pass --store DIR or export {STORE_ENV_VAR}"
        )
    if args.cache_command == "stats":
        process_local = {"hits", "misses", "corrupt", "memory_entries"}
        for name, value in store.stats().items():
            scope = "  (this process only)" if name in process_local else ""
            print(f"{name:15s} {value}{scope}")
        return 0
    max_age = None if args.max_age_days is None else args.max_age_days * 86400.0
    removed = store.prune(max_entries=args.max_entries, max_age_seconds=max_age)
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} from {store.root}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    registry = default_registry()
    print("topologies:", ", ".join(registry.topology_names()))
    print("routings:  ", ", ".join(registry.routing_names()))
    print("solvers:   ", ", ".join(registry.solver_names()))
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    topology = TopologySpec(
        generator="paper_flat", params={"num_nodes": 40, "capacity": 100.0}, seed=7
    )
    workload = WorkloadSpec(sizes=(5, 4), demand=100.0, seed=21)
    if args.solver == "online":
        # A complete online scenario: the ArrivalSpec (replication +
        # permutation seed) makes the run fully spec-determined, so it
        # caches and re-runs through the store like offline scenarios.
        spec = ScenarioSpec(
            topology=topology,
            workload=workload,
            routing="ip",
            solver="online",
            solver_params={"sigma": 10.0, "group_by_members": True},
            arrivals=ArrivalSpec(replication=5, seed=11, demand=1.0),
        )
    else:
        spec = ScenarioSpec(
            topology=topology,
            workload=workload,
            routing="ip",
            solver="max_flow",
            solver_params={"approximation_ratio": 0.9},
        )
    print(spec.to_json(indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Solve declarative overlay-multicast scenario specs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="solve spec file(s) and emit JSON reports")
    run.add_argument("specs", nargs="+", help="spec file(s): one scenario or a list")
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=f"batch worker processes (0 = all cores; default: ${JOBS_ENV_VAR} or 1)",
    )
    run.add_argument("--output", default=None, help="write reports to this JSON file")
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="solve every spec fresh (skip the canonical-key report cache)",
    )
    run.add_argument(
        "--store",
        default=None,
        help=f"persistent report-store directory (default: ${STORE_ENV_VAR} if set)",
    )
    run.add_argument(
        "--store-gzip",
        action="store_true",
        help=f"gzip new store entries (with --store or ${STORE_ENV_VAR})",
    )
    run.add_argument(
        "--verbose",
        action="store_true",
        help="print engine instrumentation per report to stderr "
        "(phases, oracle calls, batched vs per-session oracle time)",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="record the run as a Chrome trace-event file (view in "
        "Perfetto or summarise with `python -m repro.obs summary`)",
    )
    run.set_defaults(handler=_cmd_run)

    cache = sub.add_parser("cache", help="inspect or trim a persistent report store")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "print store entry/byte/hit counters"),
        ("prune", "delete oldest entries beyond the given bounds"),
    ):
        cache_cmd = cache_sub.add_parser(name, help=help_text)
        cache_cmd.add_argument(
            "--store",
            default=None,
            help=f"report-store directory (default: ${STORE_ENV_VAR} if set)",
        )
        if name == "prune":
            cache_cmd.add_argument(
                "--max-entries", type=int, default=None, help="keep at most N entries"
            )
            cache_cmd.add_argument(
                "--max-age-days",
                type=float,
                default=None,
                help="drop entries older than this many days",
            )
        cache_cmd.set_defaults(handler=_cmd_cache)

    lst = sub.add_parser("list", help="list registered topologies/routings/solvers")
    lst.set_defaults(handler=_cmd_list)

    example = sub.add_parser("example", help="print an example scenario spec")
    example.add_argument(
        "--solver",
        default="max_flow",
        choices=("max_flow", "online"),
        help="which example to print: an offline max_flow scenario "
        "(default) or a full online scenario with an ArrivalSpec",
    )
    example.set_defaults(handler=_cmd_example)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
