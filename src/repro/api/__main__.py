"""``python -m repro.api`` — run scenario spec files from the command line.

Subcommands
-----------
``run SPEC [SPEC ...]``
    Solve one or more spec files.  Each file holds either a single
    scenario object or a list of scenarios (a batch).  Reports are
    written as JSON to ``--output`` (a single file receiving the list of
    reports) or pretty-printed to stdout.  ``--jobs`` controls batch
    parallelism (0 = all cores; default honours ``REPRO_JOBS``).

``list``
    Print the registered topology, routing and solver names.

``example``
    Print a ready-to-run example spec (see ``repro/api/__init__.py`` for
    the documented JSON shape).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.api.registry import default_registry
from repro.api.service import solve_many
from repro.api.specs import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.util.jobs import JOBS_ENV_VAR, configure_jobs
from repro.util.serialization import dump_json


def _load_specs(path: Path) -> List[ScenarioSpec]:
    with path.open("r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise SystemExit(
            f"{path}: a spec file must hold a scenario object or a list of them"
        )
    return [ScenarioSpec.from_jsonable(item) for item in data]


def _cmd_run(args: argparse.Namespace) -> int:
    specs: List[ScenarioSpec] = []
    for spec_path in args.specs:
        specs.extend(_load_specs(Path(spec_path)))
    # Install --jobs as the process-wide default too (so e.g. the
    # MaxConcurrentFlow pre-scaling picks it up), restoring afterwards
    # for in-process callers of main().
    previous = configure_jobs(args.jobs) if args.jobs is not None else None
    try:
        reports = solve_many(specs, jobs=args.jobs, use_cache=not args.no_cache)
    finally:
        if args.jobs is not None:
            configure_jobs(previous)
    payload = [report.to_jsonable() for report in reports]
    if args.output:
        dump_json(payload, args.output)
        print(f"wrote {len(payload)} report(s) to {args.output}")
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    registry = default_registry()
    print("topologies:", ", ".join(registry.topology_names()))
    print("routings:  ", ", ".join(registry.routing_names()))
    print("solvers:   ", ", ".join(registry.solver_names()))
    return 0


def _cmd_example(_args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        topology=TopologySpec(
            generator="paper_flat", params={"num_nodes": 40, "capacity": 100.0}, seed=7
        ),
        workload=WorkloadSpec(sizes=(5, 4), demand=100.0, seed=21),
        routing="ip",
        solver="max_flow",
        solver_params={"approximation_ratio": 0.9},
    )
    print(spec.to_json(indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Solve declarative overlay-multicast scenario specs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="solve spec file(s) and emit JSON reports")
    run.add_argument("specs", nargs="+", help="spec file(s): one scenario or a list")
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=f"batch worker processes (0 = all cores; default: ${JOBS_ENV_VAR} or 1)",
    )
    run.add_argument("--output", default=None, help="write reports to this JSON file")
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="solve every spec fresh (skip the canonical-key report cache)",
    )
    run.set_defaults(handler=_cmd_run)

    lst = sub.add_parser("list", help="list registered topologies/routings/solvers")
    lst.set_defaults(handler=_cmd_list)

    example = sub.add_parser("example", help="print an example scenario spec")
    example.set_defaults(handler=_cmd_example)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
