"""The solve service: specs in, reports out.

``solve(spec)`` turns one declarative :class:`ScenarioSpec` into a
:class:`SolveReport` — the uniform result envelope carrying the live
:class:`FlowSolution`, wall-clock and oracle-call accounting, and the
echoed spec.  ``solve_many(specs, jobs=...)`` is the batch engine: it
deduplicates specs by :attr:`ScenarioSpec.canonical_key`, reuses a
process-level report cache, and farms uncached specs out to a process
pool through the shared ``--jobs`` / ``REPRO_JOBS`` plumbing.  Parallel
batch runs are bit-identical to serial ones because spec construction is
deterministic.

Both entry points optionally consult a persistent
:class:`repro.store.ReportStore` (pass ``store=`` or export
``REPRO_STORE=<dir>``), and fresh solves are written back, so repeated
runs across processes — and cooperating :mod:`repro.cluster` workers —
never re-solve a spec.  ``solve_many``'s lookup chain per key is
in-process report cache → store → solver pool; ``solve`` checks the
store only (it is the single-shot path — batch callers wanting the
in-process cache use ``solve_many``).

Built networks, session lists and routing models are cached per
*instance* (topology + workload + routing digest), so sweeping many
solver configurations over one instance — the shape of every experiment
in the paper — rebuilds nothing.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.registry import Registry, default_registry
from repro.api.specs import ScenarioSpec, SessionSpec
from repro.core.engine.instrumentation import event_tap
from repro.core.result import FlowSolution, SessionResult, TreeFlow
from repro.obs import metrics as obs_metrics
from repro.obs.tracing import Tracer, maybe_span
from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree
from repro.routing.base import RoutingModel, pair_key
from repro.routing.paths import UnicastPath
from repro.store.report_store import StoreLike, resolve_store
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.jobs import resolve_jobs
from repro.util.serialization import to_jsonable

REPORT_SCHEMA = "SolveReport/v1"

# ----------------------------------------------------------------------
# instance construction (cached per topology/workload/routing digest)
# ----------------------------------------------------------------------
_INSTANCE_CACHE_LIMIT = 32
_instance_cache: "OrderedDict[str, Tuple[PhysicalNetwork, List[Session], RoutingModel]]" = (
    OrderedDict()
)


def build_instance(
    spec: ScenarioSpec, registry: Optional[Registry] = None
) -> Tuple[PhysicalNetwork, List[Session], RoutingModel]:
    """Build (or fetch) the live network, sessions and routing of a spec.

    Cached on :attr:`ScenarioSpec.instance_key`, so scenarios that differ
    only in solver/solver_params share one built instance — matching how
    the experiment harness reuses instances across a ratio sweep.
    """
    reg = registry or default_registry()
    key = spec.instance_key
    with maybe_span("build_instance", instance=key[:12]) as span:
        if registry is None and key in _instance_cache:
            _instance_cache.move_to_end(key)
            span.set(cached=True)
            return _instance_cache[key]
        network = spec.topology.build(reg)
        sessions = spec.workload.build(network)
        routing = reg.build_routing(network, spec.routing)
        instance = (network, sessions, routing)
        if registry is None:
            _instance_cache[key] = instance
            while len(_instance_cache) > _INSTANCE_CACHE_LIMIT:
                _instance_cache.popitem(last=False)
        return instance


def solve_instance(
    solver: str,
    sessions: Sequence[Session],
    routing: RoutingModel,
    params: Optional[Mapping[str, Any]] = None,
    registry: Optional[Registry] = None,
) -> FlowSolution:
    """Dispatch prebuilt sessions/routing to a registered solver by name.

    The lower of the API's two layers: callers that already hold live
    objects (the experiment runner, the examples' online-arrival loops)
    use this; callers with a declarative spec use :func:`solve`.
    """
    reg = registry or default_registry()
    return reg.solver(solver)(sessions, routing, **dict(params or {}))


# ----------------------------------------------------------------------
# the report envelope
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolveReport:
    """Uniform envelope around one solved scenario.

    Attributes
    ----------
    spec:
        The scenario that was solved (echoed for provenance).
    solution:
        The live :class:`FlowSolution`.
    wall_seconds:
        Wall-clock time of the solve (instance build excluded).
    oracle_calls:
        MST operations performed — the paper's running-time metric.
    cached:
        Whether the report came out of the batch service's cache.
    """

    spec: ScenarioSpec
    solution: FlowSolution = field(repr=False)
    wall_seconds: float
    oracle_calls: int
    cached: bool = False

    @property
    def canonical_key(self) -> str:
        """The solved spec's cache key."""
        return self.spec.canonical_key

    def summary(self) -> Dict[str, float]:
        """The solution's headline metrics."""
        return self.solution.summary()

    def to_jsonable(self) -> Dict[str, Any]:
        """Full JSON form: spec, metrics, and the per-tree flow decomposition."""
        sessions = []
        for session_result in self.solution.sessions:
            tree_flows = []
            for tf in session_result.tree_flows:
                tree = tf.tree
                tree_flows.append(
                    {
                        "overlay_edges": [list(e) for e in tree.overlay_edges],
                        "paths": [
                            {"edge": list(e), "nodes": list(tree.paths[e].nodes)}
                            for e in tree.overlay_edges
                        ],
                        "flow": tf.flow,
                    }
                )
            sessions.append(
                {
                    "session": SessionSpec.of(session_result.session).to_jsonable(),
                    "rate": session_result.rate,
                    "num_trees": session_result.num_trees,
                    "tree_flows": tree_flows,
                }
            )
        payload = {
            "schema": REPORT_SCHEMA,
            "spec": self.spec.to_jsonable(),
            "canonical_key": self.canonical_key,
            "algorithm": self.solution.algorithm,
            "epsilon": self.solution.epsilon,
            "wall_seconds": self.wall_seconds,
            "oracle_calls": self.oracle_calls,
            "cached": self.cached,
            "summary": to_jsonable(self.summary()),
            "extra": to_jsonable(dict(self.solution.extra)),
            "sessions": sessions,
        }
        if self.solution.instrumentation is not None:
            # Engine telemetry (phases, oracle rounds, batched-vs-loop
            # oracle time).  Key absent for pre-engine reports, keeping
            # their persisted bytes (and digests) untouched.
            payload["instrumentation"] = to_jsonable(self.solution.instrumentation)
        return payload

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "SolveReport":
        """Rebuild a report — including a live ``FlowSolution`` — from JSON.

        The physical network is reconstructed from the echoed spec's
        topology (deterministic generators make this exact), trees are
        rebuilt from their serialized unicast paths, and flows are
        restored bit-for-bit (JSON round-trips IEEE doubles exactly).
        """
        schema = data.get("schema")
        if schema != REPORT_SCHEMA:
            raise ConfigurationError(
                f"expected a {REPORT_SCHEMA} document, got schema {schema!r}"
            )
        spec = ScenarioSpec.from_jsonable(data["spec"])
        network = spec.topology.build()
        session_results = []
        for entry in data["sessions"]:
            session = SessionSpec.from_jsonable(entry["session"]).build()
            tree_flows = []
            for tf in entry["tree_flows"]:
                paths = {}
                for item in tf["paths"]:
                    edge = pair_key(*item["edge"])
                    paths[edge] = UnicastPath.from_nodes(network, item["nodes"])
                overlay_edges = [pair_key(*e) for e in tf["overlay_edges"]]
                tree = OverlayTree.from_paths(
                    session.members, overlay_edges, paths, network.num_edges
                )
                tree_flows.append(TreeFlow(tree=tree, flow=float(tf["flow"])))
            session_results.append(
                SessionResult(session=session, tree_flows=tuple(tree_flows))
            )
        solution = FlowSolution(
            algorithm=data["algorithm"],
            sessions=tuple(session_results),
            network=network,
            epsilon=data.get("epsilon"),
            oracle_calls=int(data["oracle_calls"]),
            extra=dict(data.get("extra", {})),
            instrumentation=data.get("instrumentation"),
        )
        return cls(
            spec=spec,
            solution=solution,
            wall_seconds=float(data["wall_seconds"]),
            oracle_calls=int(data["oracle_calls"]),
            cached=bool(data.get("cached", False)),
        )


# ----------------------------------------------------------------------
# single solve
# ----------------------------------------------------------------------
def _solve_uncached(
    spec: ScenarioSpec, registry: Optional[Registry] = None
) -> SolveReport:
    """One live solve, no cache or store consultation (the pool-worker path)."""
    _, sessions, routing = build_instance(spec, registry)
    if spec.arrivals is not None:
        # Arrival ordering sits on top of the cached instance: the same
        # built network/sessions serve every ordering/replication variant.
        sessions = spec.arrivals.apply(sessions)
    start = time.perf_counter()
    with maybe_span("solve_instance", solver=spec.solver):
        solution = solve_instance(
            spec.solver, sessions, routing, spec.solver_params, registry
        )
    wall = time.perf_counter() - start
    return SolveReport(
        spec=spec,
        solution=solution,
        wall_seconds=wall,
        oracle_calls=solution.oracle_calls,
    )


def _solve_outcome_counter(outcome: str):
    return obs_metrics.registry().counter(
        "repro_solve_total",
        "solve()/solve_many() results by cache-chain outcome",
        labels={"outcome": outcome},
    )


def solve(
    spec: ScenarioSpec,
    registry: Optional[Registry] = None,
    store: StoreLike = None,
    on_event: Optional[Callable[..., None]] = None,
    trace: Optional[Any] = None,
) -> SolveReport:
    """Solve one declarative scenario and return its report.

    Builds (or fetches) the instance, dispatches to the registered
    solver, and wraps the result.  Deterministic: the same spec always
    yields a bit-identical :class:`FlowSolution`.

    With a persistent store configured (``store=`` path/instance, or the
    ``REPRO_STORE`` environment variable), the store is consulted first
    — a verified hit returns the persisted report with ``cached=True``
    and performs no solver work — and a fresh solve is written back.
    Stores only apply with the default registry: a custom registry may
    resolve the same names to different implementations, which would
    poison content-addressed entries.

    ``on_event`` observes the solve live: it is installed as a
    thread-local engine :func:`~repro.core.engine.instrumentation.event_tap`
    for the duration of the solver run, so every
    :class:`~repro.core.engine.instrumentation.EngineEvent` (oracle
    rounds, phase boundaries, congestion snapshots) reaches it as it
    fires — including events the bounded per-run log drops.  This is the
    hook the serve layer's telemetry relay (and the queue workers) ride;
    a store hit performs no engine work and therefore emits no events.

    ``trace`` opts into hierarchical wall-clock spans
    (``solve`` → ``build_instance`` → ``solve_instance`` →
    ``engine.step`` → ``oracle_round``): pass an output path to write a
    Chrome trace-event file for that one solve, or a live
    :class:`repro.obs.tracing.Tracer` to accumulate spans across calls
    (the caller saves).  Tracing never changes solver behaviour — the
    solution is bit-identical with it on or off.
    """
    if trace is not None:
        tracer = trace if isinstance(trace, Tracer) else Tracer()
        with tracer.activate():
            report = _solve_impl(spec, registry, store, on_event)
        if not isinstance(trace, Tracer):
            tracer.save(trace)
        return report
    return _solve_impl(spec, registry, store, on_event)


def _solve_impl(
    spec: ScenarioSpec,
    registry: Optional[Registry],
    store: StoreLike,
    on_event: Optional[Callable[..., None]],
) -> SolveReport:
    global _store_hits
    with maybe_span("solve", solver=spec.solver, key=spec.canonical_key[:12]) as span:
        resolved = resolve_store(store) if registry is None else None
        if resolved is not None:
            hit = resolved.get(spec.canonical_key)
            if hit is not None:
                _store_hits += 1
                _solve_outcome_counter("store").inc()
                span.set(outcome="store")
                return dataclasses.replace(hit, cached=True)
        if on_event is not None:
            with event_tap(on_event):
                report = _solve_uncached(spec, registry)
        else:
            report = _solve_uncached(spec, registry)
        _solve_outcome_counter("cold").inc()
        span.set(outcome="cold")
        if resolved is not None:
            resolved.put(report)
        return report


# ----------------------------------------------------------------------
# batch solve
# ----------------------------------------------------------------------
_report_cache: "OrderedDict[str, SolveReport]" = OrderedDict()
_REPORT_CACHE_LIMIT = 256
_cache_hits = 0
_cache_misses = 0
_store_hits = 0


def _solve_jsonable_cell(payload: Dict[str, Any]) -> SolveReport:
    """Pool worker: rebuild the spec from JSON form and solve it.

    Deliberately skips the store (even when ``REPRO_STORE`` is exported):
    the parent batch already consulted it, and write-back happens once in
    the parent rather than racing from every worker.
    """
    return _solve_uncached(ScenarioSpec.from_jsonable(payload))


def solve_many(
    specs: Sequence[ScenarioSpec],
    jobs: Optional[int] = None,
    use_cache: bool = True,
    store: StoreLike = None,
) -> List[SolveReport]:
    """Solve a batch of scenarios, in input order.

    * Specs with the same :attr:`~ScenarioSpec.canonical_key` are solved
      once; later occurrences (and repeats across calls, via the
      process-level cache) are served from cache with ``cached=True``.
    * With a persistent store (``store=`` path/instance or the
      ``REPRO_STORE`` environment variable), the lookup chain per key is
      in-process report cache → store → solver pool, and every fresh
      solve is written back.  A batch whose keys are all warm in the
      store performs zero solver calls.
    * ``jobs`` resolves through the shared ``--jobs`` / ``REPRO_JOBS``
      plumbing; with more than one worker, uncached specs solve on a
      process pool.  Results are bit-identical to a serial run.
    * ``use_cache=False`` bypasses the cache, the store *and* the
      within-batch deduplication: every spec in the batch — repeats
      included — is solved fresh.  Use it for scenarios that are
      deliberately non-deterministic, e.g. ``randomized_rounding``
      without a seed, where each occurrence must draw independently.
    """
    global _cache_hits, _cache_misses, _store_hits
    order: List[str] = [spec.canonical_key for spec in specs]
    resolved_store = resolve_store(store) if use_cache else None

    # Decide which batch positions need a live solve.  With caching on,
    # one solve serves every occurrence of a canonical key; with caching
    # off, every position solves independently.
    if use_cache:
        fresh_keys: "OrderedDict[str, ScenarioSpec]" = OrderedDict()
        for spec, key in zip(specs, order):
            if key not in _report_cache and key not in fresh_keys:
                fresh_keys[key] = spec
        if resolved_store is not None:
            # Keys warm in the store need no solver work: promote them
            # into the in-process cache and drop them from the task list.
            for key in list(fresh_keys):
                persisted = resolved_store.get(key)
                if persisted is not None:
                    _store_hits += 1
                    _solve_outcome_counter("store").inc()
                    _report_cache[key] = persisted
                    _report_cache.move_to_end(key)
                    del fresh_keys[key]
        tasks = list(fresh_keys.values())
    else:
        tasks = list(specs)

    workers = min(resolve_jobs(jobs), len(tasks)) if tasks else 1
    if workers > 1 and len(tasks) > 1:
        payloads = [spec.to_jsonable() for spec in tasks]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            solved = list(pool.map(_solve_jsonable_cell, payloads))
    else:
        solved = []
        for spec in tasks:
            # One top-level span per spec, so a traced batch run nests
            # the same way a single solve() does (pool workers run in
            # other processes and escape the thread-local tracer).
            with maybe_span(
                "solve", solver=spec.solver, key=spec.canonical_key[:12]
            ) as span:
                solved.append(_solve_uncached(spec))
                span.set(outcome="cold")
    _cache_misses += len(solved)
    if solved:
        _solve_outcome_counter("cold").inc(len(solved))
    if resolved_store is not None:
        for report in solved:
            resolved_store.put(report)

    if not use_cache:
        return solved

    new_reports: Dict[str, SolveReport] = {
        key: report for key, report in zip(fresh_keys.keys(), solved)
    }

    out: List[SolveReport] = []
    served_this_call: Dict[str, SolveReport] = {}
    for spec, key in zip(specs, order):
        if key in new_reports and key not in served_this_call:
            report = new_reports[key]
            served_this_call[key] = report
        else:
            source = served_this_call.get(key)
            if source is None:
                source = _report_cache[key]
                _report_cache.move_to_end(key)  # LRU, not FIFO: refresh on hit
                _cache_hits += 1
                _solve_outcome_counter("report_cache").inc()
                served_this_call[key] = source
            report = SolveReport(
                spec=spec,
                solution=source.solution,
                wall_seconds=source.wall_seconds,
                oracle_calls=source.oracle_calls,
                cached=True,
            )
        out.append(report)

    for key, report in new_reports.items():
        _report_cache[key] = report
        _report_cache.move_to_end(key)
    while len(_report_cache) > _REPORT_CACHE_LIMIT:
        _report_cache.popitem(last=False)
    if resolved_store is not None:
        # Backfill: keys served from the in-process cache (warmed by an
        # earlier store-less call) must still land on disk, or a store
        # attached mid-session would never see them.  Read from
        # served_this_call, not _report_cache — the eviction pass above
        # may already have dropped a served key from the cache.
        for key, report in served_this_call.items():
            if key not in new_reports and not resolved_store.contains(key):
                resolved_store.put(report)
    return out


def cache_info() -> Dict[str, int]:
    """Batch-service cache counters (hits, misses, cached reports/instances).

    ``misses`` counts live solver runs; ``hits`` counts reports served
    from the in-process cache; ``store_hits`` counts the subset of warm
    keys that came off the persistent store rather than this process's
    own solves.
    """
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "store_hits": _store_hits,
        "reports": len(_report_cache),
        "instances": len(_instance_cache),
    }


def clear_caches() -> None:
    """Drop the report and instance caches and reset the counters."""
    global _cache_hits, _cache_misses, _store_hits
    _report_cache.clear()
    _instance_cache.clear()
    _cache_hits = 0
    _cache_misses = 0
    _store_hits = 0
