"""Random-MinCongestion — randomized rounding of the fractional solution.

Paper Table V / Section IV-B.  Problem M2I restricts every commodity to a
single overlay tree (or, more generally, to at most ``n`` trees).  The
randomized-rounding approach first solves the fractional relaxation M2
with MaxConcurrentFlow, then randomly selects trees for each session with
probability proportional to their fractional flows:

* :func:`RandomMinCongestion.round_single_tree` implements Table V
  literally — one tree per session, returning the per-edge congestion and
  ``l_max`` that Theorem 3 bounds;
* :func:`RandomMinCongestion.select_trees` implements the paper's Fig. 5/6
  experiment — ``n`` draws per session (with replacement, so the same
  tree may be selected more than once); the distinct selected trees keep
  their fractional rates, giving the session rate plotted against the
  tree limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import FlowSolution, SessionResult, TreeFlow
from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree
from repro.util.errors import ConfigurationError
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class RoundedSelection:
    """Outcome of one randomized rounding trial.

    Attributes
    ----------
    solution:
        The rounded flows as a :class:`FlowSolution` (rates are the
        fractional rates of the *distinct* selected trees).
    congestion:
        Per-physical-edge congestion if every session routed its full
        demand over its selected tree(s) proportionally to the retained
        fractional flows.
    max_congestion:
        ``l_max`` — the quantity Theorem 3 bounds.
    trees_per_session:
        Number of distinct trees actually selected per session (Fig. 6).
    """

    solution: FlowSolution
    congestion: np.ndarray
    max_congestion: float
    trees_per_session: Tuple[int, ...]


class RandomMinCongestion:
    """Randomized rounding over a fractional (MaxConcurrentFlow) solution."""

    def __init__(self, fractional: FlowSolution, seed: SeedLike = None) -> None:
        if not fractional.sessions:
            raise ConfigurationError("fractional solution has no sessions")
        self._fractional = fractional
        self._network = fractional.network
        self._rng = ensure_rng(seed)

    @property
    def fractional(self) -> FlowSolution:
        """The fractional solution being rounded."""
        return self._fractional

    # ------------------------------------------------------------------
    # tree sampling helpers
    # ------------------------------------------------------------------
    def _sample_trees(
        self, session_result: SessionResult, draws: int, rng: np.random.Generator
    ) -> List[TreeFlow]:
        """Sample ``draws`` trees proportionally to flow; return distinct ones."""
        tree_flows = [tf for tf in session_result.tree_flows if tf.flow > 0]
        if not tree_flows:
            return []
        flows = np.asarray([tf.flow for tf in tree_flows], dtype=float)
        probabilities = flows / flows.sum()
        chosen = rng.choice(len(tree_flows), size=draws, replace=True, p=probabilities)
        distinct_indices = sorted(set(int(c) for c in chosen))
        return [tree_flows[i] for i in distinct_indices]

    # ------------------------------------------------------------------
    # Table V: one tree per session
    # ------------------------------------------------------------------
    def round_single_tree(self, seed: SeedLike = None) -> RoundedSelection:
        """Round to exactly one tree per session (paper Table V).

        The congestion of edge ``e`` is ``sum_i n_e(t^i) * dem(i) / c_e``
        for the selected trees ``t^i``; scaling every demand by the
        resulting ``l_max`` yields a feasible unsplittable solution.
        """
        return self.select_trees(max_trees=1, seed=seed)

    # ------------------------------------------------------------------
    # Fig. 5/6: up to n trees per session
    # ------------------------------------------------------------------
    def select_trees(self, max_trees: int, seed: SeedLike = None) -> RoundedSelection:
        """Select up to ``max_trees`` trees per session (with replacement).

        The session keeps the fractional rates of its distinct selected
        trees, which is how the paper evaluates throughput versus the tree
        limit; the congestion field reports what routing the full demands
        over the selections would cost.
        """
        if max_trees < 1:
            raise ConfigurationError(f"max_trees must be >= 1, got {max_trees}")
        rng = ensure_rng(seed) if seed is not None else self._rng

        capacities = self._network.capacities
        congestion = np.zeros(self._network.num_edges, dtype=float)
        rounded_sessions: List[SessionResult] = []
        trees_per_session: List[int] = []

        for session_result in self._fractional.sessions:
            selected = self._sample_trees(session_result, max_trees, rng)
            trees_per_session.append(len(selected))
            rounded_sessions.append(
                SessionResult(session=session_result.session, tree_flows=tuple(selected))
            )
            demand = session_result.session.demand
            total_selected_flow = sum(tf.flow for tf in selected)
            for tf in selected:
                # Demand is split across selected trees proportionally to
                # their fractional flows (all of it on the single tree for
                # the Table V case).
                share = (
                    demand * (tf.flow / total_selected_flow)
                    if total_selected_flow > 0
                    else 0.0
                )
                used = tf.tree.physical_edges
                congestion[used] += tf.tree.usage_values * share / capacities[used]

        solution = FlowSolution(
            algorithm="Random-MinCongestion",
            sessions=tuple(rounded_sessions),
            network=self._network,
            epsilon=self._fractional.epsilon,
            oracle_calls=self._fractional.oracle_calls,
            extra={
                "max_trees": float(max_trees),
                "max_congestion": float(congestion.max()) if congestion.size else 0.0,
                "fractional_algorithm": 1.0,
            },
        )
        return RoundedSelection(
            solution=solution,
            congestion=congestion,
            max_congestion=float(congestion.max()) if congestion.size else 0.0,
            trees_per_session=tuple(trees_per_session),
        )

    # ------------------------------------------------------------------
    # repeated-trial averages (the paper averages 100 trials)
    # ------------------------------------------------------------------
    def average_over_trials(
        self,
        max_trees: int,
        trials: int,
        seed: SeedLike = None,
    ) -> Dict[str, float]:
        """Average throughput/rate statistics over repeated rounding trials."""
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        rng = ensure_rng(seed) if seed is not None else self._rng
        throughput = np.zeros(trials)
        min_rates = np.zeros(trials)
        rates = np.zeros((trials, len(self._fractional.sessions)))
        tree_counts = np.zeros((trials, len(self._fractional.sessions)))
        congestion = np.zeros(trials)
        for t in range(trials):
            selection = self.select_trees(max_trees, seed=rng)
            throughput[t] = selection.solution.overall_throughput
            min_rates[t] = selection.solution.min_rate
            rates[t] = selection.solution.session_rates
            tree_counts[t] = selection.trees_per_session
            congestion[t] = selection.max_congestion
        out: Dict[str, float] = {
            "mean_throughput": float(throughput.mean()),
            "mean_min_rate": float(min_rates.mean()),
            "mean_max_congestion": float(congestion.mean()),
        }
        for index in range(rates.shape[1]):
            out[f"mean_rate_session_{index + 1}"] = float(rates[:, index].mean())
            out[f"mean_trees_session_{index + 1}"] = float(tree_counts[:, index].mean())
        return out


def solve_randomized_rounding(
    fractional: FlowSolution,
    max_trees: int = 1,
    seed: SeedLike = None,
) -> RoundedSelection:
    """Convenience wrapper around :class:`RandomMinCongestion`."""
    return RandomMinCongestion(fractional, seed=seed).select_trees(max_trees)
