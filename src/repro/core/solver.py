"""High-level façade over the four algorithms.

Most applications only need: *build a routing model, describe sessions,
call one of these functions*.  The experiment harness and the examples go
through this module so that the argument conventions stay in one place.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.maxconcurrent import MaxConcurrentFlowConfig, MaxConcurrentFlow
from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.core.online import OnlineConfig, OnlineMinCongestion
from repro.core.result import FlowSolution
from repro.core.rounding import RandomMinCongestion, RoundedSelection
from repro.overlay.session import Session
from repro.routing.base import RoutingModel
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.rng import SeedLike


def make_routing(network: PhysicalNetwork, kind: str = "ip") -> RoutingModel:
    """Build a routing model by name: ``"ip"`` (fixed) or ``"dynamic"``."""
    normalized = kind.lower()
    if normalized in ("ip", "fixed", "fixed-ip", "static"):
        return FixedIPRouting(network)
    if normalized in ("dynamic", "arbitrary"):
        return DynamicRouting(network)
    raise ConfigurationError(f"unknown routing kind {kind!r}; use 'ip' or 'dynamic'")


def solve_max_flow(
    sessions: Sequence[Session],
    routing: RoutingModel,
    approximation_ratio: float = 0.95,
    epsilon: Optional[float] = None,
) -> FlowSolution:
    """Solve the overlay maximum flow problem (paper M1 / Table I)."""
    config = MaxFlowConfig(
        epsilon=epsilon,
        approximation_ratio=None if epsilon is not None else approximation_ratio,
    )
    return MaxFlow(sessions, routing, config).solve()


def solve_max_concurrent_flow(
    sessions: Sequence[Session],
    routing: RoutingModel,
    approximation_ratio: float = 0.95,
    epsilon: Optional[float] = None,
    prescale_epsilon: float = 0.1,
) -> FlowSolution:
    """Solve the overlay maximum concurrent flow problem (paper M2 / Table III)."""
    config = MaxConcurrentFlowConfig(
        epsilon=epsilon,
        approximation_ratio=None if epsilon is not None else approximation_ratio,
        prescale_epsilon=prescale_epsilon,
    )
    return MaxConcurrentFlow(sessions, routing, config).solve()


def solve_online(
    sessions: Sequence[Session],
    routing: RoutingModel,
    sigma: float = 10.0,
    group_by_members: bool = True,
) -> FlowSolution:
    """Route sessions online, one tree each, in arrival order (paper Table VI)."""
    solver = OnlineMinCongestion(routing, OnlineConfig(sigma=sigma))
    solver.accept_all(sessions)
    return solver.solution(group_by_members=group_by_members)


def solve_randomized_rounding(
    fractional: FlowSolution,
    max_trees: int = 1,
    seed: SeedLike = None,
) -> RoundedSelection:
    """Randomized rounding of a fractional solution (paper Table V)."""
    return RandomMinCongestion(fractional, seed=seed).select_trees(max_trees)


def standalone_session_rates(
    sessions: Sequence[Session],
    routing: RoutingModel,
    epsilon: float = 0.1,
) -> List[float]:
    """Maximum rate of each session when it has the network to itself.

    This is the quantity ``beta_i`` used to bound the concurrent-flow
    optimum; exposed because experiments also report it as the
    "single-session" baseline (Fig. 12 with one session).
    """
    rates = []
    for session in sessions:
        solution = MaxFlow([session], routing, MaxFlowConfig(epsilon=epsilon)).solve()
        rates.append(solution.sessions[0].rate)
    return rates
