"""High-level façade over the four algorithms (thin shim).

Historically this module hand-wired solver configs and routing dispatch;
it is now a thin compatibility layer over :mod:`repro.api` — the
declarative spec / registry surface — so that argument conventions live
in exactly one place (:mod:`repro.api.registry`).  New code should
prefer ``repro.api``: build a :class:`~repro.api.specs.ScenarioSpec` and
call :func:`~repro.api.service.solve`, or dispatch prebuilt objects with
:func:`~repro.api.service.solve_instance`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.result import FlowSolution
from repro.core.rounding import RandomMinCongestion, RoundedSelection
from repro.overlay.session import Session
from repro.routing.base import RoutingModel
from repro.topology.network import PhysicalNetwork
from repro.util.rng import SeedLike


def make_routing(network: PhysicalNetwork, kind: str = "ip") -> RoutingModel:
    """Build a routing model by name: ``"ip"`` (fixed) or ``"dynamic"``."""
    from repro.api.registry import default_registry

    return default_registry().build_routing(network, kind)


def solve_max_flow(
    sessions: Sequence[Session],
    routing: RoutingModel,
    approximation_ratio: float = 0.95,
    epsilon: Optional[float] = None,
) -> FlowSolution:
    """Solve the overlay maximum flow problem (paper M1 / Table I)."""
    from repro.api.registry import default_registry

    return default_registry().solver("max_flow")(
        sessions, routing, approximation_ratio=approximation_ratio, epsilon=epsilon
    )


def solve_max_concurrent_flow(
    sessions: Sequence[Session],
    routing: RoutingModel,
    approximation_ratio: float = 0.95,
    epsilon: Optional[float] = None,
    prescale_epsilon: float = 0.1,
) -> FlowSolution:
    """Solve the overlay maximum concurrent flow problem (paper M2 / Table III)."""
    from repro.api.registry import default_registry

    return default_registry().solver("max_concurrent_flow")(
        sessions,
        routing,
        approximation_ratio=approximation_ratio,
        epsilon=epsilon,
        prescale_epsilon=prescale_epsilon,
    )


def solve_online(
    sessions: Sequence[Session],
    routing: RoutingModel,
    sigma: float = 10.0,
    group_by_members: bool = True,
) -> FlowSolution:
    """Route sessions online, one tree each, in arrival order (paper Table VI)."""
    from repro.api.registry import default_registry

    return default_registry().solver("online")(
        sessions, routing, sigma=sigma, group_by_members=group_by_members
    )


def solve_randomized_rounding(
    fractional: FlowSolution,
    max_trees: int = 1,
    seed: SeedLike = None,
) -> RoundedSelection:
    """Randomized rounding of a fractional solution (paper Table V).

    Takes an already-solved fractional solution, so it stays a direct
    call; the registry's ``"randomized_rounding"`` solver is the
    spec-addressable variant that also performs the fractional solve.
    """
    return RandomMinCongestion(fractional, seed=seed).select_trees(max_trees)


def standalone_session_rates(
    sessions: Sequence[Session],
    routing: RoutingModel,
    epsilon: float = 0.1,
) -> List[float]:
    """Maximum rate of each session when it has the network to itself.

    This is the quantity ``beta_i`` used to bound the concurrent-flow
    optimum; exposed because experiments also report it as the
    "single-session" baseline (Fig. 12 with one session).
    """
    from repro.api.registry import default_registry

    solver = default_registry().solver("max_flow")
    return [
        solver([session], routing, epsilon=epsilon).sessions[0].rate
        for session in sessions
    ]
