"""The batched oracle front: all sessions' tree queries in one pass.

Under fixed IP routing, each oracle evaluates its overlay pair lengths
as ``incidence @ lengths`` — a sparse mat-vec per session per query
round.  When an algorithm queries *every* session against the *same*
length vector (MaxFlow's per-iteration scan over all sessions), those
mat-vecs are one block-stacked product: stack the per-session incidence
matrices once, multiply by the shared length array once per round, and
hand each oracle its row slice.

CSR mat-vec computes each row independently over its stored nonzeros,
and ``vstack`` preserves every row's data order, so the sliced pair
lengths are bit-identical to the per-oracle products — the front is a
pure wall-clock optimisation (asserted in the engine equivalence suite).
Dynamic-routing oracles (per-query Dijkstra, no shared incidence) fall
back to the per-session loop transparently.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix, vstack

from repro.overlay.oracle import MinimumOverlayTreeOracle, OracleResult


class BatchedOracleFront:
    """Serves all-session oracle query rounds in one vectorised pass."""

    def __init__(self, oracles: Sequence[MinimumOverlayTreeOracle]) -> None:
        self._oracles = list(oracles)
        self._stacked: csr_matrix = None
        self._slices: List[Tuple[int, int]] = []
        if self._oracles and all(o.is_fixed for o in self._oracles):
            matrices = [o.incidence for o in self._oracles]
            self._stacked = vstack(matrices, format="csr")
            offset = 0
            for matrix in matrices:
                rows = matrix.shape[0]
                self._slices.append((offset, offset + rows))
                offset += rows

    @property
    def batched(self) -> bool:
        """Whether rounds are served by the stacked mat-vec (fixed routing)."""
        return self._stacked is not None

    def supports(self, indices: Sequence[int]) -> bool:
        """Whether a round over ``indices`` can use the stacked mat-vec.

        Only full-width rounds qualify: a partial round's stacked
        product would compute pair lengths for sessions nobody asked
        about.
        """
        return self._stacked is not None and len(indices) == len(self._oracles)

    def query(
        self,
        indices: Sequence[int],
        edge_lengths: np.ndarray,
    ) -> List[Tuple[int, OracleResult]]:
        """Minimum trees for the requested oracles under shared lengths.

        Results come back in request order, as ``(index, result)`` pairs;
        rounds :meth:`supports` cannot serve fall back to the per-oracle
        loop.
        """
        lengths = np.asarray(edge_lengths, dtype=float)
        if self.supports(indices):
            pair_lengths = self._stacked @ lengths
            return [
                (
                    index,
                    self._oracles[index].minimum_tree_precomputed(
                        pair_lengths[slice(*self._slices[index])], lengths
                    ),
                )
                for index in indices
            ]
        return [(index, self._oracles[index].minimum_tree(lengths)) for index in indices]
