"""The batched oracle front: all sessions' tree queries in one pass.

Under fixed IP routing, each oracle evaluates its overlay pair lengths
as ``incidence @ lengths`` — a sparse mat-vec per session per query
round.  When an algorithm queries *every* session against the *same*
length vector (MaxFlow's per-iteration scan over all sessions), those
mat-vecs are one block-stacked product: stack the per-session incidence
matrices once, multiply by the shared length array once per round, and
hand each oracle its row slice.

Under dynamic routing, each oracle's dominant cost is a multi-source
Dijkstra from its members.  Sessions overlap, and every oracle in a
round queries the *same* length vector — so the front runs a **single**
Dijkstra from the union of all sessions' members per round (weights
validated once, one in-place CSR refresh) and hands each oracle its
distance/predecessor row slices through a shared retained
:class:`~repro.routing.shortest_path.ShortestPathQuery`.

Both modes are pure wall-clock optimisations.  CSR mat-vec computes
each row independently over its stored nonzeros, and ``vstack``
preserves every row's data order, so the sliced pair lengths are
bit-identical to the per-oracle products; scipy's Dijkstra likewise
computes every source row independently, so the union run's rows equal
the rows each oracle's own run would produce — same rows, same MST
weights, same reconstructed paths (asserted in the equivalence suites).
Oracle sets the front cannot serve (mixed routing models, distinct
networks, or a dynamic oracle with its fast path disabled) fall back to
the per-session loop transparently.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix, vstack

from repro.overlay.oracle import MinimumOverlayTreeOracle, OracleResult
from repro.overlay.tree import OverlayTree
from repro.routing.dynamic import DynamicRouting


class BatchedOracleFront:
    """Serves all-session oracle query rounds in one vectorised pass.

    With a :class:`~repro.core.engine.ledger.TreeLedger` attached, the
    front also *consumes ledger columns* for its result lengths: each
    round selects trees only (``select_tree_precomputed`` /
    ``select_tree_from_query``) and evaluates every chosen tree's length
    as one ``lengths @ M`` product over the round's columns, instead of
    one per-tree reduction per oracle.  The ledger evaluates each column
    with the tree's own arithmetic, so results stay bit-identical.
    """

    def __init__(
        self,
        oracles: Sequence[MinimumOverlayTreeOracle],
        ledger=None,
    ) -> None:
        self._oracles = list(oracles)
        self._ledger = ledger
        self._mode: Optional[str] = None
        self._stacked: csr_matrix = None
        self._slices: List[Tuple[int, int]] = []
        self._routing: Optional[DynamicRouting] = None
        self._union_members: Tuple[int, ...] = ()
        if self._oracles and all(o.is_fixed for o in self._oracles):
            matrices = [o.incidence for o in self._oracles]
            self._stacked = vstack(matrices, format="csr")
            offset = 0
            for matrix in matrices:
                rows = matrix.shape[0]
                self._slices.append((offset, offset + rows))
                offset += rows
            self._mode = "fixed"
        elif self._oracles and self._dynamic_batchable(self._oracles):
            self._routing = self._oracles[0].routing
            union = set()
            for oracle in self._oracles:
                union.update(oracle.members)
            self._union_members = tuple(sorted(union))
            self._mode = "dynamic"

    @staticmethod
    def _dynamic_batchable(oracles: Sequence[MinimumOverlayTreeOracle]) -> bool:
        """Whether one union-Dijkstra round can serve every oracle.

        Requires a shared :class:`DynamicRouting` network (the union run
        answers member rows only over one graph) and the one-Dijkstra
        fast path on every oracle — an oracle running the legacy
        multi-Dijkstra pipeline is an ablation baseline and must not be
        silently accelerated.
        """
        first = oracles[0].routing
        if not isinstance(first, DynamicRouting):
            return False
        return all(
            (not o.is_fixed)
            and o.dynamic_fastpath
            and isinstance(o.routing, DynamicRouting)
            and o.routing.network is first.network
            for o in oracles
        )

    @property
    def batched(self) -> bool:
        """Whether rounds are served by a vectorised pass (either mode)."""
        return self._mode is not None

    @property
    def mode(self) -> Optional[str]:
        """``"fixed"`` (stacked mat-vec), ``"dynamic"`` (union Dijkstra),
        or ``None`` (per-oracle fallback)."""
        return self._mode

    @property
    def uses_ledger(self) -> bool:
        """Whether batched rounds evaluate lengths over ledger columns."""
        return self._ledger is not None and self._mode is not None

    def supports(self, indices: Sequence[int]) -> bool:
        """Whether a round over ``indices`` can use the batched pass.

        Only full-width rounds qualify: a partial round's stacked
        product (or union Dijkstra) would compute pair lengths for
        sessions nobody asked about.
        """
        return self._mode is not None and len(indices) == len(self._oracles)

    def query(
        self,
        indices: Sequence[int],
        edge_lengths: np.ndarray,
    ) -> List[Tuple[int, OracleResult]]:
        """Minimum trees for the requested oracles under shared lengths.

        Results come back in request order, as ``(index, result)`` pairs;
        rounds :meth:`supports` cannot serve fall back to the per-oracle
        loop.
        """
        lengths = np.asarray(edge_lengths, dtype=float)
        if self.supports(indices):
            if self._mode == "fixed":
                pair_lengths = self._stacked @ lengths
                if self._ledger is not None:
                    picks = [
                        (
                            index,
                            self._oracles[index].select_tree_precomputed(
                                pair_lengths[slice(*self._slices[index])]
                            ),
                        )
                        for index in indices
                    ]
                    return self._ledger_results(picks, lengths)
                return [
                    (
                        index,
                        self._oracles[index].minimum_tree_precomputed(
                            pair_lengths[slice(*self._slices[index])], lengths
                        ),
                    )
                    for index in indices
                ]
            # Dynamic mode: one Dijkstra from the union of all sessions'
            # members — weight validation and the in-place CSR refresh
            # happen once per round, and overlapping members' rows are
            # computed once and shared across every oracle.
            shared = self._routing.query(self._union_members, lengths)
            if self._ledger is not None:
                picks = [
                    (index, self._oracles[index].select_tree_from_query(shared))
                    for index in indices
                ]
                return self._ledger_results(picks, lengths)
            return [
                (index, self._oracles[index].minimum_tree_from_query(shared, lengths))
                for index in indices
            ]
        return [(index, self._oracles[index].minimum_tree(lengths)) for index in indices]

    def _ledger_results(
        self, picks: Sequence[Tuple[int, "OverlayTree"]], lengths: np.ndarray
    ) -> List[Tuple[int, OracleResult]]:
        """One ``lengths @ M`` product for the whole round's tree lengths.

        The trees were registered at construction time by their oracles
        (content-addressed), so ``register`` here is a dict hit that
        resolves each tree's column.
        """
        columns = [self._ledger.register(tree) for _, tree in picks]
        tree_lengths = self._ledger.lengths_for(columns, lengths)
        return [
            (index, OracleResult(tree=tree, length=float(tree_lengths[i])))
            for i, (index, tree) in enumerate(picks)
        ]
