"""Strategy points of the phase engine: step policies and stopping rules.

A :class:`StepPolicy` defines what one engine step *is* for a concrete
algorithm — which oracles to query, how to pick among the returned
trees, and how much flow to route with which length-update factors.  A
:class:`StoppingRule` defines when the loop ends.  The three policies
here express the paper's Tables I, III and VI on top of one driver; the
classes are open for plugin algorithms that follow the same
multiplicative-weights skeleton.

Every policy preserves the exact oracle-query order, comparison
direction and update arithmetic of the hand-rolled loops it replaced, so
ported solvers stay bit-identical (see ``tests/test_engine_equivalence``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.overlay.oracle import OracleResult
from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine.driver import PhaseEngine


@dataclass(frozen=True)
class StepRequest:
    """Which oracle queries one step needs.

    ``indices`` lists engine oracle indices in query order; ``batched``
    asks the engine to serve them through the
    :class:`~repro.core.engine.batch.BatchedOracleFront` (one vectorised
    pass) when the front supports it.  ``prefetched`` carries results a
    policy already holds from an earlier grouped round (the stacked
    online path): the engine consumes them verbatim instead of querying
    — the policy guarantees they equal what a fresh query would return.
    """

    indices: Tuple[int, ...]
    batched: bool = False
    prefetched: Optional[Tuple[Tuple[int, OracleResult], ...]] = None


@dataclass(frozen=True)
class Selection:
    """The tree a step settled on, plus the policy's comparison score."""

    index: int
    result: OracleResult
    score: float


@dataclass(frozen=True)
class RouteAction:
    """One routing decision: flow on a tree plus the length update.

    ``factors`` aligns with ``tree.physical_edges``; ``congestion_delta``
    (optional, same alignment) is added to the engine's congestion
    vector — the online algorithm's ``l_e`` bookkeeping.  ``amount`` is
    recorded in the engine's per-session flow accumulators when flow
    accumulation is on.
    """

    index: int
    tree: OverlayTree
    amount: float
    factors: np.ndarray
    congestion_delta: Optional[np.ndarray] = None


class StoppingRule(ABC):
    """When the engine's loop ends (beyond policy exhaustion)."""

    def before_step(self, engine: "PhaseEngine") -> bool:
        """Checked at the top of every step, before any oracle query."""
        return False

    def after_selection(self, engine: "PhaseEngine", selection: Selection) -> bool:
        """Checked after a step's tree selection, before routing."""
        return False


class RunToExhaustion(StoppingRule):
    """Never stops; the run ends when the policy runs out of steps."""


class NormalizedLengthStop(StoppingRule):
    """MaxFlow termination (Table I line 6): stop once the minimum
    normalised tree length reaches 1 (evaluated in log space by the
    underflow-safe length function)."""

    def after_selection(self, engine: "PhaseEngine", selection: Selection) -> bool:
        return engine.lengths.at_least_one(selection.score)


class DualObjectiveStop(StoppingRule):
    """MaxConcurrentFlow termination (Table III): stop once the dual
    objective ``sum_e c_e d_e`` reaches 1 (log-space evaluation)."""

    def __init__(self, weights: np.ndarray) -> None:
        self._weights = np.asarray(weights, dtype=float)

    def before_step(self, engine: "PhaseEngine") -> bool:
        return engine.lengths.weighted_sum_log(self._weights) >= 0.0


class StepPolicy(ABC):
    """What one step is: query → select → route."""

    def bind(self, engine: "PhaseEngine") -> None:
        """Called once when the engine adopts this policy."""

    @abstractmethod
    def next_request(self, engine: "PhaseEngine") -> Optional[StepRequest]:
        """The next step's oracle queries, or ``None`` when exhausted."""

    @abstractmethod
    def select(
        self,
        engine: "PhaseEngine",
        results: Sequence[Tuple[int, OracleResult]],
    ) -> Selection:
        """Pick one tree among the query results."""

    @abstractmethod
    def route(self, engine: "PhaseEngine", selection: Selection) -> RouteAction:
        """Turn the selected tree into flow + length-update factors."""

    def on_routed(self, engine: "PhaseEngine", action: RouteAction) -> None:
        """Observe a completed step (custom bookkeeping hook)."""


class MaxFlowPolicy(StepPolicy):
    """Table I: every iteration queries *all* sessions, routes the
    bottleneck capacity of the tree with minimum normalised length, and
    multiplies used-edge lengths by ``1 + eps * n_e(t) * c / c_e``.

    The all-session query is the engine's batched-front showcase: one
    stacked incidence mat-vec serves every session's overlay lengths.
    """

    def __init__(self, epsilon: float, max_session_size: int) -> None:
        self._epsilon = float(epsilon)
        self._max_size = int(max_session_size)
        self._all: Tuple[int, ...] = ()

    def bind(self, engine: "PhaseEngine") -> None:
        self._all = tuple(range(len(engine.oracles)))

    def next_request(self, engine: "PhaseEngine") -> Optional[StepRequest]:
        return StepRequest(indices=self._all, batched=True)

    def select(
        self,
        engine: "PhaseEngine",
        results: Sequence[Tuple[int, OracleResult]],
    ) -> Selection:
        # Strict < with in-order iteration: ties keep the earliest
        # session, exactly as the pre-engine loop did.
        best_index = -1
        best_norm = np.inf
        best_result: Optional[OracleResult] = None
        for index, result in results:
            norm = engine.oracles[index].normalized_length(result, self._max_size)
            if norm < best_norm:
                best_norm = norm
                best_index = index
                best_result = result
        return Selection(index=best_index, result=best_result, score=best_norm)

    def route(self, engine: "PhaseEngine", selection: Selection) -> RouteAction:
        tree = selection.result.tree
        capacities = engine.capacities
        bottleneck = tree.bottleneck_capacity(capacities)
        used = tree.physical_edges
        factors = 1.0 + self._epsilon * tree.usage_values * bottleneck / capacities[used]
        return RouteAction(
            index=selection.index, tree=tree, amount=bottleneck, factors=factors
        )


class ConcurrentPhasePolicy(StepPolicy):
    """Table III: phases iterate the sessions in order; within a session,
    steps route ``min(remaining, bottleneck)`` until its (scaled) demand
    is met; after ``phase_budget`` phases without termination the working
    demands double (halving the unknown optimum ``lambda``).

    The policy owns the phase/session/remaining bookkeeping; the dual
    stopping rule is the engine's per-step check, so a phase or session
    boundary is only crossed when the run is still live — matching the
    ``while remaining > 0 and not dual()`` structure of the original
    loop exactly.
    """

    def __init__(
        self,
        epsilon: float,
        working_demands: np.ndarray,
        phase_budget: int,
    ) -> None:
        self._epsilon = float(epsilon)
        self._working_demands = np.asarray(working_demands, dtype=float).copy()
        self._phase_budget = int(phase_budget)
        self._session_index = -1  # -1: before the first phase
        self._remaining = 0.0
        self._phases = 0
        self._doublings = 0
        self._phases_since_doubling = 0

    @property
    def phases(self) -> int:
        """Completed-or-started phase count (the paper's phase metric)."""
        return self._phases

    @property
    def doublings(self) -> int:
        """How many times the working demands were doubled."""
        return self._doublings

    def _start_phase(self, engine: "PhaseEngine") -> None:
        # Doubling check sits at the completed-phase boundary; the
        # engine's stopping rule already established the dual objective
        # is not reached, matching the original `and not dual()` guard.
        if self._phases > 0 and self._phases_since_doubling >= self._phase_budget:
            self._working_demands = self._working_demands * 2.0
            self._doublings += 1
            self._phases_since_doubling = 0
        self._phases += 1
        self._phases_since_doubling += 1
        self._session_index = 0
        self._remaining = float(self._working_demands[0])
        engine.instrumentation.phase_started(self._phases, engine.instrumentation.steps)

    def next_request(self, engine: "PhaseEngine") -> Optional[StepRequest]:
        num_sessions = len(engine.oracles)
        if self._session_index < 0:
            self._start_phase(engine)
        while self._remaining <= 0:
            self._session_index += 1
            if self._session_index >= num_sessions:
                self._start_phase(engine)
            else:
                self._remaining = float(self._working_demands[self._session_index])
        return StepRequest(indices=(self._session_index,), batched=False)

    def select(
        self,
        engine: "PhaseEngine",
        results: Sequence[Tuple[int, OracleResult]],
    ) -> Selection:
        index, result = results[0]
        return Selection(index=index, result=result, score=result.length)

    def route(self, engine: "PhaseEngine", selection: Selection) -> RouteAction:
        tree = selection.result.tree
        capacities = engine.capacities
        bottleneck = tree.bottleneck_capacity(capacities)
        amount = min(self._remaining, bottleneck)
        self._remaining -= amount
        used = tree.physical_edges
        factors = 1.0 + self._epsilon * tree.usage_values * amount / capacities[used]
        return RouteAction(
            index=selection.index, tree=tree, amount=amount, factors=factors
        )


@dataclass
class OnlineArrivalPolicy(StepPolicy):
    """Table VI: each step routes one arriving session on the minimum
    overlay tree under the current lengths, multiplies used-edge lengths
    by ``1 + sigma * load`` and adds the load to the congestion vector.

    Arrivals are *fed* (:meth:`feed`) rather than fixed up front so the
    incremental ``accept``/``accept_all`` API keeps working; oracles are
    shared per member set through the engine's dynamic oracle table.

    **Stacked grouping.**  On a stacked engine under fixed routing, a
    maximal prefix of the pending queue whose sessions' fixed footprints
    (``covered_edges``) are pairwise disjoint is queried as *one*
    grouped round (one ledger length product for the whole group); the
    head routes immediately and the rest are held as ``prefetched``
    results for the following steps.  This is exact, not heuristic: a
    fixed oracle's decision depends only on the lengths of its covered
    edges, each arrival's update touches only its own tree's edges
    (inside its own footprint), so routing one group member never
    perturbs another's query — the prefetched trees are bitwise the
    trees sequential queries would select.  The one cross-footprint
    coupling, length renormalisation, is detected through
    ``log_offset``: if it moved since the group was fetched, the stash
    is discarded and the remaining arrivals re-query.  Updates are
    always applied per arrival, never batched across arrivals.
    """

    sigma: float
    demand_scale: float = 1.0
    max_group: int = 32
    _pending: List[Session] = field(default_factory=list)
    _assignments: List[Tuple[Session, OverlayTree, float]] = field(default_factory=list)
    _prefetched: List[Tuple[int, OracleResult]] = field(default_factory=list)
    _prefetch_offset: float = 0.0
    _covered: Dict[int, np.ndarray] = field(default_factory=dict)

    def feed(self, session: Session) -> None:
        """Queue one arriving session for the next engine step."""
        self._pending.append(session)

    @property
    def assignments(self) -> List[Tuple[Session, OverlayTree, float]]:
        """(session, tree, original demand) per accepted arrival, in order."""
        return self._assignments

    def _independent_prefix(self, engine: "PhaseEngine") -> Tuple[int, ...]:
        """Oracle indices of a pending prefix with pairwise-disjoint footprints."""
        taken = np.zeros(engine.capacities.shape[0], dtype=bool)
        group: List[int] = []
        for session in self._pending[: self.max_group]:
            index = engine.oracle_index_for(session)
            oracle = engine.oracles[index]
            # Only fixed routing: a fixed session's covered_edges exactly
            # bounds every tree it can ever route, so disjointness proves
            # independence; dynamic footprints carry no such bound.
            if not oracle.is_fixed or index in group:
                break
            covered = self._covered.get(index)
            if covered is None:
                covered = oracle.covered_edges()
                self._covered[index] = covered
            if taken[covered].any():
                break
            taken[covered] = True
            group.append(index)
        return tuple(group)

    def next_request(self, engine: "PhaseEngine") -> Optional[StepRequest]:
        if not self._pending:
            return None
        session = self._pending[0]
        index = engine.oracle_index_for(session)
        if self._prefetched:
            if engine.lengths.log_offset != self._prefetch_offset:
                # A renormalisation rescaled the relative lengths since
                # the group round; re-query to match sequential behaviour
                # exactly.
                self._prefetched.clear()
            else:
                pre_index, result = self._prefetched.pop(0)
                return StepRequest(
                    indices=(pre_index,), prefetched=((pre_index, result),)
                )
        if engine.stacked and len(self._pending) > 1:
            group = self._independent_prefix(engine)
            if len(group) > 1:
                return StepRequest(indices=group, batched=False)
        return StepRequest(indices=(index,), batched=False)

    def select(
        self,
        engine: "PhaseEngine",
        results: Sequence[Tuple[int, OracleResult]],
    ) -> Selection:
        index, result = results[0]
        if len(results) > 1:
            # Grouped round: the head routes now; hold the rest for the
            # following steps, pinned to the current renormalisation
            # state.
            self._prefetched = list(results[1:])
            self._prefetch_offset = engine.lengths.log_offset
        return Selection(index=index, result=result, score=result.length)

    def route(self, engine: "PhaseEngine", selection: Selection) -> RouteAction:
        session = self._pending.pop(0)
        tree = selection.result.tree
        demand = session.demand * self.demand_scale
        used = tree.physical_edges
        load = tree.usage_values * demand / engine.capacities[used]
        factors = 1.0 + self.sigma * load
        self._assignments.append((session, tree, session.demand))
        return RouteAction(
            index=selection.index,
            tree=tree,
            amount=session.demand,
            factors=factors,
            congestion_delta=load,
        )
