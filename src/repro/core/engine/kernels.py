"""Pluggable kernel backends for the stacked tree ledger's hot ops.

The ledger's round evaluation (`TreeLedger.lengths_for`) historically
ran a Python loop of per-column BLAS dots: bit-identity to
``OverlayTree.length`` pins each column to ``np.dot``, and ``np.dot``'s
SIMD/pairwise accumulation order is opaque, so the loop could not be
fused into one vectorised pass.  This module breaks that impasse by
making the accumulation order itself a backend property:

* ``numpy`` — the historical code paths (per-column ``np.dot``,
  ``np.add.at``, ``np.multiply.at``).  Zero-dependency default,
  bit-identical to every pre-backend release.
* ``ordered`` — the pure-NumPy *ordered reference*: every reduction is
  an exact left-to-right sequential sum, computed with the two NumPy
  primitives that accumulate strictly in input order (``np.bincount``
  with weights, whose per-bin adds happen in input order, and
  ``np.cumsum``, whose last element is the running left-to-right sum —
  both verified bit-identical to a scalar ``s += x`` loop in the
  conformance suite, unlike ``np.add.reduce``/``reduceat``/``einsum``,
  which use pairwise/SIMD partial sums).  One fused pass per op, no
  Python per-column loop.
* ``numba`` — ``@njit``-compiled scalar loops implementing the *same*
  left-to-right order, so they are bit-identical to ``ordered`` by
  construction.  Optional: when numba is not importable the backend
  resolves to ``numpy`` with a one-time warning.

Because the pinned order is a property of the backend, the loop path
(``OverlayTree.length``) and the stacked path (ledger ops) stay
bit-identical to *each other* under every backend: under ``numpy`` both
use the historical dots, under ``ordered``/``numba`` both use the
left-to-right sum.  Cross-backend agreement is floating-point
round-off (``allclose``), exactly like the pre-existing
``lengths_for_all`` analytics kernel.

Knob pattern mirrors ``stacked_trees``: a process-wide default
(:func:`configure_kernel_backend`, seeded from the ``REPRO_KERNELS``
environment variable), a per-solver ``kernel_backend`` config field
(resolved at engine construction), and a thread-local override the
engine installs around each step (:func:`use_kernel_backend`) so
tree/length code deep in the call stack sees the engine's backend —
thread-local because the serve layer runs concurrent solves on worker
threads.

This module is an import leaf (numpy + stdlib only): it must stay
importable from :mod:`repro.overlay.tree` without touching the
``repro.core.engine`` package namespace mid-initialisation.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Union

import numpy as np

from repro.util.errors import ConfigurationError

KERNELS_ENV_VAR = "REPRO_KERNELS"

# One-time JIT compilation cost, per op (numba backend warmup).
COMPILE_SECONDS_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class KernelBackend:
    """The ``numpy`` backend: the historical, zero-dependency code paths.

    Subclasses override the ops below; the ledger / length-function /
    tree call sites dispatch on :attr:`ordered` (does this backend pin
    the left-to-right sum, enabling the fused one-pass kernels?) and
    never import anything optional themselves.
    """

    name = "numpy"
    #: True when the backend requires a JIT toolchain (numba).
    compiled = False
    #: True when every reduction is the pinned left-to-right sum (the
    #: fused ledger kernels engage only under ordered backends; the
    #: numpy backend keeps the historical per-column BLAS dots).
    ordered = False

    def warmup(self) -> None:
        """Compile/prepare kernels (no-op for interpreted backends)."""

    # -- reductions ----------------------------------------------------
    def column_lengths(
        self,
        rows: np.ndarray,
        values: np.ndarray,
        ids: np.ndarray,
        num_columns: int,
        lengths: np.ndarray,
    ) -> np.ndarray:
        """Per-column tree lengths over CSC entries grouped by ``ids``.

        ``out[c] = sum over entries k with ids[k] == c of
        values[k] * lengths[rows[k]]`` — entries of one column are
        contiguous and in stored order, so an in-input-order
        accumulation is the per-column left-to-right sum.
        """
        out = np.zeros(int(num_columns), dtype=float)
        if rows.size == 0:
            return out
        gathered = lengths[rows]
        boundaries = np.flatnonzero(np.diff(ids)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [ids.size]))
        for s, e in zip(starts, ends):
            out[ids[s]] = float(np.dot(values[s:e], gathered[s:e]))
        return out

    def tree_length(
        self, rows: np.ndarray, values: np.ndarray, lengths: np.ndarray
    ) -> float:
        """One tree's length over its sparse footprint."""
        return float(np.dot(values, lengths[rows]))

    # -- scatter -------------------------------------------------------
    def scatter_add(
        self, out: np.ndarray, rows: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """``out[rows] += values`` with duplicate rows accumulating in
        input order (the ``np.add.at`` semantics)."""
        np.add.at(out, rows, values)
        return out

    def scatter_add_fresh(
        self, out: np.ndarray, rows: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """:meth:`scatter_add` for an ``out`` known to be all zeros.

        Starting from zeros, the in-input-order accumulation equals the
        per-bin left-to-right sum, which ordered backends exploit with
        a single ``np.bincount`` pass.
        """
        np.add.at(out, rows, values)
        return out

    # -- length updates ------------------------------------------------
    def multiply_at(
        self, rel: np.ndarray, edge_ids: np.ndarray, factors: np.ndarray
    ) -> None:
        """Duplicate-safe ``rel[edge_ids] *= factors`` accumulating every
        factor in input order (the ``np.multiply.at`` semantics)."""
        np.multiply.at(rel, edge_ids, factors)

    def multiply_unique(
        self, rel: np.ndarray, edge_ids: np.ndarray, factors: np.ndarray
    ) -> None:
        """``rel[edge_ids] *= factors`` for duplicate-free ``edge_ids``."""
        rel[edge_ids] *= factors


class OrderedKernelBackend(KernelBackend):
    """The pure-NumPy ordered reference: exact left-to-right sums.

    ``np.bincount(ids, weights=w)`` adds each weight into its bin in
    input order, and ``np.cumsum(w)[-1]`` is the running left-to-right
    sum — both bit-identical to ``s = 0.0; for x in w: s += x`` (IEEE
    ``0.0 + x == x`` for the positive operands these kernels see).
    Neither re-associates, unlike ``np.add.reduce``/``np.sum``.  These
    are the fused one-pass kernels the ISSUE graduates into solver
    paths, and the bit-identity oracle the compiled backend is tested
    against.
    """

    name = "ordered"
    ordered = True

    def column_lengths(self, rows, values, ids, num_columns, lengths):
        if rows.size == 0:
            return np.zeros(int(num_columns), dtype=float)
        products = values * lengths[rows]
        return np.bincount(ids, weights=products, minlength=int(num_columns))

    def tree_length(self, rows, values, lengths):
        if rows.size == 0:
            return 0.0
        return float(np.cumsum(values * lengths[rows])[-1])

    def scatter_add_fresh(self, out, rows, values):
        if rows.size:
            out[:] = np.bincount(rows, weights=values, minlength=out.size)
        return out


class NumbaKernelBackend(OrderedKernelBackend):
    """``@njit``-compiled scalar loops pinning the same left-to-right sum.

    Optional: construction raises ``ImportError`` when numba is absent
    (the registry then falls back to ``numpy`` with a one-time
    warning).  :meth:`warmup` compiles every kernel eagerly — at
    backend resolution, not inside a solve — and publishes the one-time
    JIT cost to the ``repro_engine_kernel_compile_seconds`` histogram.
    """

    name = "numba"
    compiled = True
    ordered = True

    def __init__(self) -> None:
        import numba  # noqa: F401 — availability probe

        self._numba = numba
        self._ops: Dict[str, Callable] = {}

    def warmup(self) -> None:
        if self._ops:
            return
        njit = self._numba.njit

        @njit
        def column_lengths(rows, values, ids, num_columns, lengths):
            out = np.zeros(num_columns, dtype=np.float64)
            for k in range(rows.size):
                out[ids[k]] += values[k] * lengths[rows[k]]
            return out

        @njit
        def tree_length(rows, values, lengths):
            total = 0.0
            for k in range(rows.size):
                total += values[k] * lengths[rows[k]]
            return total

        @njit
        def scatter_add(out, rows, values):
            for k in range(rows.size):
                out[rows[k]] += values[k]

        @njit
        def multiply_at(rel, edge_ids, factors):
            for k in range(edge_ids.size):
                rel[edge_ids[k]] *= factors[k]

        kernels = {
            "column_lengths": column_lengths,
            "tree_length": tree_length,
            "scatter_add": scatter_add,
            "multiply_at": multiply_at,
        }
        # Trigger compilation per op on tiny representative arguments so
        # the first solve pays zero JIT cost, and record each op's
        # compile time for the /metrics histogram.
        i64 = np.zeros(1, dtype=np.int64)
        f64 = np.zeros(1, dtype=np.float64)
        ones = np.ones(1, dtype=np.float64)
        probes = {
            "column_lengths": (i64, f64, i64, 1, ones),
            "tree_length": (i64, f64, ones),
            "scatter_add": (f64.copy(), i64, f64),
            "multiply_at": (ones.copy(), i64, ones),
        }
        for op, fn in kernels.items():
            start = time.perf_counter()
            fn(*probes[op])
            _observe_compile_seconds(op, time.perf_counter() - start)
        self._ops = kernels

    def column_lengths(self, rows, values, ids, num_columns, lengths):
        self.warmup()
        return self._ops["column_lengths"](
            np.ascontiguousarray(rows),
            np.ascontiguousarray(values),
            np.ascontiguousarray(ids),
            int(num_columns),
            np.ascontiguousarray(lengths),
        )

    def tree_length(self, rows, values, lengths):
        self.warmup()
        return float(
            self._ops["tree_length"](
                np.ascontiguousarray(rows),
                np.ascontiguousarray(values),
                np.ascontiguousarray(lengths),
            )
        )

    def scatter_add(self, out, rows, values):
        self.warmup()
        self._ops["scatter_add"](
            out, np.ascontiguousarray(rows), np.ascontiguousarray(values)
        )
        return out

    def scatter_add_fresh(self, out, rows, values):
        return self.scatter_add(out, rows, values)

    def multiply_at(self, rel, edge_ids, factors):
        self.warmup()
        self._ops["multiply_at"](
            rel, np.ascontiguousarray(edge_ids), np.ascontiguousarray(factors)
        )

    def multiply_unique(self, rel, edge_ids, factors):
        # Duplicate-free ids make the sequential loop and the fancy
        # multiply the same elementwise operation; reuse the compiled
        # loop so the update is one pass with no temporary.
        self.multiply_at(rel, edge_ids, factors)


def _observe_compile_seconds(op: str, seconds: float) -> None:
    """Publish one op's JIT compile time to the metrics registry."""
    try:
        from repro.obs import metrics as obs_metrics

        reg = obs_metrics.registry()
        if not reg.enabled:
            return
        reg.histogram(
            "repro_engine_kernel_compile_seconds",
            "One-time JIT compilation cost of compiled kernel ops",
            labels={"op": op},
            buckets=COMPILE_SECONDS_BUCKETS,
        ).observe(seconds)
    except Exception:  # pragma: no cover — metrics must never break solves
        pass


# ----------------------------------------------------------------------
# registry + knobs (mirrors the stacked_trees / memoize pattern)
# ----------------------------------------------------------------------
_BACKEND_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_BACKEND_INSTANCES: Dict[str, KernelBackend] = {}
_FALLBACK_WARNED: set = set()
_KERNEL_BACKEND_DEFAULT = "numpy"
_ACTIVE = threading.local()


def register_kernel_backend(
    name: str, factory: Optional[Callable[[], KernelBackend]] = None
):
    """Register a kernel-backend factory under ``name`` (decorator-friendly).

    The factory is called lazily on first resolution and its instance
    cached process-wide; a factory that raises (e.g. an optional import
    failing) makes the name fall back to ``numpy`` with a one-time
    warning.
    """
    if not name:
        raise ConfigurationError("kernel backend name must be non-empty")
    key = name.strip().lower()

    def decorate(fn):
        if key in _BACKEND_FACTORIES:
            raise ConfigurationError(
                f"kernel backend {key!r} is already registered; "
                f"pick a different name or remove the existing entry first"
            )
        _BACKEND_FACTORIES[key] = fn
        return fn

    return decorate if factory is None else decorate(factory)


def unregister_kernel_backend(name: str) -> None:
    """Remove a registered backend (plugin teardown / test hygiene)."""
    key = str(name).strip().lower()
    if key not in _BACKEND_FACTORIES:
        raise ConfigurationError(f"kernel backend {key!r} is not registered")
    del _BACKEND_FACTORIES[key]
    _BACKEND_INSTANCES.pop(key, None)
    _FALLBACK_WARNED.discard(key)


def kernel_backend_names() -> List[str]:
    """Sorted names of registered kernel backends."""
    return sorted(_BACKEND_FACTORIES)


def resolve_kernel_backend(
    name: Optional[Union[str, KernelBackend]] = None,
) -> KernelBackend:
    """The backend instance for ``name`` (``None`` → process default).

    Unknown names raise :class:`ConfigurationError`; known-but-
    unavailable backends (numba not importable, compilation failing)
    fall back to ``numpy`` with a one-time warning, so a config or
    ``REPRO_KERNELS`` pointing at numba degrades gracefully on
    machines without it.
    """
    if isinstance(name, KernelBackend):
        return name
    key = (_KERNEL_BACKEND_DEFAULT if name is None else str(name)).strip().lower()
    instance = _BACKEND_INSTANCES.get(key)
    if instance is not None:
        return instance
    factory = _BACKEND_FACTORIES.get(key)
    if factory is None:
        known = ", ".join(kernel_backend_names()) or "<none>"
        raise ConfigurationError(
            f"unknown kernel backend {key!r}; registered: {known}"
        )
    try:
        instance = factory()
        instance.warmup()
    except Exception as exc:
        if key not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(key)
            warnings.warn(
                f"kernel backend {key!r} is unavailable ({exc!r}); "
                f"falling back to 'numpy'",
                RuntimeWarning,
                stacklevel=2,
            )
        instance = resolve_kernel_backend("numpy")
    _BACKEND_INSTANCES[key] = instance
    return instance


def configure_kernel_backend(name: str) -> str:
    """Set the process-wide default kernel backend; returns the previous.

    Engines resolve the default at construction time; existing engines
    are unaffected.  The name must be registered (availability is
    checked at resolution, where an unavailable compiled backend falls
    back to ``numpy`` with a warning).
    """
    global _KERNEL_BACKEND_DEFAULT
    key = str(name).strip().lower()
    if key not in _BACKEND_FACTORIES:
        known = ", ".join(kernel_backend_names()) or "<none>"
        raise ConfigurationError(
            f"unknown kernel backend {key!r}; registered: {known}"
        )
    previous = _KERNEL_BACKEND_DEFAULT
    _KERNEL_BACKEND_DEFAULT = key
    return previous


def kernel_backend_default() -> str:
    """Current process-wide default kernel backend name."""
    return _KERNEL_BACKEND_DEFAULT


def active_kernels() -> KernelBackend:
    """The backend in effect on this thread (override, else default)."""
    backend = getattr(_ACTIVE, "backend", None)
    if backend is not None:
        return backend
    return resolve_kernel_backend(None)


@contextmanager
def use_kernel_backend(
    backend: Optional[Union[str, KernelBackend]],
) -> Iterator[KernelBackend]:
    """Thread-locally install ``backend`` for the duration of the block.

    The engine wraps each step in this so every op in the step's call
    stack — ledger products, ``OverlayTree.length`` in the loop path,
    ``LengthFunction.multiply_batch`` — sees the engine's configured
    backend.  Thread-local, so concurrent solves on serve worker
    threads never observe each other's override.
    """
    resolved = resolve_kernel_backend(backend)
    previous = getattr(_ACTIVE, "backend", None)
    _ACTIVE.backend = resolved
    try:
        yield resolved
    finally:
        _ACTIVE.backend = previous


register_kernel_backend("numpy", KernelBackend)
register_kernel_backend("ordered", OrderedKernelBackend)
register_kernel_backend("numba", NumbaKernelBackend)


def _initial_backend_name() -> str:
    """The boot-time default: ``REPRO_KERNELS`` when set and registered."""
    raw = os.environ.get(KERNELS_ENV_VAR, "").strip().lower()
    if not raw:
        return "numpy"
    if raw not in _BACKEND_FACTORIES:
        warnings.warn(
            f"{KERNELS_ENV_VAR}={raw!r} names no registered kernel backend "
            f"(known: {', '.join(kernel_backend_names())}); using 'numpy'",
            RuntimeWarning,
            stacklevel=2,
        )
        return "numpy"
    return raw


_KERNEL_BACKEND_DEFAULT = _initial_backend_name()
