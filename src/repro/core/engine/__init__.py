"""repro.core.engine — the shared multiplicative-weights phase engine.

The paper's three algorithms (MaxFlow Table I, MaxConcurrentFlow
Table III, Online-MinCongestion Table VI) are one skeleton: update
exponential edge lengths, ask the minimum-overlay-tree oracle for a
tree, record a tree flow, test a stopping rule.  This package owns that
skeleton once, with the per-algorithm differences expressed as pluggable
strategies:

* :class:`PhaseEngine` — the driver: the step loop, flow accumulation,
  length updates, congestion tracking, step-cap enforcement, and
  instrumentation emission.
* :class:`StepPolicy` — what one step *is*: which oracles to query, how
  to pick among the results, and how much flow to route with which
  length-update factors (:class:`MaxFlowPolicy`,
  :class:`ConcurrentPhasePolicy`, :class:`OnlineArrivalPolicy`).
* :class:`StoppingRule` — when the loop ends
  (:class:`DualObjectiveStop`, :class:`NormalizedLengthStop`,
  :class:`RunToExhaustion`).
* :class:`BatchedOracleFront` — evaluates *all* sessions' overlay tree
  queries for an iteration in one vectorised pass over the shared
  length array (stacked sparse incidence mat-vec under fixed routing;
  one union-of-members Dijkstra with shared distance/predecessor rows
  under dynamic routing), bit-identical to the per-session loop it
  replaces.
* :class:`TreeLedger` — the stacked-tree representation: one shared
  growth-doubling incidence matrix holding a column per distinct
  memoized tree across all sessions and steps (content-addressed by
  ``OverlayTree.canonical_key``), so a round's tree lengths are one
  ``lengths @ M`` product and flow/congestion extraction is one
  ``M @ weights`` scatter.  On by default (``stacked_trees`` knob /
  :func:`configure_stacked_trees`); the per-tree loop remains as the
  bit-identical ablation baseline.
* :mod:`~repro.core.engine.kernels` — the pluggable kernel-backend
  registry behind the ledger/length hot ops: ``numpy`` (default, the
  historical code paths), ``ordered`` (pure-NumPy pinned left-to-right
  accumulation, the bit-identity oracle), and ``numba``
  (``@njit``-compiled, optional, falls back to numpy with a one-time
  warning).  Selected process-wide (:func:`configure_kernel_backend`,
  ``REPRO_KERNELS``) or per solver (``kernel_backend`` config knob).
* :class:`Instrumentation` — per-step events (oracle calls, phase
  boundaries, congestion snapshots) and counters, replacing the ad-hoc
  counters solvers used to hand-maintain; its :meth:`snapshot` rides on
  :class:`~repro.core.result.FlowSolution` and into
  :class:`~repro.api.service.SolveReport` JSON.

The engine is a pure refactoring seam: each ported solver produces
bit-identical :class:`~repro.core.result.FlowSolution`s to its
pre-refactor loop (asserted in ``tests/test_engine_equivalence.py``).
"""

from repro.core.engine.batch import BatchedOracleFront
from repro.core.engine.driver import EngineRun, PhaseEngine
from repro.core.engine.instrumentation import EngineEvent, Instrumentation, event_tap
from repro.core.engine.kernels import (
    KernelBackend,
    active_kernels,
    configure_kernel_backend,
    kernel_backend_default,
    kernel_backend_names,
    register_kernel_backend,
    resolve_kernel_backend,
    use_kernel_backend,
)
from repro.core.engine.ledger import (
    TreeLedger,
    configure_stacked_trees,
    stacked_trees_default,
)
from repro.core.engine.strategies import (
    ConcurrentPhasePolicy,
    DualObjectiveStop,
    MaxFlowPolicy,
    NormalizedLengthStop,
    OnlineArrivalPolicy,
    RouteAction,
    RunToExhaustion,
    Selection,
    StepPolicy,
    StepRequest,
    StoppingRule,
)

__all__ = [
    "PhaseEngine",
    "EngineRun",
    "BatchedOracleFront",
    "TreeLedger",
    "configure_stacked_trees",
    "stacked_trees_default",
    "KernelBackend",
    "active_kernels",
    "configure_kernel_backend",
    "kernel_backend_default",
    "kernel_backend_names",
    "register_kernel_backend",
    "resolve_kernel_backend",
    "use_kernel_backend",
    "Instrumentation",
    "EngineEvent",
    "event_tap",
    "StepPolicy",
    "StoppingRule",
    "StepRequest",
    "Selection",
    "RouteAction",
    "MaxFlowPolicy",
    "ConcurrentPhasePolicy",
    "OnlineArrivalPolicy",
    "NormalizedLengthStop",
    "DualObjectiveStop",
    "RunToExhaustion",
]
