"""Per-run engine telemetry: counters plus a bounded event log.

Every :class:`~repro.core.engine.driver.PhaseEngine` run carries one
:class:`Instrumentation` instance.  The engine emits *events* at the
points the ISSUE-level questions ("how many phases?", "how much time in
batched versus per-session oracle queries?", "how did congestion
evolve?") are answered from:

* ``phase`` — a phase boundary (MaxConcurrentFlow's outer loop),
* ``oracle`` — one oracle query round, with the query count and whether
  the batched front served it,
* ``congestion`` — a max-congestion snapshot (online runs).

Counters are exact; the event log is bounded (default 256 entries) so a
hundred-thousand-step run cannot balloon a report — dropped events are
counted, never silently lost.  :meth:`Instrumentation.snapshot` renders
everything as a plain-JSON dict that rides on
:attr:`repro.core.result.FlowSolution.instrumentation` and survives the
:class:`~repro.api.service.SolveReport` round trip byte-for-byte.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

ENGINE_SCHEMA = "PhaseEngine/v3"

# Default bound on the retained event log.  Solver configs expose
# ``max_events`` so callers can widen (or zero out) the log per run
# instead of being pinned to this process-wide default.
DEFAULT_MAX_EVENTS = 256

# ----------------------------------------------------------------------
# event taps: externally-installed listeners for engines a caller does
# not construct itself
# ----------------------------------------------------------------------
# Solvers build their own PhaseEngine (and hence their own
# Instrumentation), so a caller holding only a ScenarioSpec has no
# object to hang a listener on.  A *tap* closes that gap: any listener
# installed via ``event_tap`` is copied into every Instrumentation
# created afterwards **in the same thread**, for the duration of the
# ``with`` block.  Thread-locality is the isolation boundary — the serve
# layer runs concurrent solves on separate worker threads, and each
# run's telemetry must reach only its own relay channel.  Events are
# plain-JSON-serializable (:meth:`EngineEvent.to_jsonable`), so a tap
# can ship them across a process boundary (the serve relay's JSONL
# channel) without seeing live engine objects.
_TAP_STATE = threading.local()


def _thread_taps() -> List[Callable[["EngineEvent"], None]]:
    taps = getattr(_TAP_STATE, "stack", None)
    if taps is None:
        taps = []
        _TAP_STATE.stack = taps
    return taps


@contextmanager
def event_tap(
    listener: Callable[["EngineEvent"], None],
) -> Iterator[Callable[["EngineEvent"], None]]:
    """Attach ``listener`` to every engine run started in this thread.

    Live events reach the listener even past the bounded log's capacity
    (dropped-from-log events are still fanned out), so a streaming
    consumer observes the full run regardless of ``max_events``.
    """
    taps = _thread_taps()
    taps.append(listener)
    try:
        yield listener
    finally:
        taps.remove(listener)


@dataclass(frozen=True)
class EngineEvent:
    """One instrumentation event emitted by the engine.

    Attributes
    ----------
    kind:
        ``"phase"``, ``"oracle"`` or ``"congestion"``.
    step:
        The engine step counter when the event fired (0 before the
        first step).
    payload:
        Event-specific numbers (phase index, query count, max
        congestion, ...) — plain floats/ints only, so events serialize.
    """

    kind: str
    step: int
    payload: Dict[str, float]

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON form of this event."""
        return {"kind": self.kind, "step": self.step, **self.payload}


class Instrumentation:
    """Counters and a bounded event log for one engine run.

    Listeners (``on_event`` callbacks) observe every event live — even
    ones the bounded log drops — which is how applications watch
    congestion evolve without the engine growing bespoke hooks.
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self.steps = 0
        self.phases = 0
        self.oracle_queries = 0
        self.batched_rounds = 0
        self.per_session_rounds = 0
        self.batched_oracle_seconds = 0.0
        self.per_session_oracle_seconds = 0.0
        self.length_updates = 0
        self.max_congestion = 0.0
        # Stacked-tree path (PhaseEngine/v2): distinct tree columns in
        # the run's shared ledger (a gauge, refreshed per step) and how
        # many query rounds evaluated their tree lengths as one
        # lengths @ M product over those columns.
        self.ledger_columns = 0
        self.spmm_rounds = 0
        # Kernel backend (PhaseEngine/v3): the resolved backend the run's
        # ledger/length kernels execute on ("numpy" unless configured).
        self.kernel_backend = "numpy"
        self._events: List[EngineEvent] = []
        self._max_events = int(max_events)
        # Two flavours of "the bounded log did not retain this event":
        # fanned-out events were still constructed and delivered to live
        # listeners (a streaming consumer saw them); lost events were
        # never constructed at all (no listener, log full).
        self._dropped_fanned_out = 0
        self._lost_events = 0
        self._metrics_published = False
        # Taps installed in this thread (see event_tap) observe the run
        # from its first event; add_listener appends run-specific ones.
        self._listeners: List[Callable[[EngineEvent], None]] = list(_thread_taps())

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def add_listener(self, listener: Callable[[EngineEvent], None]) -> None:
        """Register a live observer called with every emitted event."""
        self._listeners.append(listener)

    def emit(self, kind: str, step: int, **payload: float) -> Optional[EngineEvent]:
        """Record (and fan out) one event; bounded log, exact counters.

        With the log full and no listeners registered the event would go
        nowhere — skip constructing it (counters are updated by the
        callers either way), keeping long runs' hot loops allocation-free
        past the log bound.
        """
        if len(self._events) >= self._max_events and not self._listeners:
            self._lost_events += 1
            return None
        event = EngineEvent(kind=kind, step=step, payload=dict(payload))
        if len(self._events) < self._max_events:
            self._events.append(event)
        else:
            self._dropped_fanned_out += 1
        for listener in self._listeners:
            listener(event)
        return event

    def phase_started(self, phase: int, step: int) -> None:
        """A phase boundary: phase ``phase`` begins at step ``step``."""
        self.phases += 1
        self.emit("phase", step, phase=float(phase))

    def oracle_round(self, queries: int, batched: bool, seconds: float, step: int) -> None:
        """One query round: ``queries`` oracle calls, batched or looped."""
        self.oracle_queries += int(queries)
        if batched:
            self.batched_rounds += 1
            self.batched_oracle_seconds += seconds
        else:
            self.per_session_rounds += 1
            self.per_session_oracle_seconds += seconds
        self.emit(
            "oracle", step, queries=float(queries), batched=float(bool(batched))
        )

    def congestion_snapshot(self, value: float, step: int) -> None:
        """Record the current max congestion (online runs, once per step)."""
        if value > self.max_congestion:
            self.max_congestion = float(value)
        self.emit("congestion", step, max_congestion=float(value))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[EngineEvent, ...]:
        """The retained events, in emission order."""
        return tuple(self._events)

    @property
    def dropped_events(self) -> int:
        """Events beyond the bounded log's capacity (counted, not kept).

        The sum of :attr:`dropped_fanned_out` and :attr:`lost_events` —
        kept as the back-compatible total.
        """
        return self._dropped_fanned_out + self._lost_events

    @property
    def dropped_fanned_out(self) -> int:
        """Events the bounded log dropped but listeners still received."""
        return self._dropped_fanned_out

    @property
    def lost_events(self) -> int:
        """Events lost entirely: log full and no listener to fan out to."""
        return self._lost_events

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON summary: all counters plus the retained events.

        The dict round-trips through JSON without type drift (ints stay
        ints, floats stay floats), so persisted reports compare equal to
        fresh ones byte-for-byte.

        The first snapshot also publishes the run's counters to the
        process-wide metrics registry (:mod:`repro.obs.metrics`) — the
        "registry tap": solvers snapshot exactly once when assembling
        their solution, so engine metrics flow without any new branch in
        the step loop.
        """
        self.publish_metrics()
        return {
            "engine": ENGINE_SCHEMA,
            "steps": int(self.steps),
            "phases": int(self.phases),
            "oracle_queries": int(self.oracle_queries),
            "batched_rounds": int(self.batched_rounds),
            "per_session_rounds": int(self.per_session_rounds),
            "batched_oracle_seconds": float(self.batched_oracle_seconds),
            "per_session_oracle_seconds": float(self.per_session_oracle_seconds),
            "length_updates": int(self.length_updates),
            "ledger_columns": int(self.ledger_columns),
            "spmm_rounds": int(self.spmm_rounds),
            "kernel_backend": str(self.kernel_backend),
            "max_congestion": float(self.max_congestion),
            "dropped_events": int(self.dropped_events),
            "dropped_fanned_out": int(self._dropped_fanned_out),
            "lost_events": int(self._lost_events),
            "events": [event.to_jsonable() for event in self._events],
        }

    def publish_metrics(self) -> None:
        """Publish this run's counters to the process metrics registry.

        Idempotent per instance (repeated snapshots add nothing), a
        no-op under ``REPRO_METRICS=0``, and deliberately *not* called
        from the step loop — aggregate engine metrics cost zero hot-loop
        work.
        """
        if self._metrics_published:
            return
        self._metrics_published = True
        from repro.obs import metrics as obs_metrics

        reg = obs_metrics.registry()
        if not reg.enabled:
            return
        reg.counter(
            "repro_engine_runs_total", "Engine runs snapshotted"
        ).inc()
        reg.counter("repro_engine_steps_total", "Engine steps executed").inc(
            self.steps
        )
        reg.counter(
            "repro_engine_oracle_queries_total", "Oracle calls issued"
        ).inc(self.oracle_queries)
        reg.counter(
            "repro_engine_oracle_rounds_total",
            "Oracle query rounds by front",
            labels={"front": "batched"},
        ).inc(self.batched_rounds)
        reg.counter(
            "repro_engine_oracle_rounds_total",
            "Oracle query rounds by front",
            labels={"front": "per_session"},
        ).inc(self.per_session_rounds)
        reg.counter(
            "repro_engine_oracle_seconds_total",
            "Wall seconds inside oracle rounds by front",
            labels={"front": "batched"},
        ).inc(self.batched_oracle_seconds)
        reg.counter(
            "repro_engine_oracle_seconds_total",
            "Wall seconds inside oracle rounds by front",
            labels={"front": "per_session"},
        ).inc(self.per_session_oracle_seconds)
        reg.counter(
            "repro_engine_length_updates_total", "Per-step length updates"
        ).inc(self.length_updates)
        reg.counter(
            "repro_engine_events_dropped_total",
            "Events not retained by the bounded log",
            labels={"fate": "fanned_out"},
        ).inc(self._dropped_fanned_out)
        reg.counter(
            "repro_engine_events_dropped_total",
            "Events not retained by the bounded log",
            labels={"fate": "lost"},
        ).inc(self._lost_events)
        reg.gauge(
            "repro_engine_ledger_columns",
            "Distinct tree columns in the last run's stacked ledger",
        ).set(self.ledger_columns)
        reg.gauge(
            "repro_engine_kernel_backend_info",
            "Kernel backend of the most recent run (1 = active)",
            labels={"backend": str(self.kernel_backend)},
        ).set(1)
        reg.counter(
            "repro_engine_kernel_rounds_total",
            "Ledger SpMM rounds by kernel backend",
            labels={"backend": str(self.kernel_backend)},
        ).inc(self.spmm_rounds)
