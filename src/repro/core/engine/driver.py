"""The phase engine driver: one step loop for every solver.

:class:`PhaseEngine` owns the mechanics every multiplicative-weights
algorithm in the paper shares — ask a :class:`StepPolicy` what to query,
serve the queries (through the :class:`BatchedOracleFront` when the
policy asks and routing permits), check the :class:`StoppingRule`,
apply the returned :class:`RouteAction` (flow accumulation, length
multiply, congestion update), enforce the step cap, and emit
instrumentation.  The algorithms themselves reduce to a policy, a
stopping rule, and result post-processing.

The engine supports both batch execution (:meth:`run`, offline solvers)
and stepwise execution (:meth:`step`, the online algorithm's
``accept`` API).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine.batch import BatchedOracleFront
from repro.core.engine.instrumentation import Instrumentation
from repro.core.engine.kernels import (
    KernelBackend,
    resolve_kernel_backend,
    use_kernel_backend,
)
from repro.core.engine.ledger import TreeLedger, stacked_trees_default
from repro.core.engine.strategies import RouteAction, StepPolicy, StoppingRule
from repro.core.lengths import LengthFunction
from repro.obs.tracing import maybe_span
from repro.core.result import SessionFlowAccumulator
from repro.overlay.oracle import MinimumOverlayTreeOracle, OracleResult
from repro.overlay.session import Session
from repro.util.errors import ConfigurationError, ConvergenceError


@dataclass
class EngineRun:
    """What a finished (or paused) engine run exposes to its solver."""

    accumulators: List[SessionFlowAccumulator]
    instrumentation: Instrumentation
    steps: int


class PhaseEngine:
    """Driver of the shared length-update / oracle / stopping-rule loop."""

    def __init__(
        self,
        oracles: Sequence[MinimumOverlayTreeOracle],
        lengths: LengthFunction,
        capacities: np.ndarray,
        policy: StepPolicy,
        stopping: StoppingRule,
        step_cap: Optional[int] = None,
        cap_message: str = "phase engine exceeded its step cap",
        instrumentation: Optional[Instrumentation] = None,
        accumulate_flows: bool = True,
        track_congestion: bool = False,
        batch_oracle: Optional[bool] = None,
        oracle_factory=None,
        stacked_trees: Optional[bool] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        self._oracles: List[MinimumOverlayTreeOracle] = list(oracles)
        self._lengths = lengths
        self._capacities = np.asarray(capacities, dtype=float)
        self._policy = policy
        self._stopping = stopping
        self._step_cap = step_cap
        self._cap_message = cap_message
        self._instr = instrumentation or Instrumentation()
        self._accumulators: List[SessionFlowAccumulator] = (
            [SessionFlowAccumulator(session=o.session) for o in self._oracles]
            if accumulate_flows
            else []
        )
        self._accumulate = accumulate_flows
        self._congestion = (
            np.zeros(self._capacities.shape[0], dtype=float) if track_congestion else None
        )
        self._batch_enabled = True if batch_oracle is None else bool(batch_oracle)
        # Built lazily on the first batched request: policies that only
        # ever query one session per step (concurrent phases, online
        # arrivals) never pay for stacking the incidence matrices.
        self._front: Optional[BatchedOracleFront] = None
        self._oracle_factory = oracle_factory
        # Stacked-tree path: one shared ledger column per distinct tree
        # across all oracles and steps; multi-session rounds evaluate
        # their tree lengths as one lengths @ M product over it.  Off,
        # the per-tree loop is the ablation baseline — bit-identical.
        stacked = stacked_trees_default() if stacked_trees is None else bool(stacked_trees)
        self._ledger: Optional[TreeLedger] = (
            TreeLedger(self._capacities.shape[0]) if stacked else None
        )
        if self._ledger is not None:
            for oracle in self._oracles:
                oracle.attach_ledger(self._ledger)
        # Kernel backend: resolved once at construction (falling back to
        # numpy with a one-time warning when the requested backend can't
        # load) and installed thread-locally around every step, so
        # concurrent solves on worker threads each see their own choice.
        self._kernels: KernelBackend = resolve_kernel_backend(kernel_backend)
        self._instr.kernel_backend = self._kernels.name
        self._oracle_keys: Dict[Tuple[int, ...], int] = {
            tuple(sorted(o.session.members)): i for i, o in enumerate(self._oracles)
        }
        self._steps = 0
        self._stopped = False
        self._policy.bind(self)

    # ------------------------------------------------------------------
    # state exposed to policies / stopping rules / solvers
    # ------------------------------------------------------------------
    @property
    def oracles(self) -> List[MinimumOverlayTreeOracle]:
        """The per-session oracles, indexable by policy step requests."""
        return self._oracles

    @property
    def lengths(self) -> LengthFunction:
        """The shared exponential length function."""
        return self._lengths

    @property
    def capacities(self) -> np.ndarray:
        """Physical edge capacities."""
        return self._capacities

    @property
    def accumulators(self) -> List[SessionFlowAccumulator]:
        """Per-session flow accumulators (empty when accumulation is off)."""
        return self._accumulators

    @property
    def congestion(self) -> Optional[np.ndarray]:
        """The congestion vector (``None`` unless tracking is on)."""
        return self._congestion

    @property
    def instrumentation(self) -> Instrumentation:
        """This run's telemetry."""
        return self._instr

    @property
    def stacked(self) -> bool:
        """Whether the stacked-tree (ledger) path is on."""
        return self._ledger is not None

    @property
    def ledger(self) -> Optional[TreeLedger]:
        """The run's shared tree ledger (``None`` when stacking is off)."""
        return self._ledger

    @property
    def kernels(self) -> KernelBackend:
        """The resolved kernel backend active during this engine's steps."""
        return self._kernels

    @property
    def steps(self) -> int:
        """Steps executed so far (query rounds, terminating round included)."""
        return self._steps

    @property
    def oracle_calls(self) -> int:
        """Total MST operations across the engine's oracles."""
        return int(sum(o.call_count for o in self._oracles))

    def oracle_index_for(self, session: Session) -> int:
        """The oracle index serving ``session``, creating one on demand.

        Oracles are shared per member set (the online algorithm's
        replicated arrivals all hit one oracle and its tree cache);
        creation needs an ``oracle_factory`` — engines without one are
        fixed-roster by construction.
        """
        key = tuple(sorted(session.members))
        index = self._oracle_keys.get(key)
        if index is None:
            if self._oracle_factory is None:
                raise ConfigurationError(
                    f"no oracle for session {session.name or session.members} and "
                    "no oracle_factory to create one"
                )
            oracle = self._oracle_factory(session)
            if self._ledger is not None:
                oracle.attach_ledger(self._ledger)
            self._oracles.append(oracle)
            index = len(self._oracles) - 1
            self._oracle_keys[key] = index
            if self._accumulate:
                self._accumulators.append(SessionFlowAccumulator(session=session))
        return index

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[RouteAction]:
        """Run one step; ``None`` once the run has stopped.

        A step is: stopping-rule check → policy query request → oracle
        round (batched when possible) → policy selection → stopping-rule
        check → route → apply.  The terminating round (a query whose
        selection trips the stopping rule) counts as a step, matching
        the iteration accounting of the pre-engine loops.

        The whole step — stopping checks, oracle round, routing, length
        flush — runs with this engine's kernel backend installed as the
        thread's active backend, so every tree-length evaluation and
        scatter inside it uses one consistent accumulation order.
        """
        if self._stopped:
            return None
        with use_kernel_backend(self._kernels):
            return self._step_locked()

    def _step_locked(self) -> Optional[RouteAction]:
        if self._stopping.before_step(self):
            self._stopped = True
            return None
        request = self._policy.next_request(self)
        if request is None:
            # Policy exhaustion is *idle*, not terminal: a feed-driven
            # policy (online arrivals) may receive more work later, and
            # the stopping rules above re-establish any genuine stop on
            # the next call.  Only rule-triggered stops latch.
            return None

        self._steps += 1
        self._instr.steps = self._steps
        if self._step_cap is not None and self._steps > self._step_cap:
            raise ConvergenceError(self._cap_message)

        # When no tracer is active (the default), maybe_span returns a
        # shared no-op — the step loop pays one function call, which the
        # obs_overhead BENCH section keeps under its 3% bound.
        with maybe_span("engine.step", step=self._steps):
            if request.prefetched is not None:
                # The policy already holds this step's results from an
                # earlier grouped round (stacked online path); no oracle
                # work happens, so no query round is recorded.
                results = list(request.prefetched)
            else:
                if request.batched and self._batch_enabled and self._front is None:
                    self._front = BatchedOracleFront(self._oracles, ledger=self._ledger)
                batched = (
                    request.batched
                    and self._front is not None
                    and self._front.supports(request.indices)
                )
                with maybe_span(
                    "oracle_round",
                    queries=len(request.indices),
                    batched=bool(batched),
                ):
                    start = time.perf_counter()
                    if batched:
                        results = self._front.query(
                            request.indices, self._lengths.relative
                        )
                        if self._front.uses_ledger:
                            self._instr.spmm_rounds += 1
                    elif (
                        self._ledger is not None
                        and len(request.indices) > 1
                        and all(self._oracles[i].is_fixed for i in request.indices)
                    ):
                        results = self._stacked_round(request.indices)
                        self._instr.spmm_rounds += 1
                    else:
                        results = [
                            (
                                index,
                                self._oracles[index].minimum_tree(
                                    self._lengths.relative
                                ),
                            )
                            for index in request.indices
                        ]
                    self._instr.oracle_round(
                        queries=len(request.indices),
                        batched=batched,
                        seconds=time.perf_counter() - start,
                        step=self._steps,
                    )

            selection = self._policy.select(self, results)
            if self._stopping.after_selection(self, selection):
                self._stopped = True
                return None

            action = self._policy.route(self, selection)
            self._apply(action)
            self._policy.on_routed(self, action)
            return action

    def run(self) -> EngineRun:
        """Run steps until the stopping rule or the policy ends the loop."""
        while self.step() is not None:
            pass
        return EngineRun(
            accumulators=self._accumulators,
            instrumentation=self._instr,
            steps=self._steps,
        )

    def _stacked_round(self, indices) -> List[Tuple[int, OracleResult]]:
        """A multi-oracle round served through the ledger, loop-free.

        Tree-only selection per oracle, then *one* ``lengths @ M``
        product over the chosen columns for every result length —
        bit-identical to per-oracle ``minimum_tree`` calls (the ledger
        evaluates each column with the tree's own arithmetic).
        """
        rel = self._lengths.relative
        picks = [(index, self._oracles[index].select_tree(rel)) for index in indices]
        columns = [self._ledger.register(tree) for _, tree in picks]
        tree_lengths = self._ledger.lengths_for(columns, rel)
        return [
            (index, OracleResult(tree=tree, length=float(tree_lengths[i])))
            for i, (index, tree) in enumerate(picks)
        ]

    def _apply(self, action: RouteAction) -> None:
        """Record the flow and apply the length/congestion updates."""
        if self._accumulate:
            self._accumulators[action.index].add(action.tree, action.amount)
        used = action.tree.physical_edges
        if self._ledger is not None:
            # One flush per step.  A tree's physical_edges are unique by
            # construction, so the duplicate-safe buffering is skipped;
            # the fast path is the exact operation sequence of
            # ``multiply`` — bit-identical to the loop baseline.
            self._ledger.register(action.tree)
            self._lengths.multiply_batch(used, action.factors, assume_unique=True)
            self._instr.ledger_columns = self._ledger.num_columns
        else:
            self._lengths.multiply(used, action.factors)
        self._instr.length_updates += 1
        if action.congestion_delta is not None and self._congestion is not None:
            self._congestion[used] += action.congestion_delta
            # Loads are non-negative, so the global maximum after the
            # update is the running maximum or a newly touched edge —
            # an O(|tree edges|) scan, not O(|E|) per step.
            touched_peak = float(self._congestion[used].max()) if used.size else 0.0
            self._instr.congestion_snapshot(
                max(self._instr.max_congestion, touched_peak), self._steps
            )
