"""The stacked tree ledger: one shared incidence matrix for every tree.

A multiplicative-weights run concentrates its work on a slowly-growing
set of distinct overlay trees (the paper's "number of trees" tables):
thousands of MST operations return the same few dozen trees over and
over.  Each :class:`~repro.overlay.tree.OverlayTree` carries its own
little ``(physical_edges, usage_values)`` pair, so a query round over
``S`` sessions performs ``S`` separate gathers and dots, and every other
layer (flow extraction, congestion, benchmarks) re-walks the same
per-tree arrays.

The :class:`TreeLedger` stores those pairs **once**, as the columns of a
shared CSC-style incidence matrix ``M`` (``M[e, t] = n_e(t)``) covering
every distinct tree across all sessions *and all steps* of a run:

* **Append-only registration.**  Columns are content-addressed by
  :meth:`OverlayTree.canonical_key` — the same identity the oracle's
  memo and the flow accumulators key on — so the oracle memo and the
  ledger agree on what "the same tree" means, and re-registering a tree
  is a dict hit.
* **Growth-doubling storage.**  ``indptr``/``rows``/``values`` live in
  amortised-doubling arrays, so registration stays O(footprint) and the
  matrix never reallocates per column.
* **Degree-bucketed row partitions.**  Tree footprints are skewed (a
  2-member session's tree touches one path; a 10-member session's tree
  touches dozens), so bucket columns by ``footprint.bit_length()``.
  The exact evaluation path walks buckets for locality; the padded 2-D
  kernel (:meth:`lengths_for_all`) pads only within a bucket, keeping
  wasted lanes bounded by 2x instead of max/min footprint.

``lengths @ M`` (:meth:`lengths_for`) and ``M @ weights``
(:meth:`edge_values`) are the two products the engine needs per step.
Both are **bit-identical** to the per-tree loops they replace — *under
the active kernel backend* (:mod:`repro.core.engine.kernels`):

* Under the default ``numpy`` backend, ``lengths_for`` evaluates each
  column as the same contiguous ``np.dot`` over the same values the
  tree's own :meth:`~repro.overlay.tree.OverlayTree.length` would use
  (dense full-``|E|`` dot below ``SPARSE_LENGTH_MIN_EDGES``, gathered
  sparse dot above it), and ``edge_values`` scatters with ``np.add.at``
  in column order — exactly the per-tree sequence.
* Under an *ordered* backend (``ordered``/``numba``), every reduction
  is the pinned left-to-right sum over the stored entries, evaluated as
  **one fused pass** (no Python per-column loop), and
  ``OverlayTree.length`` follows the same order — so the stacked and
  loop paths remain bit-identical to each other, while agreeing with
  the ``numpy`` backend to floating-point round-off.  Under ordered
  backends the one-pass all-columns kernel (:meth:`lengths_for_all`)
  graduates into the solver paths: a round covering most of the ledger
  is served straight off the contiguous stores with no gather at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine.kernels import active_kernels
from repro.overlay.tree import SPARSE_LENGTH_MIN_EDGES, OverlayTree
from repro.util.errors import ConfigurationError

_STACKED_TREES_DEFAULT = True


def configure_stacked_trees(enabled: bool) -> bool:
    """Set the process-wide default for the stacked-tree engine path.

    Returns the previous default.  Engines resolve the default at
    construction time; existing engines are unaffected.  The stacked
    path is bit-identical to the per-tree loop it replaces (asserted in
    ``tests/test_tree_ledger.py``) — the switch exists for equivalence
    tests and the ``engine_step`` perf ablation.
    """
    global _STACKED_TREES_DEFAULT
    previous = _STACKED_TREES_DEFAULT
    _STACKED_TREES_DEFAULT = bool(enabled)
    return previous


def stacked_trees_default() -> bool:
    """Current process-wide default for the stacked-tree engine path."""
    return _STACKED_TREES_DEFAULT


class TreeLedger:
    """Append-only shared incidence matrix over distinct overlay trees.

    Parameters
    ----------
    num_edges:
        Number of physical edges (the matrix's row dimension).
    initial_columns / initial_entries:
        Initial capacities of the growth-doubling column and nonzero
        stores; purely a performance knob.
    """

    def __init__(
        self,
        num_edges: int,
        initial_columns: int = 64,
        initial_entries: int = 1024,
    ) -> None:
        if num_edges < 1:
            raise ConfigurationError("num_edges must be positive")
        self._num_edges = int(num_edges)
        # Below the measured dense/sparse crossover every tree on this
        # network evaluates lengths with the dense full-|E| dot; the
        # ledger must follow suit to stay bit-identical per column.
        self._sparse = self._num_edges >= SPARSE_LENGTH_MIN_EDGES
        self._indptr = np.zeros(max(2, int(initial_columns) + 1), dtype=np.int64)
        self._rows = np.empty(max(1, int(initial_entries)), dtype=np.int64)
        self._values = np.empty(max(1, int(initial_entries)), dtype=float)
        # Column id of every stored entry — the bin vector the ordered
        # backends' one-pass kernels reduce over (kept in lockstep with
        # _rows/_values so no per-round segment-id build is needed).
        self._entry_cols = np.empty(max(1, int(initial_entries)), dtype=np.int64)
        self._columns: Dict[Tuple, int] = {}
        self._trees: List[OverlayTree] = []
        self._buckets: Dict[int, List[int]] = {}
        self._registrations = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _grow_entries(self, needed: int) -> None:
        if needed <= self._rows.size:
            return
        capacity = self._rows.size
        while capacity < needed:
            capacity *= 2
        rows = np.empty(capacity, dtype=np.int64)
        values = np.empty(capacity, dtype=float)
        entry_cols = np.empty(capacity, dtype=np.int64)
        used = int(self._indptr[len(self._trees)])
        rows[:used] = self._rows[:used]
        values[:used] = self._values[:used]
        entry_cols[:used] = self._entry_cols[:used]
        self._rows = rows
        self._values = values
        self._entry_cols = entry_cols

    def _grow_columns(self, needed: int) -> None:
        if needed + 1 <= self._indptr.size:
            return
        capacity = self._indptr.size
        while capacity < needed + 1:
            capacity *= 2
        indptr = np.zeros(capacity, dtype=np.int64)
        indptr[: len(self._trees) + 1] = self._indptr[: len(self._trees) + 1]
        self._indptr = indptr

    def register(self, tree: OverlayTree) -> int:
        """The column index of ``tree``, appending a new column on first sight.

        Content-addressed by :meth:`OverlayTree.canonical_key`; repeated
        registration of the same tree (from any oracle, any step) is a
        dict lookup and returns the original column.
        """
        key = tree.canonical_key()
        column = self._columns.get(key)
        self._registrations += 1
        if column is not None:
            return column
        if tree.edge_usage.size != self._num_edges:
            raise ConfigurationError(
                f"tree spans {tree.edge_usage.size} edges, ledger holds "
                f"{self._num_edges}"
            )
        rows = tree.physical_edges
        values = tree.usage_values
        column = len(self._trees)
        start = int(self._indptr[column])
        self._grow_columns(column + 1)
        self._grow_entries(start + rows.size)
        self._rows[start : start + rows.size] = rows
        self._values[start : start + values.size] = values
        self._entry_cols[start : start + rows.size] = column
        self._indptr[column + 1] = start + rows.size
        self._columns[key] = column
        self._trees.append(tree)
        self._buckets.setdefault(int(rows.size).bit_length(), []).append(column)
        return column

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Row dimension (physical edge count)."""
        return self._num_edges

    @property
    def num_columns(self) -> int:
        """Distinct trees registered so far."""
        return len(self._trees)

    @property
    def nnz(self) -> int:
        """Stored nonzeros across all columns."""
        return int(self._indptr[len(self._trees)])

    @property
    def registrations(self) -> int:
        """Total :meth:`register` calls, duplicate hits included."""
        return self._registrations

    def column_for(self, tree: OverlayTree) -> Optional[int]:
        """The column of ``tree`` if registered, else ``None``."""
        return self._columns.get(tree.canonical_key())

    def tree_at(self, column: int) -> OverlayTree:
        """The tree backing ``column`` (registration order)."""
        return self._trees[column]

    def bucket_partitions(self) -> Dict[int, np.ndarray]:
        """Column indices grouped by footprint magnitude.

        Bucket ``b`` holds columns whose footprint ``f`` satisfies
        ``f.bit_length() == b`` (i.e. ``2^(b-1) <= f < 2^b``), so
        padding within a bucket wastes at most half the lanes — the
        degree-bucketed partitioning that keeps the padded 2-D kernel
        balanced under skewed tree sizes.
        """
        return {
            bucket: np.asarray(columns, dtype=np.int64)
            for bucket, columns in sorted(self._buckets.items())
        }

    def column_slices(
        self, columns: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(start, end)`` nonzero ranges of ``columns`` in the stores."""
        cols = np.asarray(columns, dtype=np.int64)
        return self._indptr[cols], self._indptr[cols + 1]

    # ------------------------------------------------------------------
    # the two engine products
    # ------------------------------------------------------------------
    def _gathered_entries(
        self, starts: np.ndarray, ends: np.ndarray, with_ids: bool = False
    ):
        """The requested columns' stored entries, concatenated.

        When the columns occupy one contiguous run of the stores — the
        common case, since engine rounds register consecutive columns —
        this is a pair of direct slices (zero-copy views), skipping the
        per-column ``np.concatenate`` list build entirely.  The
        concatenated arrays are identical either way, so downstream
        arithmetic is bit-identical.
        """
        if starts.size and bool(np.all(starts[1:] == ends[:-1])):
            lo, hi = int(starts[0]), int(ends[-1])
            rows = self._rows[lo:hi]
            values = self._values[lo:hi]
            if with_ids:
                return rows, values, self._entry_cols[lo:hi]
            return rows, values
        pieces = list(zip(starts, ends))
        rows = (
            np.concatenate([self._rows[s:e] for s, e in pieces])
            if pieces
            else np.empty(0, dtype=np.int64)
        )
        values = (
            np.concatenate([self._values[s:e] for s, e in pieces])
            if pieces
            else np.empty(0, dtype=float)
        )
        if with_ids:
            ids = (
                np.concatenate([self._entry_cols[s:e] for s, e in pieces])
                if pieces
                else np.empty(0, dtype=np.int64)
            )
            return rows, values, ids
        return rows, values

    def lengths_for(
        self, columns: Sequence[int], edge_lengths: np.ndarray
    ) -> np.ndarray:
        """``lengths @ M`` restricted to ``columns``.

        Bit-identical per column to ``tree.length(edge_lengths)``
        *under the active kernel backend*:

        * ``numpy`` backend — one gather, then a contiguous ``np.dot``
          per column: on sparse-evaluation networks the gathered slice
          holds exactly the tree's physical-edge lengths and the stored
          values are exactly its usage values, so each dot is the same
          BLAS reduction over the same operands; below the crossover
          each column falls back to the tree's own dense full-``|E|``
          dot.
        * ordered backends (``ordered``/``numba``) — one fused
          gather+reduce pass in the pinned left-to-right order (no
          Python per-column loop), matching the backend-routed
          ``OverlayTree.length``.  A round covering at least half the
          ledger is served by the graduated all-columns kernel
          (:meth:`lengths_for_all`) straight off the contiguous stores,
          which computes identical bits per column.

        Ordered evaluation assumes the requested ``columns`` are
        distinct (engine rounds pick one tree per oracle, so they are
        by construction).
        """
        lengths = np.asarray(edge_lengths, dtype=float)
        cols = np.asarray(columns, dtype=np.int64)
        backend = active_kernels()
        if backend.ordered and self.num_columns:
            if cols.size == 0:
                return np.empty(0, dtype=float)
            if 2 * cols.size >= self.num_columns:
                return self.lengths_for_all(lengths)[cols]
            starts, ends = self.column_slices(cols)
            rows, values, ids = self._gathered_entries(starts, ends, with_ids=True)
            return backend.column_lengths(
                rows, values, ids, self.num_columns, lengths
            )[cols]
        out = np.empty(cols.size, dtype=float)
        if not self._sparse:
            for i in range(cols.size):
                out[i] = float(np.dot(self._trees[cols[i]].edge_usage, lengths))
            return out
        starts, ends = self.column_slices(cols)
        # One fancy-index gather covering every requested column's rows,
        # then a contiguous dot per column over its slice.
        rows, values = self._gathered_entries(starts, ends)
        gathered = lengths[rows]
        offset = 0
        for i in range(cols.size):
            count = int(ends[i] - starts[i])
            out[i] = float(
                np.dot(
                    values[offset : offset + count],
                    gathered[offset : offset + count],
                )
            )
            offset += count
        return out

    def edge_values(
        self,
        columns: Sequence[int],
        weights: Sequence[float],
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``M @ diag(weights)`` summed over ``columns`` — one scatter.

        ``out[e] = sum_t M[e, t] * weights[t]`` over the requested
        columns.  The scatter accumulates sequentially in array order —
        column by column, each column's edges in stored order — exactly
        the accumulation sequence of the per-tree
        ``out[tree.physical_edges] += tree.usage_values * w`` loop, so
        results are bit-identical to it under every backend: the
        ``numpy`` backend applies ``np.add.at``; ordered backends
        replace it with one ``np.bincount`` pass (fresh output) or a
        compiled sequential loop, both of which perform the identical
        in-order addition sequence.
        """
        cols = np.asarray(columns, dtype=np.int64)
        w = np.asarray(weights, dtype=float)
        if cols.shape != w.shape:
            raise ConfigurationError(
                f"columns and weights must have matching shapes, got "
                f"{cols.shape} and {w.shape}"
            )
        fresh = out is None
        if out is None:
            out = np.zeros(self._num_edges, dtype=float)
        if cols.size == 0:
            return out
        starts, ends = self.column_slices(cols)
        rows, values = self._gathered_entries(starts, ends)
        # Per-entry scale: value * its column's weight — the identical
        # elementwise multiplications of the per-column list build.
        scaled = np.repeat(w, ends - starts) * values
        backend = active_kernels()
        if fresh:
            return backend.scatter_add_fresh(out, rows, scaled)
        return backend.scatter_add(out, rows, scaled)

    # ------------------------------------------------------------------
    # all-columns kernel (graduated into solver paths under ordered
    # backends; benchmarks / bulk analytics under numpy)
    # ------------------------------------------------------------------
    def lengths_for_all(self, edge_lengths: np.ndarray) -> np.ndarray:
        """All column lengths in one pass over the contiguous stores.

        Under an ordered backend this is the graduated solver kernel:
        one fused products+reduce pass in the pinned left-to-right
        order, bit-identical per column to :meth:`lengths_for` and to
        the backend-routed ``OverlayTree.length`` — no gather, no
        padding, no Python per-column loop.

        Under the ``numpy`` backend it remains the padded
        degree-bucketed 2-D kernel: each bucket's columns pad to the
        bucket's maximum footprint (bounded 2x waste by construction)
        and reduce with one 2-D gather + row-sum per bucket.  The
        row-sum's pairwise reduction order differs from the solver
        dots, so numpy-backend results agree with :meth:`lengths_for`
        to floating-point round-off (``allclose``), not bitwise —
        numpy-backend solver paths use :meth:`lengths_for`.
        """
        lengths = np.asarray(edge_lengths, dtype=float)
        backend = active_kernels()
        if backend.ordered:
            nnz = self.nnz
            return backend.column_lengths(
                self._rows[:nnz],
                self._values[:nnz],
                self._entry_cols[:nnz],
                self.num_columns,
                lengths,
            )
        out = np.empty(len(self._trees), dtype=float)
        if self.nnz == 0:
            # Every registered column has an empty footprint: the
            # padded gather below would clamp indices to nnz - 1 == -1
            # and read past the stores; all lengths are exactly zero.
            out[:] = 0.0
            return out
        for _, columns in sorted(self._buckets.items()):
            cols = np.asarray(columns, dtype=np.int64)
            starts, ends = self.column_slices(cols)
            counts = ends - starts
            width = int(counts.max())
            if width == 0:
                out[cols] = 0.0
                continue
            # Padded row/value blocks: lanes beyond a column's footprint
            # point at row 0 with value 0.0, contributing exact zeros.
            offsets = starts[:, None] + np.arange(width)[None, :]
            mask = np.arange(width)[None, :] < counts[:, None]
            block_rows = np.where(mask, self._rows[np.minimum(offsets, self.nnz - 1)], 0)
            block_vals = np.where(mask, self._values[np.minimum(offsets, self.nnz - 1)], 0.0)
            out[cols] = (block_vals * lengths[block_rows]).sum(axis=1)
        return out
