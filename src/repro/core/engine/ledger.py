"""The stacked tree ledger: one shared incidence matrix for every tree.

A multiplicative-weights run concentrates its work on a slowly-growing
set of distinct overlay trees (the paper's "number of trees" tables):
thousands of MST operations return the same few dozen trees over and
over.  Each :class:`~repro.overlay.tree.OverlayTree` carries its own
little ``(physical_edges, usage_values)`` pair, so a query round over
``S`` sessions performs ``S`` separate gathers and dots, and every other
layer (flow extraction, congestion, benchmarks) re-walks the same
per-tree arrays.

The :class:`TreeLedger` stores those pairs **once**, as the columns of a
shared CSC-style incidence matrix ``M`` (``M[e, t] = n_e(t)``) covering
every distinct tree across all sessions *and all steps* of a run:

* **Append-only registration.**  Columns are content-addressed by
  :meth:`OverlayTree.canonical_key` — the same identity the oracle's
  memo and the flow accumulators key on — so the oracle memo and the
  ledger agree on what "the same tree" means, and re-registering a tree
  is a dict hit.
* **Growth-doubling storage.**  ``indptr``/``rows``/``values`` live in
  amortised-doubling arrays, so registration stays O(footprint) and the
  matrix never reallocates per column.
* **Degree-bucketed row partitions.**  Tree footprints are skewed (a
  2-member session's tree touches one path; a 10-member session's tree
  touches dozens), so bucket columns by ``footprint.bit_length()``.
  The exact evaluation path walks buckets for locality; the padded 2-D
  kernel (:meth:`lengths_for_all`) pads only within a bucket, keeping
  wasted lanes bounded by 2x instead of max/min footprint.

``lengths @ M`` (:meth:`lengths_for`) and ``M @ weights``
(:meth:`edge_values`) are the two products the engine needs per step.
Both are **bit-identical** to the per-tree loops they replace:
``lengths_for`` evaluates each column as the same contiguous
``np.dot`` over the same values the tree's own
:meth:`~repro.overlay.tree.OverlayTree.length` would use (dense
full-``|E|`` dot below ``SPARSE_LENGTH_MIN_EDGES``, gathered sparse dot
above it), and ``edge_values`` scatters with ``np.add.at`` in column
order, which applies the additions in exactly the per-tree sequence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.overlay.tree import SPARSE_LENGTH_MIN_EDGES, OverlayTree
from repro.util.errors import ConfigurationError

_STACKED_TREES_DEFAULT = True


def configure_stacked_trees(enabled: bool) -> bool:
    """Set the process-wide default for the stacked-tree engine path.

    Returns the previous default.  Engines resolve the default at
    construction time; existing engines are unaffected.  The stacked
    path is bit-identical to the per-tree loop it replaces (asserted in
    ``tests/test_tree_ledger.py``) — the switch exists for equivalence
    tests and the ``engine_step`` perf ablation.
    """
    global _STACKED_TREES_DEFAULT
    previous = _STACKED_TREES_DEFAULT
    _STACKED_TREES_DEFAULT = bool(enabled)
    return previous


def stacked_trees_default() -> bool:
    """Current process-wide default for the stacked-tree engine path."""
    return _STACKED_TREES_DEFAULT


class TreeLedger:
    """Append-only shared incidence matrix over distinct overlay trees.

    Parameters
    ----------
    num_edges:
        Number of physical edges (the matrix's row dimension).
    initial_columns / initial_entries:
        Initial capacities of the growth-doubling column and nonzero
        stores; purely a performance knob.
    """

    def __init__(
        self,
        num_edges: int,
        initial_columns: int = 64,
        initial_entries: int = 1024,
    ) -> None:
        if num_edges < 1:
            raise ConfigurationError("num_edges must be positive")
        self._num_edges = int(num_edges)
        # Below the measured dense/sparse crossover every tree on this
        # network evaluates lengths with the dense full-|E| dot; the
        # ledger must follow suit to stay bit-identical per column.
        self._sparse = self._num_edges >= SPARSE_LENGTH_MIN_EDGES
        self._indptr = np.zeros(max(2, int(initial_columns) + 1), dtype=np.int64)
        self._rows = np.empty(max(1, int(initial_entries)), dtype=np.int64)
        self._values = np.empty(max(1, int(initial_entries)), dtype=float)
        self._columns: Dict[Tuple, int] = {}
        self._trees: List[OverlayTree] = []
        self._buckets: Dict[int, List[int]] = {}
        self._registrations = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _grow_entries(self, needed: int) -> None:
        if needed <= self._rows.size:
            return
        capacity = self._rows.size
        while capacity < needed:
            capacity *= 2
        rows = np.empty(capacity, dtype=np.int64)
        values = np.empty(capacity, dtype=float)
        used = int(self._indptr[len(self._trees)])
        rows[:used] = self._rows[:used]
        values[:used] = self._values[:used]
        self._rows = rows
        self._values = values

    def _grow_columns(self, needed: int) -> None:
        if needed + 1 <= self._indptr.size:
            return
        capacity = self._indptr.size
        while capacity < needed + 1:
            capacity *= 2
        indptr = np.zeros(capacity, dtype=np.int64)
        indptr[: len(self._trees) + 1] = self._indptr[: len(self._trees) + 1]
        self._indptr = indptr

    def register(self, tree: OverlayTree) -> int:
        """The column index of ``tree``, appending a new column on first sight.

        Content-addressed by :meth:`OverlayTree.canonical_key`; repeated
        registration of the same tree (from any oracle, any step) is a
        dict lookup and returns the original column.
        """
        key = tree.canonical_key()
        column = self._columns.get(key)
        self._registrations += 1
        if column is not None:
            return column
        if tree.edge_usage.size != self._num_edges:
            raise ConfigurationError(
                f"tree spans {tree.edge_usage.size} edges, ledger holds "
                f"{self._num_edges}"
            )
        rows = tree.physical_edges
        values = tree.usage_values
        column = len(self._trees)
        start = int(self._indptr[column])
        self._grow_columns(column + 1)
        self._grow_entries(start + rows.size)
        self._rows[start : start + rows.size] = rows
        self._values[start : start + values.size] = values
        self._indptr[column + 1] = start + rows.size
        self._columns[key] = column
        self._trees.append(tree)
        self._buckets.setdefault(int(rows.size).bit_length(), []).append(column)
        return column

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Row dimension (physical edge count)."""
        return self._num_edges

    @property
    def num_columns(self) -> int:
        """Distinct trees registered so far."""
        return len(self._trees)

    @property
    def nnz(self) -> int:
        """Stored nonzeros across all columns."""
        return int(self._indptr[len(self._trees)])

    @property
    def registrations(self) -> int:
        """Total :meth:`register` calls, duplicate hits included."""
        return self._registrations

    def column_for(self, tree: OverlayTree) -> Optional[int]:
        """The column of ``tree`` if registered, else ``None``."""
        return self._columns.get(tree.canonical_key())

    def tree_at(self, column: int) -> OverlayTree:
        """The tree backing ``column`` (registration order)."""
        return self._trees[column]

    def bucket_partitions(self) -> Dict[int, np.ndarray]:
        """Column indices grouped by footprint magnitude.

        Bucket ``b`` holds columns whose footprint ``f`` satisfies
        ``f.bit_length() == b`` (i.e. ``2^(b-1) <= f < 2^b``), so
        padding within a bucket wastes at most half the lanes — the
        degree-bucketed partitioning that keeps the padded 2-D kernel
        balanced under skewed tree sizes.
        """
        return {
            bucket: np.asarray(columns, dtype=np.int64)
            for bucket, columns in sorted(self._buckets.items())
        }

    def column_slices(
        self, columns: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(start, end)`` nonzero ranges of ``columns`` in the stores."""
        cols = np.asarray(columns, dtype=np.int64)
        return self._indptr[cols], self._indptr[cols + 1]

    # ------------------------------------------------------------------
    # the two engine products
    # ------------------------------------------------------------------
    def lengths_for(
        self, columns: Sequence[int], edge_lengths: np.ndarray
    ) -> np.ndarray:
        """``lengths @ M`` restricted to ``columns`` — one gather, C dots.

        Bit-identical per column to ``tree.length(edge_lengths)``: on
        sparse-evaluation networks the gathered slice holds exactly the
        tree's physical-edge lengths and the stored values are exactly
        its usage values, so the contiguous ``np.dot`` is the same BLAS
        reduction over the same operands; below the crossover each
        column falls back to the tree's own dense full-``|E|`` dot.
        """
        lengths = np.asarray(edge_lengths, dtype=float)
        cols = np.asarray(columns, dtype=np.int64)
        out = np.empty(cols.size, dtype=float)
        if not self._sparse:
            for i in range(cols.size):
                out[i] = float(np.dot(self._trees[cols[i]].edge_usage, lengths))
            return out
        starts, ends = self.column_slices(cols)
        # One fancy-index gather covering every requested column's rows,
        # then a contiguous dot per column over its slice.
        gather = (
            np.concatenate([self._rows[s:e] for s, e in zip(starts, ends)])
            if cols.size
            else np.empty(0, dtype=np.int64)
        )
        gathered = lengths[gather]
        offset = 0
        for i in range(cols.size):
            count = int(ends[i] - starts[i])
            out[i] = float(
                np.dot(
                    self._values[starts[i] : ends[i]],
                    gathered[offset : offset + count],
                )
            )
            offset += count
        return out

    def edge_values(
        self,
        columns: Sequence[int],
        weights: Sequence[float],
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``M @ diag(weights)`` summed over ``columns`` — one scatter.

        ``out[e] = sum_t M[e, t] * weights[t]`` over the requested
        columns.  ``np.add.at`` applies the additions sequentially in
        array order — column by column, each column's edges in stored
        order — exactly the accumulation sequence of the per-tree
        ``out[tree.physical_edges] += tree.usage_values * w`` loop, so
        results are bit-identical to it.
        """
        cols = np.asarray(columns, dtype=np.int64)
        w = np.asarray(weights, dtype=float)
        if cols.shape != w.shape:
            raise ConfigurationError(
                f"columns and weights must have matching shapes, got "
                f"{cols.shape} and {w.shape}"
            )
        if out is None:
            out = np.zeros(self._num_edges, dtype=float)
        if cols.size == 0:
            return out
        starts, ends = self.column_slices(cols)
        rows = np.concatenate([self._rows[s:e] for s, e in zip(starts, ends)])
        values = np.concatenate(
            [self._values[s:e] * w[i] for i, (s, e) in enumerate(zip(starts, ends))]
        )
        np.add.at(out, rows, values)
        return out

    # ------------------------------------------------------------------
    # bucketed throughput kernel (benchmarks / bulk analytics)
    # ------------------------------------------------------------------
    def lengths_for_all(self, edge_lengths: np.ndarray) -> np.ndarray:
        """All column lengths via the padded degree-bucketed 2-D kernel.

        Pads each bucket's columns to the bucket's maximum footprint
        (bounded 2x waste by construction) and reduces with one 2-D
        gather + row-sum per bucket.  Throughput path for benchmarks and
        bulk analytics: the row-sum's pairwise reduction order differs
        from the solver dots, so results agree to floating-point
        round-off (``allclose``), not bitwise — solver paths use
        :meth:`lengths_for`.
        """
        lengths = np.asarray(edge_lengths, dtype=float)
        out = np.empty(len(self._trees), dtype=float)
        for _, columns in sorted(self._buckets.items()):
            cols = np.asarray(columns, dtype=np.int64)
            starts, ends = self.column_slices(cols)
            counts = ends - starts
            width = int(counts.max())
            # Padded row/value blocks: lanes beyond a column's footprint
            # point at row 0 with value 0.0, contributing exact zeros.
            offsets = starts[:, None] + np.arange(width)[None, :]
            mask = np.arange(width)[None, :] < counts[:, None]
            block_rows = np.where(mask, self._rows[np.minimum(offsets, self.nnz - 1)], 0)
            block_vals = np.where(mask, self._values[np.minimum(offsets, self.nnz - 1)], 0.0)
            out[cols] = (block_vals * lengths[block_rows]).sum(axis=1)
        return out
