"""MaxConcurrentFlow — FPTAS for the overlay maximum concurrent flow problem.

Problem M2 maximises the throughput fraction ``f`` such that every session
``S_i`` can simultaneously route ``f * dem(i)`` units of its commodity —
i.e. weighted max-min fairness with the demands as weights.  The algorithm
is the paper's Table III (a Garg–Könemann / Fleischer scheme organised in
phases, iterations, and steps), together with the two practical
ingredients discussed in Section III-C:

* **demand pre-scaling** — per-session MaxFlow runs compute the standalone
  maximum rates ``beta_i``; demands are rescaled so the optimum ``lambda``
  lies in ``[1, k]`` (required by Lemmas 4–6),
* **demand doubling** — if the algorithm has not stopped after the phase
  bound implied by ``lambda <= 2``, demands are doubled (halving
  ``lambda``) and the run continues.

The paper's Table IV reports the cost of the pre-scaling step separately
from the main run; :class:`FlowSolution.extra` carries both counters.
"""

from __future__ import annotations

import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import ConcurrentPhasePolicy, DualObjectiveStop, PhaseEngine
from repro.core.engine.instrumentation import Instrumentation
from repro.core.lengths import LengthFunction, epsilon_for_ratio
from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.core.result import FlowSolution, SessionResult, TreeFlow
from repro.overlay.oracle import build_oracles
from repro.overlay.session import Session
from repro.routing.base import RoutingModel
from repro.util.errors import ConfigurationError, InfeasibleProblemError


@dataclass(frozen=True)
class MaxConcurrentFlowConfig:
    """Configuration of the MaxConcurrentFlow FPTAS.

    Attributes
    ----------
    epsilon:
        Accuracy parameter; the result is at least ``(1 - 3 epsilon)``
        times the optimal concurrent throughput.
    approximation_ratio:
        Convenience alternative: target ratio ``1 - 3 epsilon``.
    prescale_epsilon:
        Accuracy of the per-session MaxFlow runs used only to bound the
        optimum for demand scaling; a loose value keeps the pre-step cheap
        without affecting the final guarantee.
    max_steps:
        Hard safety cap on routing steps (``None`` = derive from theory
        with a generous factor).
    memoize:
        Oracle tree-construction memoization for both the pre-scaling
        MaxFlow runs and the main run (``None`` = process default, on).
    prescale_jobs:
        Worker processes for the per-session standalone MaxFlow runs of
        the pre-scaling step — the runs are mutually independent, so with
        ``k`` sessions up to ``k`` of them solve concurrently.  ``None``
        falls back to the shared ``--jobs`` / ``REPRO_JOBS`` plumbing
        (:func:`repro.util.jobs.default_jobs`); ``0`` means all cores.
        Purely a performance switch: the resulting ``beta`` vector is
        bit-identical to a serial run.
    stacked_trees:
        Run the engine's stacked-tree path (shared
        :class:`~repro.core.engine.TreeLedger`, deduplicated per-step
        length flushes) in the main run and the pre-scaling MaxFlow
        runs.  ``None`` = process default (on).  Purely a performance
        switch; results are bit-identical either way.
    kernel_backend:
        Kernel backend for the ledger/length hot ops in the main run and
        the pre-scaling MaxFlow runs (``None`` = process default; see
        :mod:`repro.core.engine.kernels`).  Results are bit-identical
        loop-vs-stacked *per backend*; ordered backends pin their own
        accumulation order.
    max_events:
        Bound on the main run's retained instrumentation event log
        (``None`` = engine default).  Telemetry capacity only; never
        changes the solution.
    """

    epsilon: Optional[float] = None
    approximation_ratio: Optional[float] = None
    prescale_epsilon: float = 0.1
    max_steps: Optional[int] = None
    memoize: Optional[bool] = None
    prescale_jobs: Optional[int] = None
    stacked_trees: Optional[bool] = None
    kernel_backend: Optional[str] = None
    max_events: Optional[int] = None

    def resolved_epsilon(self) -> float:
        """The epsilon actually used (resolving the ratio form)."""
        if (self.epsilon is None) == (self.approximation_ratio is None):
            raise ConfigurationError(
                "exactly one of epsilon / approximation_ratio must be set"
            )
        if self.epsilon is not None:
            if not 0 < self.epsilon < 1.0 / 3.0:
                raise ConfigurationError(
                    f"epsilon must be in (0, 1/3), got {self.epsilon}"
                )
            return float(self.epsilon)
        return epsilon_for_ratio(self.approximation_ratio, slack_factor=3.0)


# Per-process pre-scaling context (routing, epsilon, memoize,
# stacked_trees, kernel_backend), installed by the pool initializer so it
# is pickled once per worker rather than once per session task.
_prescale_context: Optional[
    Tuple[RoutingModel, float, Optional[bool], Optional[bool], Optional[str]]
] = None


def _set_prescale_context(
    context: Tuple[RoutingModel, float, Optional[bool], Optional[bool], Optional[str]]
) -> None:
    """Install the shared pre-scaling context in this process."""
    global _prescale_context
    _prescale_context = context


def _standalone_rate_cell(session: Session) -> Tuple[float, int]:
    """Solve one session's standalone MaxFlow (module-level for pickling)."""
    routing, epsilon, memoize, stacked_trees, kernel_backend = _prescale_context
    solution = MaxFlow(
        [session],
        routing,
        MaxFlowConfig(
            epsilon=epsilon,
            memoize=memoize,
            stacked_trees=stacked_trees,
            kernel_backend=kernel_backend,
        ),
    ).solve()
    return solution.sessions[0].rate, solution.oracle_calls


class MaxConcurrentFlow:
    """The maximum concurrent flow FPTAS over overlay spanning trees."""

    def __init__(
        self,
        sessions: Sequence[Session],
        routing: RoutingModel,
        config: Optional[MaxConcurrentFlowConfig] = None,
    ) -> None:
        if not sessions:
            raise ConfigurationError("at least one session is required")
        self._sessions = list(sessions)
        for s in self._sessions:
            s.validate_against(routing.network)
        self._routing = routing
        self._network = routing.network
        self._config = config or MaxConcurrentFlowConfig(approximation_ratio=0.95)

    # ------------------------------------------------------------------
    # pre-scaling
    # ------------------------------------------------------------------
    def _standalone_rates(self) -> tuple[np.ndarray, int]:
        """Per-session standalone MaxFlow rates ``beta_i`` and their oracle cost.

        Each session's standalone run is independent of the others, so
        they are farmed out to a process pool when the resolved
        ``prescale_jobs`` worker count exceeds one.  Results are gathered
        in session order either way, so ``beta`` is bit-identical between
        serial and parallel runs.

        Child processes never fan out further: when this solver already
        runs inside a pool worker (an experiment sweep cell or a
        ``solve_many`` batch worker), the same ambient ``REPRO_JOBS``
        value would otherwise multiply — ``jobs`` outer workers times
        ``jobs`` prescale workers — and oversubscribe the machine, so the
        pre-scaling stays serial there and the outer pool keeps the
        parallelism.
        """
        from repro.util.jobs import resolve_jobs

        context = (
            self._routing,
            self._config.prescale_epsilon,
            self._config.memoize,
            self._config.stacked_trees,
            self._config.kernel_backend,
        )
        in_child_process = multiprocessing.parent_process() is not None
        workers = 1 if in_child_process else min(
            resolve_jobs(self._config.prescale_jobs), len(self._sessions)
        )
        if workers > 1 and len(self._sessions) > 1:
            # The routing model (all-pairs route structures) travels once
            # per worker via the initializer; tasks carry only sessions.
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_set_prescale_context,
                initargs=(context,),
            ) as pool:
                results = list(pool.map(_standalone_rate_cell, self._sessions))
        else:
            _set_prescale_context(context)
            results = [_standalone_rate_cell(s) for s in self._sessions]
        rates = np.asarray([rate for rate, _ in results], dtype=float)
        calls = sum(calls for _, calls in results)
        return rates, calls

    # ------------------------------------------------------------------
    # main algorithm
    # ------------------------------------------------------------------
    def solve(self) -> FlowSolution:
        """Run the FPTAS and return a feasible, near max-min-fair flow."""
        epsilon = self._config.resolved_epsilon()
        network = self._network
        capacities = network.capacities
        num_edges = network.num_edges
        k = len(self._sessions)

        beta, prescale_calls = self._standalone_rates()
        demands = np.asarray([s.demand for s in self._sessions], dtype=float)
        zeta = float(np.min(beta / demands))
        if zeta <= 0:
            raise InfeasibleProblemError(
                "a session has zero standalone throughput; its members are "
                "likely disconnected"
            )
        # Scale demands so the optimal concurrent throughput lies in [1, k].
        working_demands = demands * (zeta / k)

        oracles = build_oracles(
            self._sessions, self._routing, memoize=self._config.memoize
        )
        lengths = LengthFunction.for_concurrent(capacities, epsilon)

        # Final scaling factor (Lemma 4): divide flows by log_{1+eps}(1/delta).
        log_delta = lengths.log_offset
        scale_denominator = -log_delta / math.log1p(epsilon)

        # Phase budget before demand doubling (Lemma 6 with OPT <= 2).
        phase_budget = 1 + int(
            math.ceil((2.0 / epsilon) * (math.log(num_edges / (1.0 - epsilon)) / math.log1p(epsilon)))
        )
        if self._config.max_steps is not None:
            step_cap = self._config.max_steps
        else:
            step_cap = int(20 * (num_edges + k) * max(1.0, scale_denominator)) + 100

        # Table III on the shared phase engine: the policy owns the
        # phase/session/remaining-demand bookkeeping and the demand
        # doubling; the dual-objective stopping rule is checked before
        # every step, which reproduces the nested
        # ``while remaining > 0 and not dual()`` structure exactly.
        policy = ConcurrentPhasePolicy(
            epsilon=epsilon,
            working_demands=working_demands,
            phase_budget=phase_budget,
        )
        engine = PhaseEngine(
            oracles=oracles,
            lengths=lengths,
            capacities=capacities,
            policy=policy,
            stopping=DualObjectiveStop(capacities),
            step_cap=step_cap,
            cap_message=f"MaxConcurrentFlow exceeded the step cap of {step_cap}",
            stacked_trees=self._config.stacked_trees,
            kernel_backend=self._config.kernel_backend,
            instrumentation=(
                Instrumentation(max_events=self._config.max_events)
                if self._config.max_events is not None
                else None
            ),
        )
        run = engine.run()
        steps = run.steps
        phases = policy.phases
        doublings = policy.doublings

        scale = 1.0 / scale_denominator
        sessions = tuple(
            SessionResult(session=acc.session, tree_flows=tuple(acc.scaled(scale)))
            for acc in run.accumulators
        )
        main_calls = sum(o.call_count for o in oracles)
        solution = FlowSolution(
            algorithm="MaxConcurrentFlow",
            sessions=sessions,
            network=network,
            epsilon=epsilon,
            oracle_calls=main_calls + prescale_calls,
        )
        # Lemma 4 only guarantees feasibility for the flow of the completed
        # phases; the flow routed during the final (partial) phase can push a
        # link marginally above capacity.  Rescale by the max congestion so
        # the returned solution is always strictly feasible without changing
        # the relative (fair) rate split.
        congestion = solution.max_congestion()
        if congestion > 1.0:
            sessions = tuple(
                SessionResult(
                    session=s.session,
                    tree_flows=tuple(
                        TreeFlow(tree=tf.tree, flow=tf.flow / congestion)
                        for tf in s.tree_flows
                    ),
                )
                for s in sessions
            )
        solution = FlowSolution(
            algorithm="MaxConcurrentFlow",
            sessions=sessions,
            network=network,
            epsilon=epsilon,
            oracle_calls=main_calls + prescale_calls,
            extra={
                "phases": float(phases),
                "steps": float(steps),
                "doublings": float(doublings),
                "main_oracle_calls": float(main_calls),
                "prescale_oracle_calls": float(prescale_calls),
                "zeta_upper_bound": zeta,
                "routing": "dynamic" if self._routing.is_dynamic else "fixed",
            },
            instrumentation=run.instrumentation.snapshot(),
        )
        return solution


def solve_max_concurrent_flow(
    sessions: Sequence[Session],
    routing: RoutingModel,
    epsilon: Optional[float] = None,
    approximation_ratio: Optional[float] = None,
    prescale_epsilon: float = 0.1,
) -> FlowSolution:
    """Convenience wrapper: build a :class:`MaxConcurrentFlow` solver and run it."""
    if epsilon is None and approximation_ratio is None:
        approximation_ratio = 0.95
    config = MaxConcurrentFlowConfig(
        epsilon=epsilon,
        approximation_ratio=approximation_ratio,
        prescale_epsilon=prescale_epsilon,
    )
    return MaxConcurrentFlow(sessions, routing, config).solve()
